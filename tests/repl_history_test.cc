// The replication chaos matrix (DESIGN.md §12): 100 seeded runs, each a
// persistent primary fronted by a Server behind a FaultyNetwork, driven by
// 1-2 concurrent tokened writers, with 1-3 WAL-shipping replicas tailing
// the feed through the same hostile network. Every replica is observed by a
// reader thread taking pinned-session snapshots of (version, state image)
// while records apply, and forcing a mid-stream feed disconnect every few
// observations.
//
// The oracle is the serial acknowledged-prefix replay from
// tests/history_harness.h, with a twist the direct-apply path makes
// available: each acknowledged Apply is exactly one commit record and one
// version bump, and exactly-once tokens mean every commit that happened is
// acknowledged by its writer — so the acked versions are *dense* and the
// oracle knows the primary's exact image at every version, not just at
// acked floors. Every replica observation must therefore be byte-identical
// to the oracle image at its version: a skipped record surfaces as a
// version gap or image mismatch, a double-applied record as
// ApplyReplicated's cursor refusal (failing the feed sticky) or a replay
// divergence, a torn read as an image matching no prefix. Observed versions
// must also be monotone per reader — a replica never travels backwards.
// After the writers join, every replica must converge to the primary's
// final image with records_applied == commits (exactly once each, across
// every disconnect, truncation, and reset the run injected).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/deductive_database.h"
#include "history_harness.h"
#include "repl/replica.h"
#include "server/chaos.h"
#include "server/client.h"
#include "server/server.h"
#include "server/transport.h"
#include "util/rng.h"
#include "util/strings.h"

namespace deddb::repl {
namespace {

namespace hh = server::harness;
using server::Client;
using server::FaultyNetwork;
using server::LoopbackNetwork;
using server::QueryReply;
using server::Server;

struct WriterLog {
  std::vector<hh::AckedWrite> writes;
  std::vector<std::string> errors;
};

/// One tokened writer: mixed reads (to refresh its guess) and 1-3 event
/// writes, retried until definitive through the chaos transport. Direct
/// Apply only — the processor path bumps the version once per store it
/// touches, which would break the one-commit-one-version alignment the
/// replica observations rely on.
void WriterLoop(LoopbackNetwork* network, FaultyNetwork* chaos,
                uint64_t client_id, uint64_t seed, WriterLog* log) {
  Rng rng(seed);
  Client client(hh::DialThrough(network, chaos),
                hh::RetryOptions(client_id, seed));
  hh::FactSet guess;
  std::string error;

  for (int op = 0; op < 20; ++op) {
    if (rng.NextChance(1, 3)) {
      Result<QueryReply> reply = client.Query(
          {client.MakeAtom("Q", {client.Variable("x")}),
           client.MakeAtom("R", {client.Variable("x")})});
      if (!reply.ok()) {
        log->errors.push_back(StrCat("query: ", reply.status().ToString()));
        break;
      }
      hh::AckedRead read;
      if (!hh::DecodeBaseRead(&client, *reply, &guess, &read, &error)) {
        log->errors.push_back(error);
        break;
      }
      continue;
    }
    Transaction txn;
    hh::AckedWrite write;
    if (!hh::BuildGuessedWrite(&rng, &client, guess, 3, &txn, &write,
                               &error)) {
      log->errors.push_back(error);
      break;
    }
    Result<uint64_t> version =
        hh::CommitWrite(&client, txn, /*via_processor=*/false);
    if (version.ok()) {
      write.version = *version;
      hh::FoldWriteIntoGuess(write, &guess);
      log->writes.push_back(std::move(write));
    } else if (!hh::IsDefinitiveRejection(version.status())) {
      log->errors.push_back(
          StrCat("write gave up: ", version.status().ToString()));
      break;
    }
  }
  client.Close();
}

/// One pinned-session snapshot of a replica: its version and base image,
/// taken atomically (the session is the snapshot).
struct Observation {
  uint64_t version = 0;
  std::string image;
};

struct ReaderLog {
  std::vector<Observation> observations;
  std::vector<std::string> errors;
  uint64_t drops_forced = 0;
};

/// Observes one replica while it applies: pinned-session image snapshots,
/// plus a forced mid-stream feed disconnect every ~15 observations (the
/// resume-never-skips-or-duplicates pressure).
void ReaderLoop(DeductiveDatabase* replica_db, Replica* replica,
                const std::atomic<bool>* done, ReaderLog* log) {
  uint64_t since_drop = 0;
  while (!done->load(std::memory_order_acquire)) {
    Result<std::unique_ptr<Session>> session = replica_db->BeginSession();
    if (!session.ok()) {
      log->errors.push_back(session.status().ToString());
      return;
    }
    Observation obs;
    obs.version = (*session)->version();
    hh::FactSet facts;
    for (const char* pred : hh::kBasePreds) {
      Result<Atom> pattern =
          replica_db->MakeAtom(pred, {replica_db->Variable("x")});
      if (!pattern.ok()) {
        log->errors.push_back(pattern.status().ToString());
        return;
      }
      Result<std::vector<Tuple>> answers = (*session)->Solve(*pattern);
      if (!answers.ok()) {
        log->errors.push_back(answers.status().ToString());
        return;
      }
      for (const Tuple& t : *answers) {
        facts.insert({pred, std::string(replica_db->symbols().NameOf(t[0]))});
      }
    }
    session->reset();  // release the pin before recording
    obs.image = hh::ImageOf(facts);
    log->observations.push_back(std::move(obs));
    if (++since_drop >= 15) {
      since_drop = 0;
      replica->DropFeedConnectionForTest();
      ++log->drops_forced;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

struct ShardTotals {
  uint64_t faults = 0;
  uint64_t drops = 0;
  uint64_t reconnects = 0;
  uint64_t observations_verified = 0;
};

void RunSeed(uint64_t seed, ShardTotals* totals) {
  SCOPED_TRACE(StrCat("seed=", seed));

  // The primary must be persistent: the feed ships its durable log.
  hh::SeededDb seeded;
  hh::OpenSeededDb("replhist", /*persistent=*/true, &seeded);
  if (::testing::Test::HasFatalFailure()) return;
  DeductiveDatabase* primary_db = seeded.db.get();
  hh::DeclareQRSchema(primary_db, /*with_view=*/true, /*materialize=*/false);
  ASSERT_TRUE(primary_db->Checkpoint().ok());
  const uint64_t base_version = primary_db->version();

  FaultyNetwork::Options faults;
  faults.seed = seed * 131 + 3;
  faults.reset_read_per_mille = 10;
  faults.truncate_write_per_mille = 10;
  faults.delay_per_mille = 30;
  faults.max_delay_us = 300;
  FaultyNetwork chaos(faults);

  LoopbackNetwork network;
  Server server(primary_db);
  // Both writers and replica feeds dial through the chaos transport, and
  // the server's side of every connection is wrapped too — feed batches
  // die mid-frame in both directions.
  ASSERT_TRUE(server.Serve(chaos.WrapListener(network.TakeListener())).ok());

  const size_t num_writers = 1 + seed % 2;
  const size_t num_replicas = 1 + seed % 3;

  // Replicas: fresh databases carrying the primary's schema, tailing from
  // sequence 0 through the same hostile network.
  std::vector<std::unique_ptr<DeductiveDatabase>> replica_dbs;
  std::vector<std::unique_ptr<Replica>> replicas;
  for (size_t i = 0; i < num_replicas; ++i) {
    auto db = std::make_unique<DeductiveDatabase>();
    hh::DeclareQRSchema(db.get(), /*with_view=*/true, /*materialize=*/false);
    ASSERT_EQ(db->version(), base_version)
        << "replica schema replay diverged from the primary's";
    ASSERT_TRUE(db->EnterReplicaMode().ok());
    Replica::Options options;
    options.backoff.seed = seed * 677 + i;
    auto replica = std::make_unique<Replica>(
        db.get(), hh::DialThrough(&network, &chaos), options);
    ASSERT_TRUE(replica->Start().ok());
    replica_dbs.push_back(std::move(db));
    replicas.push_back(std::move(replica));
  }

  std::atomic<bool> done{false};
  std::vector<ReaderLog> reader_logs(num_replicas);
  std::vector<std::thread> readers;
  readers.reserve(num_replicas);
  for (size_t i = 0; i < num_replicas; ++i) {
    readers.emplace_back(ReaderLoop, replica_dbs[i].get(), replicas[i].get(),
                         &done, &reader_logs[i]);
  }

  std::vector<WriterLog> writer_logs(num_writers);
  std::vector<std::thread> writers;
  writers.reserve(num_writers);
  for (size_t i = 0; i < num_writers; ++i) {
    writers.emplace_back(WriterLoop, &network, &chaos, /*client_id=*/i + 1,
                         seed * 1000 + i, &writer_logs[i]);
  }
  for (std::thread& thread : writers) thread.join();

  for (size_t i = 0; i < num_writers; ++i) {
    SCOPED_TRACE(StrCat("writer=", i));
    ASSERT_TRUE(writer_logs[i].errors.empty()) << writer_logs[i].errors.front();
  }

  // Exactly-once tokens + retry-until-definitive mean every commit that
  // happened was acknowledged, so the commit count is the acked count and
  // every replica must reach exactly that sequence.
  uint64_t commits = 0;
  for (const WriterLog& log : writer_logs) commits += log.writes.size();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  for (size_t i = 0; i < num_replicas; ++i) {
    while (replicas[i]->replica_status().applied_seq < commits) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "replica " << i << " stuck at seq "
          << replicas[i]->replica_status().applied_seq << " of " << commits
          << "; last feed error: "
          << replicas[i]->last_feed_error().ToString();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  done.store(true, std::memory_order_release);
  for (std::thread& thread : readers) thread.join();
  for (const std::unique_ptr<Replica>& replica : replicas) replica->Stop();
  server.Stop();

  // ---- The dense acknowledged-prefix oracle ---------------------------------
  std::vector<const hh::AckedWrite*> acked;
  for (const WriterLog& log : writer_logs) {
    for (const hh::AckedWrite& write : log.writes) acked.push_back(&write);
  }
  hh::AckedPrefixOracle oracle;
  oracle.Build(std::move(acked), base_version,
               "a feed record applied twice or a commit was lost");
  if (::testing::Test::HasFatalFailure()) return;
  // Density: one image per commit plus the base — so At() is exact at every
  // version a replica can ever expose, not just a floor.
  ASSERT_EQ(oracle.image_at().size(), commits + 1)
      << "acked versions are not dense — an unacknowledged commit exists";
  ASSERT_EQ(oracle.image_at().rbegin()->first, base_version + commits);

  const std::string final_image = oracle.At(base_version + commits);
  for (size_t i = 0; i < num_replicas; ++i) {
    SCOPED_TRACE(StrCat("replica=", i));
    ASSERT_TRUE(reader_logs[i].errors.empty()) << reader_logs[i].errors.front();

    // Every observation byte-identical to the committed prefix at its
    // version; versions monotone per replica.
    uint64_t last_version = 0;
    for (const Observation& obs : reader_logs[i].observations) {
      ASSERT_GE(obs.version, base_version);
      ASSERT_LE(obs.version, base_version + commits);
      EXPECT_EQ(obs.image, oracle.At(obs.version))
          << "replica state at version " << obs.version
          << " diverged from the primary's committed prefix";
      EXPECT_GE(obs.version, last_version)
          << "replica version travelled backwards";
      last_version = obs.version;
      ++totals->observations_verified;
    }

    // Convergence: exactly one application per commit, ending at the
    // primary's exact final state.
    const Replica::Stats stats = replicas[i]->stats();
    EXPECT_EQ(stats.records_applied, commits)
        << "a record was skipped or double-applied across resumes";
    EXPECT_EQ(replica_dbs[i]->version(), base_version + commits);
    Result<std::unique_ptr<Session>> session = replica_dbs[i]->BeginSession();
    ASSERT_TRUE(session.ok());
    hh::FactSet facts;
    for (const char* pred : hh::kBasePreds) {
      Result<Atom> pattern = replica_dbs[i]->MakeAtom(
          pred, {replica_dbs[i]->Variable("x")});
      ASSERT_TRUE(pattern.ok());
      Result<std::vector<Tuple>> answers = (*session)->Solve(*pattern);
      ASSERT_TRUE(answers.ok()) << answers.status().ToString();
      for (const Tuple& t : *answers) {
        facts.insert(
            {pred, std::string(replica_dbs[i]->symbols().NameOf(t[0]))});
      }
    }
    EXPECT_EQ(hh::ImageOf(facts), final_image);

    totals->drops += reader_logs[i].drops_forced;
    totals->reconnects += stats.reconnects;
  }
  totals->faults += chaos.resets_injected() + chaos.truncations_injected();

  ASSERT_EQ(primary_db->active_sessions(), 0u);
  hh::CloseSeededDb(&seeded);
}

class ReplHistoryTest : public ::testing::TestWithParam<int> {};

TEST_P(ReplHistoryTest, ReplicaStateMatchesCommittedPrefixAtEveryVersion) {
  // 10 seeds per shard x 10 shards = the 100-seed matrix. The
  // machinery-engaged assertions hold per shard: every shard injects
  // transport faults, forces mid-stream feed drops, and sees the tailers
  // reconnect and resume from their cursors.
  const int shard = GetParam();
  ShardTotals totals;
  for (int i = 0; i < 10; ++i) {
    RunSeed(static_cast<uint64_t>(shard * 10 + i), &totals);
    if (::testing::Test::HasFatalFailure()) return;
  }
  EXPECT_GT(totals.faults, 0u) << "the chaos transport injected nothing";
  EXPECT_GT(totals.drops, 0u) << "no mid-stream feed drop was forced";
  EXPECT_GT(totals.reconnects, 0u) << "no replica ever reconnected";
  EXPECT_GT(totals.observations_verified, 0u)
      << "no replica observation was ever checked";
}

INSTANTIATE_TEST_SUITE_P(Matrix, ReplHistoryTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace deddb::repl
