// The admission-control contract of the service layer (DESIGN.md §10),
// proved deterministically: the writer thread is parked on a test latch
// (ServerOptions::writer_stall_for_test), so the suite fills the bounded
// queue to exactly its configured depth, drives per-connection quotas to
// exactly their limit, lets deadlines expire while requests sit in the
// queue, and then releases the latch — no sleeps, no timing assumptions.
//
// Contracts covered: reject-on-overload (kResourceExhausted once the queue
// is full), per-client quotas (kResourceExhausted for the pipelining client,
// neighbors unaffected), deadline expiry mid-queue (kDeadlineExceeded at
// dequeue, transaction NOT executed), typed guard trips through the read
// path (kDeadlineExceeded vs kBudgetExceeded as distinct wire codes — the
// small-fix regression), queue-depth/rejection metrics movement, and
// graceful shutdown (Stop() drains admitted writes and answers them).

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/deductive_database.h"
#include "obs/metrics.h"
#include "server/client.h"
#include "server/server.h"
#include "server/transport.h"
#include "util/strings.h"

namespace deddb::server {
namespace {

/// A reusable gate the writer thread blocks on.
class Latch {
 public:
  void Block() {
    std::unique_lock<std::mutex> lock(mu_);
    ++waiting_;
    cv_.notify_all();
    cv_.wait(lock, [&] { return open_; });
    --waiting_;
  }

  void Open() {
    std::lock_guard<std::mutex> lock(mu_);
    open_ = true;
    cv_.notify_all();
  }

  /// Waits until the writer thread has actually parked (so "the queue is
  /// stalled" is a fact, not a race).
  void AwaitBlocked() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return waiting_ > 0 || open_; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int waiting_ = 0;
  bool open_ = false;
};

void DeclareSchema(DeductiveDatabase* db) {
  ASSERT_TRUE(db->DeclareBase("Q", 1).ok());
  ASSERT_TRUE(db->DeclareBase("R", 1).ok());
  Term x = db->Variable("x");
  ASSERT_TRUE(db->DeclareDerived("P", 1).ok());
  ASSERT_TRUE(
      db->AddRule(Rule(db->MakeAtom("P", {x}).value(),
                       {Literal::Positive(db->MakeAtom("Q", {x}).value()),
                        Literal::Negative(db->MakeAtom("R", {x}).value())}))
          .ok());
}

std::string ApplyPayload(Client* client, std::string_view constant,
                         bool insert, const Admission& admission = {}) {
  ApplyRequest request;
  request.admission = admission;
  Atom fact = client->GroundAtom("Q", {constant});
  EXPECT_TRUE(
      (insert ? request.transaction.AddInsert(fact)
              : request.transaction.AddDelete(fact))
          .ok());
  return EncodeApplyRequest(request, client->symbols());
}

TEST(ServerAdmissionTest, OverloadAndQuotaRejectTyped) {
  DeductiveDatabase db;
  DeclareSchema(&db);

  Latch latch;
  ServerOptions options;
  options.write_queue_depth = 3;
  options.max_pending_writes_per_connection = 2;
  obs::MetricsRegistry metrics;
  options.obs.metrics = &metrics;
  options.writer_stall_for_test = [&] { latch.Block(); };

  LoopbackNetwork network;
  Server server(&db, options);
  ASSERT_TRUE(server.Serve(network.TakeListener()).ok());

  // Three single-writer clients fill the queue+writer: the first write is
  // dequeued and parks on the latch, two sit queued.
  std::vector<std::unique_ptr<Client>> fillers;
  for (int i = 0; i < 3; ++i) {
    Result<std::unique_ptr<Connection>> conn = network.Connect();
    ASSERT_TRUE(conn.ok());
    fillers.push_back(std::make_unique<Client>(std::move(*conn)));
    std::string payload =
        ApplyPayload(fillers.back().get(), StrCat("f", i), true);
    ASSERT_TRUE(fillers.back()->SendRaw(FrameType::kApply, payload).ok());
  }
  latch.AwaitBlocked();
  // Depth counts queued + in-flight; all three writes are admitted.
  while (server.queue_depth() < 3) std::this_thread::yield();

  // At this point exactly one write is in flight (parked) and two are
  // queued. The extra client's first write fills the queue to its bound of
  // 3; the second must bounce — and the rejection arrives immediately while
  // admitted writes are still stalled, which is itself part of the
  // contract (reject fast, don't buffer).
  Result<std::unique_ptr<Connection>> extra_conn = network.Connect();
  ASSERT_TRUE(extra_conn.ok());
  Client extra(std::move(*extra_conn));
  ASSERT_TRUE(
      extra.SendRaw(FrameType::kApply, ApplyPayload(&extra, "x0", true))
          .ok());
  ASSERT_TRUE(
      extra.SendRaw(FrameType::kApply, ApplyPayload(&extra, "x1", true))
          .ok());
  Result<OwnedFrame> rejection = extra.ReceiveRaw();
  ASSERT_TRUE(rejection.ok()) << rejection.status().ToString();
  ASSERT_EQ(rejection->type, FrameType::kError);
  Result<ErrorReply> decoded_rejection = DecodeErrorReply(rejection->payload);
  ASSERT_TRUE(decoded_rejection.ok());
  Status overload = decoded_rejection->ToStatus();
  EXPECT_EQ(overload.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(overload.message().find("overload"), std::string::npos)
      << overload.ToString();

  // Per-connection quota: a single client pipelining past
  // max_pending_writes_per_connection=2 is rejected even though the global
  // queue has room for... it does not here (queue is full), so test quota
  // on its own server below instead. Here, verify the overload metric
  // moved.
  EXPECT_NE(metrics.ToJson().find("server.rejected_overload"),
            std::string::npos);

  // Release the writer: every admitted write completes and is acknowledged
  // with a distinct commit version (connection threads race to enqueue, so
  // ack order across clients is not filler order — but serialization means
  // no two writes share a version).
  latch.Open();
  std::vector<uint64_t> versions;
  for (auto& filler : fillers) {
    Result<OwnedFrame> frame = filler->ReceiveRaw();
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    ASSERT_EQ(frame->type, FrameType::kApplyOk);
    Result<ApplyReply> reply = DecodeApplyReply(frame->payload);
    ASSERT_TRUE(reply.ok());
    versions.push_back(reply->version);
  }
  // The extra client's first (admitted) write also completes.
  Result<OwnedFrame> extra_frame = extra.ReceiveRaw();
  ASSERT_TRUE(extra_frame.ok());
  EXPECT_EQ(extra_frame->type, FrameType::kApplyOk);
  std::sort(versions.begin(), versions.end());
  EXPECT_EQ(std::adjacent_find(versions.begin(), versions.end()),
            versions.end())
      << "two acknowledged writes shared a commit version";

  server.Stop();
  EXPECT_EQ(db.active_sessions(), 0u);
}

TEST(ServerAdmissionTest, PerConnectionQuotaSparesNeighbors) {
  DeductiveDatabase db;
  DeclareSchema(&db);

  Latch latch;
  ServerOptions options;
  options.write_queue_depth = 64;  // roomy: only the quota can reject
  options.max_pending_writes_per_connection = 2;
  options.writer_stall_for_test = [&] { latch.Block(); };

  LoopbackNetwork network;
  Server server(&db, options);
  ASSERT_TRUE(server.Serve(network.TakeListener()).ok());

  Result<std::unique_ptr<Connection>> conn = network.Connect();
  ASSERT_TRUE(conn.ok());
  Client hog(std::move(*conn));
  // Pipeline 3 writes: 2 admitted (the quota), the 3rd rejected with a
  // typed quota error while the global queue is nearly empty.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        hog.SendRaw(FrameType::kApply, ApplyPayload(&hog, StrCat("h", i), true))
            .ok());
  }
  Result<OwnedFrame> rejected = hog.ReceiveRaw();
  ASSERT_TRUE(rejected.ok());
  ASSERT_EQ(rejected->type, FrameType::kError);
  Result<ErrorReply> error = DecodeErrorReply(rejected->payload);
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(error->code, StatusCode::kResourceExhausted);
  EXPECT_NE(error->message.find("quota"), std::string::npos)
      << error->message;

  // A neighbor on its own connection is admitted despite the hog.
  Result<std::unique_ptr<Connection>> conn2 = network.Connect();
  ASSERT_TRUE(conn2.ok());
  Client neighbor(std::move(*conn2));
  ASSERT_TRUE(neighbor
                  .SendRaw(FrameType::kApply,
                           ApplyPayload(&neighbor, "n0", true))
                  .ok());

  latch.Open();
  // Hog's two admitted writes complete; neighbor's write completes.
  for (int i = 0; i < 2; ++i) {
    Result<OwnedFrame> frame = hog.ReceiveRaw();
    ASSERT_TRUE(frame.ok());
    EXPECT_EQ(frame->type, FrameType::kApplyOk);
  }
  Result<OwnedFrame> frame = neighbor.ReceiveRaw();
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->type, FrameType::kApplyOk);

  server.Stop();
}

TEST(ServerAdmissionTest, DeadlineExpiresMidQueueWithoutExecuting) {
  DeductiveDatabase db;
  DeclareSchema(&db);

  Latch latch;
  ServerOptions options;
  obs::MetricsRegistry metrics;
  options.obs.metrics = &metrics;
  options.writer_stall_for_test = [&] { latch.Block(); };

  LoopbackNetwork network;
  Server server(&db, options);
  ASSERT_TRUE(server.Serve(network.TakeListener()).ok());

  // First write parks the writer on the latch.
  Result<std::unique_ptr<Connection>> conn = network.Connect();
  ASSERT_TRUE(conn.ok());
  Client blocker(std::move(*conn));
  ASSERT_TRUE(
      blocker.SendRaw(FrameType::kApply, ApplyPayload(&blocker, "b0", true))
          .ok());
  latch.AwaitBlocked();

  // Second write carries a 1ms deadline and sits in the queue behind the
  // parked writer until it has long lapsed.
  Result<std::unique_ptr<Connection>> conn2 = network.Connect();
  ASSERT_TRUE(conn2.ok());
  Client late(std::move(*conn2));
  Admission admission;
  admission.deadline_ms = 1;
  ASSERT_TRUE(late.SendRaw(FrameType::kApply,
                           ApplyPayload(&late, "late0", true, admission))
                  .ok());
  while (server.queue_depth() < 2) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));

  latch.Open();
  // The blocker commits; the late write is answered kDeadlineExceeded at
  // dequeue — typed, and WITHOUT executing.
  Result<OwnedFrame> ok_frame = blocker.ReceiveRaw();
  ASSERT_TRUE(ok_frame.ok());
  EXPECT_EQ(ok_frame->type, FrameType::kApplyOk);
  Result<OwnedFrame> late_frame = late.ReceiveRaw();
  ASSERT_TRUE(late_frame.ok());
  ASSERT_EQ(late_frame->type, FrameType::kError);
  Result<ErrorReply> error = DecodeErrorReply(late_frame->payload);
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(error->code, StatusCode::kDeadlineExceeded);
  server.Stop();

  // Not executed: the fact the late write would have inserted is absent.
  auto session = db.BeginSession();
  ASSERT_TRUE(session.ok());
  Result<bool> holds =
      (*session)->Holds((*session)->GroundAtom("Q", {"late0"}).value());
  ASSERT_TRUE(holds.ok());
  EXPECT_FALSE(*holds);
  EXPECT_NE(metrics.ToJson().find("server.deadline_expired_in_queue"),
            std::string::npos);
}

TEST(ServerAdmissionTest, TypedGuardStatusesThroughTheReadPath) {
  // The small-fix regression: Session::set_resource_guard threads the
  // per-request guard into the session's query engine, so a tripped limit
  // surfaces as its OWN status code on the wire (kBudgetExceeded for
  // budgets), not a flattened generic error. Fact budgets are charged by
  // the bottom-up evaluator, so the goal must be RECURSIVE — a
  // non-recursive predicate resolves lazily and derives nothing to charge.
  DeductiveDatabase db;
  ASSERT_TRUE(db.DeclareBase("E", 2).ok());
  ASSERT_TRUE(db.DeclareDerived("Path", 2).ok());
  Term x = db.Variable("x");
  Term y = db.Variable("y");
  Term z = db.Variable("z");
  ASSERT_TRUE(
      db.AddRule(Rule(db.MakeAtom("Path", {x, y}).value(),
                      {Literal::Positive(db.MakeAtom("E", {x, y}).value())}))
          .ok());
  ASSERT_TRUE(
      db.AddRule(
            Rule(db.MakeAtom("Path", {x, z}).value(),
                 {Literal::Positive(db.MakeAtom("E", {x, y}).value()),
                  Literal::Positive(db.MakeAtom("Path", {y, z}).value())}))
          .ok());
  // A 20-node chain: 190 Path facts to derive.
  for (int i = 0; i + 1 < 20; ++i) {
    ASSERT_TRUE(
        db.AddFact(
              db.GroundAtom("E", {StrCat("n", i), StrCat("n", i + 1)}).value())
            .ok());
  }

  LoopbackNetwork network;
  Server server(&db);
  ASSERT_TRUE(server.Serve(network.TakeListener()).ok());
  Result<std::unique_ptr<Connection>> conn = network.Connect();
  ASSERT_TRUE(conn.ok());
  Client client(std::move(*conn));

  // A 1-fact derived budget trips as kBudgetExceeded, not anything else.
  // This query must come FIRST on the connection: Path is materialized on
  // demand, and a successful unguarded query would warm the session's
  // engine cache, after which no derivation (and no budget charge) happens.
  Admission budget;
  budget.max_derived_facts = 1;
  Result<QueryReply> tripped = client.Query(
      {client.MakeAtom("Path", {client.Variable("x"), client.Variable("y")})},
      budget);
  ASSERT_FALSE(tripped.ok());
  EXPECT_EQ(tripped.status().code(), StatusCode::kBudgetExceeded)
      << tripped.status().ToString();

  // The guard is per-request, and a tripped materialization leaves no
  // partial cache behind: the next unguarded query on the same connection
  // (same pinned session) derives the full closure.
  Result<QueryReply> plain = client.Query(
      {client.MakeAtom("Path", {client.Variable("x"), client.Variable("y")})});
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  EXPECT_EQ(plain->answers[0].size(), 190u);

  server.Stop();
}

TEST(ServerAdmissionTest, GracefulShutdownDrainsAdmittedWrites) {
  DeductiveDatabase db;
  DeclareSchema(&db);

  Latch latch;
  ServerOptions options;
  options.writer_stall_for_test = [&] { latch.Block(); };
  LoopbackNetwork network;
  Server server(&db, options);
  ASSERT_TRUE(server.Serve(network.TakeListener()).ok());

  Result<std::unique_ptr<Connection>> conn = network.Connect();
  ASSERT_TRUE(conn.ok());
  Client client(std::move(*conn));
  ASSERT_TRUE(
      client.SendRaw(FrameType::kApply, ApplyPayload(&client, "d0", true))
          .ok());
  latch.AwaitBlocked();
  ASSERT_TRUE(
      client.SendRaw(FrameType::kApply, ApplyPayload(&client, "d1", true))
          .ok());
  while (server.queue_depth() < 2) std::this_thread::yield();

  // Stop from another thread while both writes are stuck; then release the
  // latch. The drain contract: both admitted writes are executed and
  // acknowledged before any connection is torn down.
  std::thread stopper([&] { server.Stop(); });
  latch.Open();
  for (int i = 0; i < 2; ++i) {
    Result<OwnedFrame> frame = client.ReceiveRaw();
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    EXPECT_EQ(frame->type, FrameType::kApplyOk);
  }
  stopper.join();

  // Both facts really committed.
  auto session = db.BeginSession();
  ASSERT_TRUE(session.ok());
  for (const char* name : {"d0", "d1"}) {
    Result<bool> holds =
        (*session)->Holds((*session)->GroundAtom("Q", {name}).value());
    ASSERT_TRUE(holds.ok());
    EXPECT_TRUE(*holds) << name;
  }
}

TEST(ServerAdmissionTest, QueueDepthMetricTracksAdmission) {
  DeductiveDatabase db;
  DeclareSchema(&db);

  Latch latch;
  ServerOptions options;
  obs::MetricsRegistry metrics;
  options.obs.metrics = &metrics;
  options.writer_stall_for_test = [&] { latch.Block(); };
  LoopbackNetwork network;
  Server server(&db, options);
  ASSERT_TRUE(server.Serve(network.TakeListener()).ok());

  EXPECT_EQ(server.queue_depth(), 0u);
  Result<std::unique_ptr<Connection>> conn = network.Connect();
  ASSERT_TRUE(conn.ok());
  Client client(std::move(*conn));
  ASSERT_TRUE(
      client.SendRaw(FrameType::kApply, ApplyPayload(&client, "m0", true))
          .ok());
  latch.AwaitBlocked();
  ASSERT_TRUE(
      client.SendRaw(FrameType::kApply, ApplyPayload(&client, "m1", true))
          .ok());
  while (server.queue_depth() < 2) std::this_thread::yield();

  // The gauge mirrors the live depth while stalled.
  EXPECT_NE(metrics.ToJson().find("server.queue_depth"), std::string::npos);

  latch.Open();
  for (int i = 0; i < 2; ++i) {
    Result<OwnedFrame> frame = client.ReceiveRaw();
    ASSERT_TRUE(frame.ok());
    EXPECT_EQ(frame->type, FrameType::kApplyOk);
  }
  EXPECT_EQ(server.queue_depth(), 0u);

  // Stats over the wire: the snapshot includes the server counters.
  Result<StatsReply> stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_NE(stats->json.find("\"writes_applied\":2"), std::string::npos)
      << stats->json;
  server.Stop();
}

TEST(ServerAdmissionTest, WritesAfterStopRejectTyped) {
  DeductiveDatabase db;
  DeclareSchema(&db);
  LoopbackNetwork network;
  Server server(&db);
  ASSERT_TRUE(server.Serve(network.TakeListener()).ok());
  Result<std::unique_ptr<Connection>> conn = network.Connect();
  ASSERT_TRUE(conn.ok());
  Client client(std::move(*conn));
  Result<QueryReply> warm =
      client.Query({client.MakeAtom("Q", {client.Variable("x")})});
  ASSERT_TRUE(warm.ok());
  server.Stop();
  // The connection is closed by Stop; a subsequent request fails at the
  // transport (no hang, no crash).
  Transaction txn;
  ASSERT_TRUE(txn.AddInsert(client.GroundAtom("Q", {"z"})).ok());
  Result<ApplyReply> after = client.Apply(txn);
  EXPECT_FALSE(after.ok());
}

TEST(ServerAdmissionTest, OversizedReplyDowngradedToTypedError) {
  // A legitimate query whose encoded result exceeds the frame cap must come
  // back as a typed kResourceExhausted error frame — not as an oversized
  // frame the client's ReadFrame rejects as "malformed", killing the
  // connection. 2000 facts with ~36-char names are ~96KB per pattern; 200
  // copies of the pattern push the reply past the 16MiB cap.
  DeductiveDatabase db;
  ASSERT_TRUE(db.DeclareBase("Q", 1).ok());
  const std::string pad(32, 'x');
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(db.AddFact(db.GroundAtom("Q", {StrCat("v", i, pad)}).value())
                    .ok());
  }

  LoopbackNetwork network;
  Server server(&db);
  ASSERT_TRUE(server.Serve(network.TakeListener()).ok());
  Result<std::unique_ptr<Connection>> conn = network.Connect();
  ASSERT_TRUE(conn.ok());
  Client client(std::move(*conn));

  std::vector<Atom> patterns(
      200, client.MakeAtom("Q", {client.Variable("x")}));
  Result<QueryReply> huge = client.Query(patterns);
  ASSERT_FALSE(huge.ok());
  EXPECT_EQ(huge.status().code(), StatusCode::kResourceExhausted)
      << huge.status().ToString();
  EXPECT_NE(huge.status().message().find("frame limit"), std::string::npos)
      << huge.status().ToString();

  // The connection survived: a narrower request on the same client works.
  Result<QueryReply> narrow =
      client.Query({client.MakeAtom("Q", {client.Variable("x")})});
  ASSERT_TRUE(narrow.ok()) << narrow.status().ToString();
  EXPECT_EQ(narrow->answers[0].size(), 2000u);
  server.Stop();
}

TEST(ServerAdmissionTest, ConcurrentStopIsSafe) {
  // The first Stop() owns the teardown; racing callers (including the
  // destructor) must block until it finishes instead of double-joining the
  // same threads. Run with live connections so there is real work to tear
  // down; TSan turns any join race into a failure.
  DeductiveDatabase db;
  DeclareSchema(&db);
  LoopbackNetwork network;
  Server server(&db);
  ASSERT_TRUE(server.Serve(network.TakeListener()).ok());

  std::vector<std::unique_ptr<Client>> clients;
  for (int i = 0; i < 3; ++i) {
    Result<std::unique_ptr<Connection>> conn = network.Connect();
    ASSERT_TRUE(conn.ok());
    clients.push_back(std::make_unique<Client>(std::move(*conn)));
    Transaction txn;
    ASSERT_TRUE(
        txn.AddInsert(clients.back()->GroundAtom("Q", {StrCat("s", i)})).ok());
    ASSERT_TRUE(clients.back()->Apply(txn).ok());
  }

  std::vector<std::thread> stoppers;
  for (int i = 0; i < 4; ++i) {
    stoppers.emplace_back([&] { server.Stop(); });
  }
  for (std::thread& stopper : stoppers) stopper.join();
  server.Stop();  // still idempotent after the fact
  EXPECT_EQ(server.active_connections(), 0u);
  EXPECT_EQ(db.active_sessions(), 0u);
}

TEST(ServerAdmissionTest, MalformedAndMistypedFramesAnsweredTyped) {
  DeductiveDatabase db;
  DeclareSchema(&db);
  LoopbackNetwork network;
  Server server(&db);
  ASSERT_TRUE(server.Serve(network.TakeListener()).ok());

  // A response-typed frame from a client is a protocol error.
  {
    Result<std::unique_ptr<Connection>> conn = network.Connect();
    ASSERT_TRUE(conn.ok());
    Client client(std::move(*conn));
    ASSERT_TRUE(client.SendRaw(FrameType::kQueryOk, "").ok());
    Result<OwnedFrame> frame = client.ReceiveRaw();
    ASSERT_TRUE(frame.ok());
    ASSERT_EQ(frame->type, FrameType::kError);
    Result<ErrorReply> error = DecodeErrorReply(frame->payload);
    ASSERT_TRUE(error.ok());
    EXPECT_EQ(error->code, StatusCode::kInvalidArgument);
  }
  // A garbage payload in a valid frame gets a typed malformed-frame error.
  {
    Result<std::unique_ptr<Connection>> conn = network.Connect();
    ASSERT_TRUE(conn.ok());
    Client client(std::move(*conn));
    ASSERT_TRUE(client.SendRaw(FrameType::kQuery, "\x01garbage").ok());
    Result<OwnedFrame> frame = client.ReceiveRaw();
    ASSERT_TRUE(frame.ok());
    ASSERT_EQ(frame->type, FrameType::kError);
    Result<ErrorReply> error = DecodeErrorReply(frame->payload);
    ASSERT_TRUE(error.ok());
    EXPECT_EQ(error->code, StatusCode::kInvalidArgument);
    EXPECT_NE(error->message.find("malformed frame"), std::string::npos)
        << error->message;
  }
  // An unknown predicate in a well-formed query: typed kNotFound.
  {
    Result<std::unique_ptr<Connection>> conn = network.Connect();
    ASSERT_TRUE(conn.ok());
    Client client(std::move(*conn));
    Result<QueryReply> reply =
        client.Query({client.MakeAtom("NoSuchPred", {client.Variable("x")})});
    ASSERT_FALSE(reply.ok());
    EXPECT_EQ(reply.status().code(), StatusCode::kNotFound);
  }
  server.Stop();
}

}  // namespace
}  // namespace deddb::server
