// The real-socket half of the transport contract: frames round-trip over
// 127.0.0.1 TCP exactly as over the loopback transport, and an abrupt close
// surfaces as clean EOF / typed error, never a hang. Sandboxes without
// socket support skip gracefully (the loopback suites still cover the
// protocol logic there).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <utility>

#include "core/deductive_database.h"
#include "server/chaos.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "server/tcp.h"

namespace deddb::server {
namespace {

/// Listener bound to an ephemeral port, or nullptr when the environment
/// forbids sockets (the skip condition).
std::unique_ptr<TcpListener> TryListen() {
  Result<std::unique_ptr<TcpListener>> listener = TcpListener::Listen(0);
  if (!listener.ok()) return nullptr;
  return std::move(*listener);
}

#define SKIP_WITHOUT_SOCKETS(listener)                                   \
  if ((listener) == nullptr) {                                           \
    GTEST_SKIP() << "TCP sockets unavailable in this environment";       \
  }

TEST(TcpTransportTest, FramesRoundTripOverRealSockets) {
  std::unique_ptr<TcpListener> listener = TryListen();
  SKIP_WITHOUT_SOCKETS(listener);
  const uint16_t port = listener->bound_port();

  // Echo peer: read one frame, bump the type to the reply range, echo the
  // payload back.
  std::thread server([&listener] {
    Result<std::unique_ptr<Connection>> conn = listener->Accept();
    ASSERT_TRUE(conn.ok()) << conn.status().ToString();
    Result<std::optional<OwnedFrame>> frame = ReadFrame(conn->get());
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    ASSERT_TRUE(frame->has_value());
    ASSERT_TRUE(WriteFrame(conn->get(), FrameType::kStatsOk,
                           (*frame)->request_id, (*frame)->payload)
                    .ok());
  });

  Result<std::unique_ptr<Connection>> conn = TcpConnect("127.0.0.1", port);
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  const std::string payload(100000, 'x');  // spans many TCP segments
  ASSERT_TRUE(WriteFrame(conn->get(), FrameType::kStats, 7, payload).ok());
  Result<std::optional<OwnedFrame>> reply = ReadFrame(conn->get());
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_TRUE(reply->has_value());
  EXPECT_EQ((*reply)->type, FrameType::kStatsOk);
  EXPECT_EQ((*reply)->request_id, 7u);
  EXPECT_EQ((*reply)->payload, payload);
  server.join();
}

TEST(TcpTransportTest, AbruptCloseIsEofOrTypedErrorNeverAHang) {
  std::unique_ptr<TcpListener> listener = TryListen();
  SKIP_WITHOUT_SOCKETS(listener);
  const uint16_t port = listener->bound_port();

  std::thread server([&listener] {
    Result<std::unique_ptr<Connection>> conn = listener->Accept();
    ASSERT_TRUE(conn.ok());
    // Send only a torn prefix of a frame, then slam the connection shut.
    const char torn[] = {64, 0, 0};  // claims a 64-byte body, delivers none
    (void)(*conn)->Write(torn, sizeof(torn));
    (*conn)->Close();
  });

  Result<std::unique_ptr<Connection>> conn = TcpConnect("127.0.0.1", port);
  ASSERT_TRUE(conn.ok());
  Result<std::optional<OwnedFrame>> read = ReadFrame(conn->get());
  // A torn header is a typed error (connection closed mid-frame); the write
  // having raced the close into nothing at all would be clean EOF. Either
  // way ReadFrame returned instead of blocking.
  if (read.ok()) {
    EXPECT_FALSE(read->has_value());
  } else {
    EXPECT_EQ(read.status().code(), StatusCode::kInvalidArgument);
  }
  server.join();
}

TEST(TcpTransportTest, ServerAndRetryingClientComposeOverTcp) {
  // End-to-end: the real Server on a TCP listener, a retrying tokened
  // client dialing through TcpConnect, and the chaos decorator proving the
  // FaultyNetwork composes with real sockets as it does with loopback.
  std::unique_ptr<TcpListener> listener = TryListen();
  SKIP_WITHOUT_SOCKETS(listener);
  const uint16_t port = listener->bound_port();

  DeductiveDatabase db;
  ASSERT_TRUE(db.DeclareBase("Q", 1).ok());
  Server server(&db);
  ASSERT_TRUE(server.Serve(std::move(listener)).ok());

  FaultyNetwork::Options faults;
  faults.seed = 11;
  faults.reset_read_per_mille = 120;
  faults.truncate_write_per_mille = 120;
  FaultyNetwork chaos(faults);

  ClientOptions options;
  options.client_id = 1;
  options.max_attempts = 100;
  options.backoff.base = std::chrono::microseconds(50);
  options.backoff.cap = std::chrono::microseconds(1000);
  Client client(
      [&chaos, port]() -> Result<std::unique_ptr<Connection>> {
        Result<std::unique_ptr<Connection>> conn =
            TcpConnect("127.0.0.1", port);
        if (!conn.ok()) return conn.status();
        return chaos.Wrap(std::move(*conn));
      },
      options);

  for (int i = 0; i < 20; ++i) {
    Transaction txn;
    ASSERT_TRUE(
        txn.AddInsert(client.GroundAtom("Q", {std::to_string(i)})).ok());
    Result<ApplyReply> reply = client.Apply(txn);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  }
  Result<QueryReply> read =
      client.Query({client.MakeAtom("Q", {client.Variable("x")})});
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->answers[0].size(), 20u);  // exactly once, despite retries
  server.Stop();
}

}  // namespace
}  // namespace deddb::server
