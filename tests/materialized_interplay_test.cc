// Interplay of materialized views with both interpretations: the old state
// of a materialized view is, by definition, its stored extension; both
// interpreters must read it from the store (not re-derive it), and the
// combined processor must keep store and base facts in lockstep.

#include <gtest/gtest.h>

#include "core/deductive_database.h"
#include "core/update_processor.h"
#include "parser/parser.h"

namespace deddb {
namespace {

std::unique_ptr<DeductiveDatabase> Load(bool simplify = true) {
  auto db = std::make_unique<DeductiveDatabase>(
      EventCompilerOptions{.simplify = simplify, .obs = {}});
  EXPECT_TRUE(LoadProgram(db.get(), R"(
    base Q/1. base R/1.
    materialized view P/1.
    view Upper/1.
    P(x) <- Q(x) & not R(x).
    Upper(x) <- P(x).
    Q(A). Q(B). R(B).
  )")
                  .ok());
  EXPECT_TRUE(db->InitializeMaterializedViews().ok());
  return db;
}

TEST(MaterializedInterplayTest, UnsimplifiedModeReconcilesStaleTuples) {
  // Plant a tuple in the store that the rules cannot derive. Per the literal
  // event rule δP <- P⁰ & ¬Pⁿ (with P⁰ = the stored extension), any
  // transaction induces del P(Z). The *unsimplified* compilation, whose
  // deletion candidates are all of P⁰, reconciles it away.
  auto db = Load(/*simplify=*/false);
  SymbolId p = db->database().FindPredicate("P").value();
  SymbolId z = db->symbols().Intern("Z");
  db->database().materialized_store().Add(p, {z});

  auto txn = ParseTransaction(db.get(), "ins Q(C)");
  ASSERT_TRUE(txn.ok());
  auto result = db->MaintainMaterializedViews(*txn, /*apply=*/true);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->delta.ContainsDelete(p, {z}))
      << "stale stored tuple must be reconciled away";
  EXPECT_TRUE(result->delta.ContainsInsert(p, {db->symbols().Intern("C")}));
  EXPECT_FALSE(db->database().materialized_store().Contains(p, {z}));
}

TEST(MaterializedInterplayTest, SimplifiedModeAssumesFaithfulStore) {
  // The simplified deletion candidates (dcand$P) cover exactly the tuples
  // whose *derivation* an event may break — valid under the documented
  // contract that the store is rule-consistent (initialized and maintained
  // through this API). A hand-corrupted tuple is outside that contract and
  // is left alone; this test pins the behavior so the contract is explicit.
  auto db = Load(/*simplify=*/true);
  SymbolId p = db->database().FindPredicate("P").value();
  SymbolId z = db->symbols().Intern("Z");
  db->database().materialized_store().Add(p, {z});

  auto txn = ParseTransaction(db.get(), "ins Q(C)");
  ASSERT_TRUE(txn.ok());
  auto result = db->MaintainMaterializedViews(*txn, /*apply=*/true);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->delta.ContainsDelete(p, {z}));
  EXPECT_TRUE(result->delta.ContainsInsert(p, {db->symbols().Intern("C")}));
}

TEST(MaterializedInterplayTest, DownwardTreatsStoreAsOldState) {
  auto db = Load();
  SymbolId p = db->database().FindPredicate("P").value();
  SymbolId a = db->symbols().Intern("A");
  // Remove P(A) from the store: per materialized semantics P(A) does not
  // hold in the old state, so requesting its insertion is satisfiable —
  // trivially, since the new state re-derives it whenever nothing changes?
  // No: the transition rules derive Pⁿ(A) from Q(A) & ¬R(A) regardless of
  // the store, so ιP(A) = Pⁿ(A) ∧ ¬P⁰(A) holds with the EMPTY transaction.
  db->database().materialized_store().Remove(p, {a});
  auto request = ParseRequest(db.get(), "ins P(A)");
  ASSERT_TRUE(request.ok());
  auto result = db->TranslateViewUpdate(*request);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(result->Satisfiable());
  // The minimal translation is the empty transaction (plus requirements
  // not to break the derivation).
  EXPECT_TRUE(result->translations[0].transaction.empty())
      << result->translations[0].ToString(db->symbols());
}

TEST(MaterializedInterplayTest, ProcessorKeepsStoreInLockstep) {
  auto db = Load();
  UpdateProcessor processor(db.get());
  SymbolId p = db->database().FindPredicate("P").value();

  // Three consecutive accepted transactions; after each, the store equals a
  // from-scratch recomputation.
  for (const char* body : {"ins Q(C)", "ins R(A)", "del R(B)"}) {
    auto txn = ParseTransaction(db.get(), body);
    ASSERT_TRUE(txn.ok());
    auto report = processor.ProcessTransaction(*txn, /*apply=*/true);
    ASSERT_TRUE(report.ok()) << report.status();
    ASSERT_TRUE(report->accepted);

    FactStore snapshot = db->database().materialized_store();
    ASSERT_TRUE(db->InitializeMaterializedViews().ok());
    EXPECT_EQ(snapshot.ToString(db->symbols()),
              db->database().materialized_store().ToString(db->symbols()))
        << "after " << body;
  }
  EXPECT_GT(db->database().materialized_store().Find(p)->size(), 0u);
}

}  // namespace
}  // namespace deddb
