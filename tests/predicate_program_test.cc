// Unit tests of the predicate registry (variants, display names, error
// paths) and of Program validation.

#include <gtest/gtest.h>

#include "datalog/predicate.h"
#include "datalog/program.h"

namespace deddb {
namespace {

class PredicateTableTest : public ::testing::Test {
 protected:
  SymbolTable symbols_;
  PredicateTable predicates_{&symbols_};
};

TEST_F(PredicateTableTest, DeclareAndLookup) {
  auto works = predicates_.Declare("Works", 2, PredicateKind::kBase,
                                   PredicateSemantics::kPlain);
  ASSERT_TRUE(works.ok());
  const PredicateInfo* info = predicates_.Find(*works);
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->arity, 2u);
  EXPECT_EQ(info->kind, PredicateKind::kBase);
  EXPECT_EQ(info->variant, PredicateVariant::kOld);
  EXPECT_EQ(info->base_symbol, *works);
}

TEST_F(PredicateTableTest, RedeclarationIdempotentWhenIdentical) {
  auto a = predicates_.Declare("P", 1, PredicateKind::kDerived,
                               PredicateSemantics::kView);
  auto b = predicates_.Declare("P", 1, PredicateKind::kDerived,
                               PredicateSemantics::kView);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST_F(PredicateTableTest, ConflictingRedeclarationFails) {
  ASSERT_TRUE(predicates_
                  .Declare("P", 1, PredicateKind::kDerived,
                           PredicateSemantics::kView)
                  .ok());
  EXPECT_EQ(predicates_
                .Declare("P", 2, PredicateKind::kDerived,
                         PredicateSemantics::kView)
                .status()
                .code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(predicates_
                .Declare("P", 1, PredicateKind::kBase,
                         PredicateSemantics::kPlain)
                .status()
                .code(),
            StatusCode::kAlreadyExists);
}

TEST_F(PredicateTableTest, BasePredicateCannotCarrySemantics) {
  EXPECT_EQ(predicates_
                .Declare("B", 1, PredicateKind::kBase,
                         PredicateSemantics::kIc)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(PredicateTableTest, VariantsAreCreatedOnDemand) {
  SymbolId p = predicates_
                   .Declare("P", 1, PredicateKind::kDerived,
                            PredicateSemantics::kPlain)
                   .value();
  auto ins = predicates_.VariantOf(p, PredicateVariant::kInsertEvent);
  ASSERT_TRUE(ins.ok());
  EXPECT_EQ(symbols_.NameOf(*ins), "ins$P");
  const PredicateInfo* info = predicates_.Find(*ins);
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->variant, PredicateVariant::kInsertEvent);
  EXPECT_EQ(info->base_symbol, p);
  EXPECT_EQ(info->arity, 1u);

  // Idempotent.
  EXPECT_EQ(predicates_.VariantOf(p, PredicateVariant::kInsertEvent).value(),
            *ins);
  // kOld variant is the predicate itself.
  EXPECT_EQ(predicates_.VariantOf(p, PredicateVariant::kOld).value(), p);
}

TEST_F(PredicateTableTest, FindVariantIsConstAndRequiresCreation) {
  SymbolId p = predicates_
                   .Declare("P", 1, PredicateKind::kDerived,
                            PredicateSemantics::kPlain)
                   .value();
  EXPECT_EQ(
      predicates_.FindVariant(p, PredicateVariant::kNew).status().code(),
      StatusCode::kNotFound);
  SymbolId created = predicates_.VariantOf(p, PredicateVariant::kNew).value();
  EXPECT_EQ(predicates_.FindVariant(p, PredicateVariant::kNew).value(),
            created);
}

TEST_F(PredicateTableTest, VariantOfNonOldSymbolFails) {
  SymbolId p = predicates_
                   .Declare("P", 1, PredicateKind::kDerived,
                            PredicateSemantics::kPlain)
                   .value();
  SymbolId ins = predicates_.VariantOf(p, PredicateVariant::kInsertEvent)
                     .value();
  EXPECT_FALSE(predicates_.VariantOf(ins, PredicateVariant::kNew).ok());
}

TEST_F(PredicateTableTest, DisplayNamesUndecorate) {
  SymbolId p = predicates_
                   .Declare("Works", 1, PredicateKind::kDerived,
                            PredicateSemantics::kPlain)
                   .value();
  SymbolId ins = predicates_.VariantOf(p, PredicateVariant::kInsertEvent)
                     .value();
  SymbolId del = predicates_.VariantOf(p, PredicateVariant::kDeleteEvent)
                     .value();
  SymbolId nw = predicates_.VariantOf(p, PredicateVariant::kNew).value();
  EXPECT_EQ(predicates_.DisplayName(p), "Works");
  EXPECT_EQ(predicates_.DisplayName(ins), "ins Works");
  EXPECT_EQ(predicates_.DisplayName(del), "del Works");
  EXPECT_EQ(predicates_.DisplayName(nw), "Works'");
}

TEST_F(PredicateTableTest, OldPredicatesListsDeclarationOrder) {
  SymbolId a = predicates_
                   .Declare("A", 0, PredicateKind::kBase,
                            PredicateSemantics::kPlain)
                   .value();
  SymbolId b = predicates_
                   .Declare("B", 0, PredicateKind::kDerived,
                            PredicateSemantics::kPlain)
                   .value();
  // Variants must not appear in old_predicates().
  predicates_.VariantOf(b, PredicateVariant::kNew).value();
  EXPECT_EQ(predicates_.old_predicates(), (std::vector<SymbolId>{a, b}));
}

class ProgramTest : public ::testing::Test {
 protected:
  SymbolTable symbols_;
  PredicateTable predicates_{&symbols_};
  SymbolId base_ = predicates_
                       .Declare("B", 1, PredicateKind::kBase,
                                PredicateSemantics::kPlain)
                       .value();
  SymbolId derived_ = predicates_
                          .Declare("D", 1, PredicateKind::kDerived,
                                   PredicateSemantics::kPlain)
                          .value();
  VarId x_ = symbols_.InternVar("x");

  Rule GoodRule() {
    Term x = Term::MakeVariable(x_);
    return Rule(Atom(derived_, {x}), {Literal::Positive(Atom(base_, {x}))});
  }
};

TEST_F(ProgramTest, AddValidRule) {
  Program program;
  ASSERT_TRUE(program.AddRule(GoodRule(), predicates_).ok());
  EXPECT_EQ(program.size(), 1u);
  EXPECT_TRUE(program.Defines(derived_));
  EXPECT_FALSE(program.Defines(base_));
  EXPECT_EQ(program.RulesFor(derived_).size(), 1u);
  EXPECT_EQ(program.RuleIndicesFor(derived_), (std::vector<size_t>{0}));
}

TEST_F(ProgramTest, RejectsBaseHead) {
  Program program;
  Term x = Term::MakeVariable(x_);
  Rule bad(Atom(base_, {x}), {Literal::Positive(Atom(derived_, {x}))});
  EXPECT_EQ(program.AddRule(bad, predicates_).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ProgramTest, RejectsArityMismatch) {
  Program program;
  Rule bad(Atom(derived_, {Term::MakeVariable(x_), Term::MakeVariable(x_)}),
           {Literal::Positive(Atom(base_, {Term::MakeVariable(x_)}))});
  EXPECT_FALSE(program.AddRule(bad, predicates_).ok());
}

TEST_F(ProgramTest, RejectsEmptyBody) {
  Program program;
  Rule bad(Atom(derived_, {Term::MakeConstant(symbols_.Intern("A"))}), {});
  EXPECT_FALSE(program.AddRule(bad, predicates_).ok());
}

TEST_F(ProgramTest, RejectsUndeclaredBodyPredicate) {
  Program program;
  SymbolId unknown = symbols_.Intern("Unknown");
  Term x = Term::MakeVariable(x_);
  Rule bad(Atom(derived_, {x}), {Literal::Positive(Atom(unknown, {x}))});
  EXPECT_EQ(program.AddRule(bad, predicates_).code(), StatusCode::kNotFound);
}

TEST_F(ProgramTest, RejectsUnsafeRule) {
  Program program;
  VarId y = symbols_.InternVar("y");
  Rule bad(Atom(derived_, {Term::MakeVariable(y)}),
           {Literal::Positive(Atom(base_, {Term::MakeVariable(x_)}))});
  EXPECT_FALSE(program.AddRule(bad, predicates_).ok());
}

TEST_F(ProgramTest, ToStringListsRules) {
  Program program;
  ASSERT_TRUE(program.AddRule(GoodRule(), predicates_).ok());
  EXPECT_EQ(program.ToString(symbols_), "D(x) <- B(x)\n");
}

}  // namespace
}  // namespace deddb
