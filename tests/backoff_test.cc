// util::Backoff: the capped decorrelated-jitter schedule behind the client's
// retry loop. Deterministic given a seed, bounded by [base, cap], and
// growing (in expectation) until the cap absorbs it.

#include "util/backoff.h"

#include <gtest/gtest.h>

#include <chrono>

namespace deddb {
namespace {

using std::chrono::microseconds;

TEST(BackoffTest, DelaysStayWithinBaseAndCap) {
  Backoff::Options options;
  options.base = microseconds(100);
  options.cap = microseconds(5000);
  options.seed = 7;
  Backoff backoff(options);
  for (int i = 0; i < 200; ++i) {
    microseconds delay = backoff.NextDelay();
    EXPECT_GE(delay, options.base) << "attempt " << i;
    EXPECT_LE(delay, options.cap) << "attempt " << i;
  }
  EXPECT_EQ(backoff.attempts(), 200u);
}

TEST(BackoffTest, SameSeedReplaysTheSameSchedule) {
  Backoff::Options options;
  options.base = microseconds(50);
  options.cap = microseconds(20000);
  options.seed = 42;
  Backoff a(options);
  Backoff b(options);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.NextDelay().count(), b.NextDelay().count());
  }
}

TEST(BackoffTest, DifferentSeedsDecorrelate) {
  Backoff::Options options;
  options.base = microseconds(50);
  options.cap = microseconds(20000);
  options.seed = 1;
  Backoff a(options);
  options.seed = 2;
  Backoff b(options);
  int differing = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.NextDelay() != b.NextDelay()) ++differing;
  }
  EXPECT_GT(differing, 25);
}

TEST(BackoffTest, GrowsTowardTheCap) {
  // Decorrelated jitter: each delay is uniform in [base, min(cap, 3*prev)],
  // so the reachable range expands until the cap clamps it. After enough
  // attempts the maximum observed delay should approach the cap — while a
  // fixed-base schedule would never exceed base.
  Backoff::Options options;
  options.base = microseconds(100);
  options.cap = microseconds(10000);
  options.seed = 3;
  Backoff backoff(options);
  microseconds max_seen{0};
  for (int i = 0; i < 100; ++i) {
    max_seen = std::max(max_seen, backoff.NextDelay());
  }
  EXPECT_GT(max_seen, microseconds(1000));
}

TEST(BackoffTest, ResetRestartsTheSchedule) {
  Backoff::Options options;
  options.base = microseconds(100);
  options.cap = microseconds(10000);
  options.seed = 9;
  Backoff backoff(options);
  // Drain some attempts so the internal state has grown.
  for (int i = 0; i < 20; ++i) backoff.NextDelay();
  backoff.Reset();
  EXPECT_EQ(backoff.attempts(), 0u);
  // The first post-Reset delay is drawn from [base, 3*base] again, not from
  // the grown range.
  microseconds first = backoff.NextDelay();
  EXPECT_LE(first, microseconds(300));
}

TEST(BackoffTest, DegenerateOptionsAreClamped) {
  // cap below base and a zero base must not divide by zero or invert the
  // range; the schedule degrades to a fixed small delay.
  Backoff::Options options;
  options.base = microseconds(0);
  options.cap = microseconds(0);
  options.seed = 5;
  Backoff backoff(options);
  for (int i = 0; i < 10; ++i) {
    microseconds delay = backoff.NextDelay();
    EXPECT_GE(delay.count(), 1);
    EXPECT_LE(delay.count(), 10);
  }
}

}  // namespace
}  // namespace deddb
