// Tests of the resource-governance subsystem: ResourceGuard semantics
// (deadline, budgets, cancellation, telemetry), guard behavior threaded
// through the evaluator / interpreters / facade, determinism of budget
// trips across thread counts, the typed round-limit status, and
// FaultInjector-driven rollback of the UpdateProcessor's atomic apply.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "core/deductive_database.h"
#include "core/update_processor.h"
#include "eval/bottom_up.h"
#include "eval/query_engine.h"
#include "parser/parser.h"
#include "util/resource_guard.h"
#include "workload/random_programs.h"
#include "workload/towers.h"

namespace deddb {
namespace {

using std::chrono::milliseconds;
using std::chrono::nanoseconds;
using workload::MakeRandomDatabase;
using workload::MakeTowerDatabase;
using workload::RandomProgramConfig;
using workload::TowerConfig;

std::unique_ptr<DeductiveDatabase> Load(const char* source) {
  auto db = std::make_unique<DeductiveDatabase>();
  auto loaded = LoadProgram(db.get(), source);
  EXPECT_TRUE(loaded.ok()) << loaded.status();
  return db;
}

// Canonical rendering of all persistent state of a facade: base facts plus
// the materialized-view store. Rollback tests compare this before/after.
std::string StateSnapshot(const DeductiveDatabase& db) {
  return db.database().facts().ToString(db.symbols()) + "\n---\n" +
         db.database().materialized_store().ToString(db.symbols());
}

// Guards a test against a stuck injector: every test that arms the
// process-wide FaultInjector goes through this scope.
struct ScopedFault {
  ScopedFault(FaultPoint point, size_t trigger_at, Status fault) {
    FaultInjector::Instance().Arm(point, trigger_at, std::move(fault));
  }
  ~ScopedFault() { FaultInjector::Instance().Disarm(); }
};

// ---------------------------------------------------------------------------
// ResourceGuard unit semantics.

TEST(ResourceGuardTest, DefaultGuardIsInert) {
  ResourceGuard guard;
  EXPECT_TRUE(guard.Check().ok());
  for (int i = 0; i < 200; ++i) EXPECT_TRUE(guard.CheckTick().ok());
  EXPECT_TRUE(guard.ChargeDerivedFacts(1 << 20).ok());
  EXPECT_TRUE(guard.ChargeDnfTerms(1 << 20).ok());
  EXPECT_EQ(guard.derived_facts_charged(), size_t{1} << 20);
  EXPECT_EQ(guard.dnf_terms_charged(), size_t{1} << 20);
}

TEST(ResourceGuardTest, NullGuardHelpersAreNoOps) {
  EXPECT_TRUE(ResourceGuard::Check(nullptr).ok());
  EXPECT_TRUE(ResourceGuard::CheckTick(nullptr).ok());
  EXPECT_TRUE(ResourceGuard::ChargeDerivedFacts(nullptr, 10).ok());
  EXPECT_TRUE(ResourceGuard::ChargeDnfTerms(nullptr, 10).ok());
}

TEST(ResourceGuardTest, ExpiredDeadlineTripsCheck) {
  ResourceLimits limits;
  limits.deadline = nanoseconds(1);
  ResourceGuard guard(limits);
  // One nanosecond is over by the time we can ask.
  Status status = guard.Check();
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
}

TEST(ResourceGuardTest, CheckTickObservesDeadlineWithinOneStride) {
  ResourceLimits limits;
  limits.deadline = nanoseconds(1);
  ResourceGuard guard(limits);
  // The clock is only read every kTickStride-th call, so the trip is not
  // necessarily immediate — but it must land within one stride.
  Status status = Status::Ok();
  for (int i = 0; i < 65 && status.ok(); ++i) status = guard.CheckTick();
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
}

TEST(ResourceGuardTest, DerivedFactBudgetTripsPastLimit) {
  ResourceLimits limits;
  limits.max_derived_facts = 10;
  ResourceGuard guard(limits);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(guard.ChargeDerivedFacts(1).ok()) << "charge " << i;
  }
  Status status = guard.ChargeDerivedFacts(1);
  EXPECT_EQ(status.code(), StatusCode::kBudgetExceeded);
  EXPECT_EQ(guard.derived_facts_charged(), 11u);
  // The clock and the other budget are unaffected.
  EXPECT_TRUE(guard.Check().ok());
  EXPECT_TRUE(guard.ChargeDnfTerms(1).ok());
}

TEST(ResourceGuardTest, DnfTermBudgetTripsPastLimit) {
  ResourceLimits limits;
  limits.max_dnf_terms = 4;
  ResourceGuard guard(limits);
  EXPECT_TRUE(guard.ChargeDnfTerms(4).ok());
  EXPECT_EQ(guard.ChargeDnfTerms(1).code(), StatusCode::kBudgetExceeded);
}

TEST(ResourceGuardTest, CancellationObservedByEveryCheck) {
  CancellationToken token;
  ResourceGuard guard(ResourceLimits{}, &token);
  EXPECT_TRUE(guard.Check().ok());
  token.Cancel();
  // Unlike the deadline, cancellation is seen by every tick, not only every
  // stride-th one.
  EXPECT_EQ(guard.Check().code(), StatusCode::kCancelled);
  EXPECT_EQ(guard.CheckTick().code(), StatusCode::kCancelled);
  EXPECT_EQ(guard.CheckTick().code(), StatusCode::kCancelled);
  token.Reset();
  EXPECT_TRUE(guard.Check().ok());
}

TEST(ResourceGuardTest, RestartRearmsDeadlineAndZeroesCounters) {
  ResourceLimits limits;
  limits.deadline = std::chrono::hours(1);
  limits.max_derived_facts = 5;
  ResourceGuard guard(limits);
  EXPECT_EQ(guard.ChargeDerivedFacts(6).code(), StatusCode::kBudgetExceeded);
  guard.Restart();
  EXPECT_EQ(guard.derived_facts_charged(), 0u);
  EXPECT_EQ(guard.dnf_terms_charged(), 0u);
  EXPECT_TRUE(guard.ChargeDerivedFacts(5).ok());
  EXPECT_TRUE(guard.Check().ok());
  EXPECT_GE(guard.elapsed().count(), 0);
}

// ---------------------------------------------------------------------------
// FaultInjector unit semantics.

TEST(FaultInjectorTest, InertByDefaultAndAfterDisarm) {
  FaultInjector& injector = FaultInjector::Instance();
  EXPECT_FALSE(injector.armed());
  EXPECT_TRUE(injector.Poke(FaultPoint::kEvalRoundStart).ok());
  EXPECT_EQ(injector.HitCount(FaultPoint::kEvalRoundStart), 0u);
}

TEST(FaultInjectorTest, TriggersAtTheConfiguredPokeAndStaysSticky) {
  ScopedFault fault(FaultPoint::kDnfExpand, 3, InternalError("boom"));
  FaultInjector& injector = FaultInjector::Instance();
  EXPECT_TRUE(injector.Poke(FaultPoint::kDnfExpand).ok());
  // Pokes at other points never trigger but are counted.
  EXPECT_TRUE(injector.Poke(FaultPoint::kEvalMerge).ok());
  EXPECT_TRUE(injector.Poke(FaultPoint::kDnfExpand).ok());
  EXPECT_EQ(injector.Poke(FaultPoint::kDnfExpand).code(),
            StatusCode::kInternal);
  // Sticky: every later poke at the armed point keeps failing.
  EXPECT_EQ(injector.Poke(FaultPoint::kDnfExpand).code(),
            StatusCode::kInternal);
  EXPECT_EQ(injector.HitCount(FaultPoint::kDnfExpand), 4u);
  EXPECT_EQ(injector.HitCount(FaultPoint::kEvalMerge), 1u);
}

TEST(FaultInjectorTest, FaultPointNamesAreStable) {
  EXPECT_STREQ(FaultPointName(FaultPoint::kEvalRoundStart),
               "EVAL_ROUND_START");
  EXPECT_STREQ(FaultPointName(FaultPoint::kProcessorCommit),
               "PROCESSOR_COMMIT");
}

// ---------------------------------------------------------------------------
// Guarded bottom-up evaluation.

Result<FactStore> EvaluateGuarded(const DeductiveDatabase& db,
                                  const ResourceGuard* guard,
                                  size_t num_threads,
                                  EvaluationStats* stats = nullptr) {
  FactStoreProvider edb(&db.database().facts());
  EvaluationOptions options;
  options.guard = guard;
  options.num_threads = num_threads;
  BottomUpEvaluator evaluator(db.database().program(), db.symbols(), edb,
                              options);
  auto idb = evaluator.Evaluate();
  if (stats != nullptr) *stats = evaluator.stats();
  return idb;
}

TEST(GuardedEvaluationTest, InertGuardChangesNothing) {
  auto db = MakeTowerDatabase(TowerConfig{.depth = 3, .base_facts = 20});
  ASSERT_TRUE(db.ok()) << db.status();
  ResourceGuard guard;  // no limits
  auto unguarded = EvaluateGuarded(**db, nullptr, 0);
  auto guarded = EvaluateGuarded(**db, &guard, 0);
  ASSERT_TRUE(unguarded.ok());
  ASSERT_TRUE(guarded.ok());
  EXPECT_EQ(guarded->ToString((*db)->symbols()),
            unguarded->ToString((*db)->symbols()));
  // The guard saw every derivation go by.
  EXPECT_EQ(guard.derived_facts_charged(), guarded->TotalFacts());
}

TEST(GuardedEvaluationTest, ExpiredDeadlineUnwindsWithPartialStats) {
  auto db = MakeTowerDatabase(TowerConfig{.depth = 4, .base_facts = 50});
  ASSERT_TRUE(db.ok()) << db.status();
  ResourceLimits limits;
  limits.deadline = nanoseconds(1);
  ResourceGuard guard(limits);
  EvaluationStats stats;
  auto idb = EvaluateGuarded(**db, &guard, 0, &stats);
  ASSERT_FALSE(idb.ok());
  EXPECT_EQ(idb.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(stats.interrupted);
}

TEST(GuardedEvaluationTest, DerivedFactBudgetUnwindsSerialAndParallel) {
  auto db = MakeTowerDatabase(TowerConfig{.depth = 4, .base_facts = 50});
  ASSERT_TRUE(db.ok()) << db.status();
  for (size_t threads : {0u, 1u, 2u, 8u}) {
    ResourceLimits limits;
    limits.max_derived_facts = 30;
    ResourceGuard guard(limits);
    EvaluationStats stats;
    auto idb = EvaluateGuarded(**db, &guard, threads, &stats);
    ASSERT_FALSE(idb.ok()) << "threads=" << threads;
    EXPECT_EQ(idb.status().code(), StatusCode::kBudgetExceeded)
        << "threads=" << threads;
    EXPECT_TRUE(stats.interrupted) << "threads=" << threads;
    // Charge-before-add: the budget trips on the (limit+1)-th derivation in
    // every mode, so the telemetry is exact and mode-independent.
    EXPECT_EQ(guard.derived_facts_charged(), 31u) << "threads=" << threads;
    EXPECT_LE(stats.derived_facts, 30u) << "threads=" << threads;
  }
}

TEST(GuardedEvaluationTest, BudgetStatusIdenticalAcrossThreadCounts) {
  RandomProgramConfig config;
  config.seed = 42;
  config.allow_recursion = true;
  config.facts_per_base = 40;
  auto db = MakeRandomDatabase(config);
  ASSERT_TRUE(db.ok()) << db.status();
  // The seed is chosen so the program derives more than the budget.
  auto oracle = EvaluateGuarded(**db, nullptr, 0);
  ASSERT_TRUE(oracle.ok());
  ASSERT_GT(oracle->TotalFacts(), 10u);
  std::vector<std::string> statuses;
  std::vector<size_t> charged;
  for (size_t threads : {1u, 2u, 8u}) {
    ResourceLimits limits;
    limits.max_derived_facts = 10;
    ResourceGuard guard(limits);
    auto idb = EvaluateGuarded(**db, &guard, threads);
    ASSERT_FALSE(idb.ok()) << "threads=" << threads;
    statuses.push_back(idb.status().ToString());
    charged.push_back(guard.derived_facts_charged());
  }
  // Budgets are charged single-threaded at the fixed-order round merge, so
  // every parallel thread count trips at the identical derivation with the
  // identical message.
  for (size_t i = 1; i < statuses.size(); ++i) {
    EXPECT_EQ(statuses[i], statuses[0]);
    EXPECT_EQ(charged[i], charged[0]);
  }
}

TEST(GuardedEvaluationTest, PreCancelledTokenUnwindsEveryMode) {
  auto db = MakeTowerDatabase(TowerConfig{.depth = 3, .base_facts = 20});
  ASSERT_TRUE(db.ok()) << db.status();
  CancellationToken token;
  token.Cancel();
  ResourceGuard guard(ResourceLimits{}, &token);
  for (size_t threads : {0u, 2u}) {
    EvaluationStats stats;
    auto idb = EvaluateGuarded(**db, &guard, threads, &stats);
    ASSERT_FALSE(idb.ok()) << "threads=" << threads;
    EXPECT_EQ(idb.status().code(), StatusCode::kCancelled)
        << "threads=" << threads;
    EXPECT_TRUE(stats.interrupted);
  }
  // After the owner resets the token the same guard works again.
  token.Reset();
  guard.Restart();
  EXPECT_TRUE(EvaluateGuarded(**db, &guard, 0).ok());
}

TEST(GuardedEvaluationTest, RoundLimitIsTypedAndModeIndependent) {
  auto db = Load(R"(
    base Edge/2.
    derived Path/2.
    Path(x, y) <- Edge(x, y).
    Path(x, y) <- Path(x, z) & Edge(z, y).
    Edge(A, B). Edge(B, C). Edge(C, D). Edge(D, E).
  )");
  std::vector<std::string> statuses;
  for (size_t threads : {0u, 1u, 4u}) {
    FactStoreProvider edb(&db->database().facts());
    EvaluationOptions options;
    options.max_rounds = 2;
    options.num_threads = threads;
    BottomUpEvaluator evaluator(db->database().program(), db->symbols(), edb,
                                options);
    auto idb = evaluator.Evaluate();
    ASSERT_FALSE(idb.ok()) << "threads=" << threads;
    EXPECT_EQ(idb.status().code(), StatusCode::kRoundLimit)
        << "threads=" << threads;
    statuses.push_back(idb.status().ToString());
  }
  // The parallel path reports exactly what the serial oracle reports.
  for (size_t i = 1; i < statuses.size(); ++i) {
    EXPECT_EQ(statuses[i], statuses[0]);
  }
}

TEST(GuardedEvaluationTest, QueryEngineForwardsGuardFailures) {
  auto db = Load(R"(
    base Edge/2.
    derived Path/2.
    Path(x, y) <- Edge(x, y).
    Path(x, y) <- Path(x, z) & Edge(z, y).
    Edge(A, B). Edge(B, C). Edge(C, D).
  )");
  FactStoreProvider edb(&db->database().facts());
  CancellationToken token;
  token.Cancel();
  ResourceGuard guard(ResourceLimits{}, &token);
  EvaluationOptions options;
  options.guard = &guard;
  QueryEngine engine(db->database().program(), db->symbols(), edb, options);
  Atom pattern =
      db->MakeAtom("Path", {db->Variable("a"), db->Variable("b")}).value();
  auto answers = engine.SolveMaterialized(pattern);
  ASSERT_FALSE(answers.ok());
  EXPECT_EQ(answers.status().code(), StatusCode::kCancelled);
}

// ---------------------------------------------------------------------------
// Guarded interpretation through the facade.

const char* kEmployment = R"(
  base La/1. base Works/1. base U_benefit/1.
  materialized view Unemp/1.
  ic Ic1/1.
  condition Alert/1.
  Unemp(x) <- La(x) & not Works(x).
  Ic1(x) <- Unemp(x) & not U_benefit(x).
  Alert(x) <- Unemp(x).
  La(Dolors).
  U_benefit(Dolors).
)";

TEST(GuardedFacadeTest, EveryProblemSpecChecksTheGuard) {
  auto db = Load(kEmployment);
  ASSERT_TRUE(db->InitializeMaterializedViews().ok());
  CancellationToken token;
  ResourceGuard guard(ResourceLimits{}, &token);
  db->set_resource_guard(&guard);
  ASSERT_EQ(db->resource_guard(), &guard);

  // Sanity: everything runs with the armed-but-untripped guard.
  ASSERT_TRUE(db->IsConsistent().ok());

  token.Cancel();
  auto txn = ParseTransaction(db.get(), "ins La(Maria)");
  ASSERT_TRUE(txn.ok());
  auto request = ParseRequest(db.get(), "ins Unemp(Maria)");
  ASSERT_TRUE(request.ok());

  EXPECT_EQ(db->CheckIntegrity(*txn).status().code(), StatusCode::kCancelled);
  EXPECT_EQ(db->MonitorConditions(*txn).status().code(),
            StatusCode::kCancelled);
  EXPECT_EQ(db->MaintainMaterializedViews(*txn, /*apply=*/false)
                .status()
                .code(),
            StatusCode::kCancelled);
  EXPECT_EQ(db->TranslateViewUpdate(*request).status().code(),
            StatusCode::kCancelled);
  EXPECT_EQ(db->MaintainIntegrity(*txn).status().code(),
            StatusCode::kCancelled);
  EXPECT_EQ(db->CheckSatisfiability().status().code(), StatusCode::kCancelled);
  EXPECT_EQ(db->PreventSideEffects(*txn, {}).status().code(),
            StatusCode::kCancelled);
  problems::RuleUpdate noop_update;
  EXPECT_EQ(db->SimulateRuleUpdate(noop_update).status().code(),
            StatusCode::kCancelled);
  UpdateProcessor processor(db.get());
  EXPECT_EQ(processor.ProcessTransaction(*txn).status().code(),
            StatusCode::kCancelled);
  EXPECT_EQ(processor.ProcessViewUpdate(*request).status().code(),
            StatusCode::kCancelled);

  // Uncancelling restores every path; state was never touched.
  token.Reset();
  EXPECT_TRUE(db->TranslateViewUpdate(*request).ok());
  db->set_resource_guard(nullptr);
}

// Acceptance scenario: a downward view update whose DNF expansion explodes
// exponentially (negation tower, §4.2 worst case) against a 100ms deadline
// returns kDeadlineExceeded mid-flight with partial telemetry, and the
// database is byte-identical before and after.
TEST(GuardedFacadeTest, ExplodingDnfDeadlineLeavesDatabaseUntouched) {
  auto db = MakeTowerDatabase(
      TowerConfig{.depth = 24, .base_facts = 2, .with_negation = true});
  ASSERT_TRUE(db.ok()) << db.status();
  // Lift the structural disjunct cap out of the way so only the wall clock
  // can stop the expansion.
  (*db)->downward_options().max_disjuncts = size_t{1} << 40;
  std::string before = StateSnapshot(**db);

  ResourceLimits limits;
  limits.deadline = milliseconds(100);
  ResourceGuard guard(limits);
  (*db)->set_resource_guard(&guard);

  auto request =
      ParseRequest(db->get(), "del " + workload::TowerLayerName(24) + "(" +
                                  workload::TowerElementName(0) + ")");
  ASSERT_TRUE(request.ok()) << request.status();
  auto result = (*db)->TranslateViewUpdate(*request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  // Partial progress is visible through the guard's telemetry.
  EXPECT_GT(guard.dnf_terms_charged(), 0u);
  EXPECT_GE(guard.elapsed(), milliseconds(100));
  EXPECT_EQ(StateSnapshot(**db), before);
}

TEST(GuardedFacadeTest, DnfTermBudgetCapsDownwardExpansion) {
  auto db = MakeTowerDatabase(
      TowerConfig{.depth = 10, .base_facts = 2, .with_negation = true});
  ASSERT_TRUE(db.ok()) << db.status();
  (*db)->downward_options().max_disjuncts = size_t{1} << 40;
  ResourceLimits limits;
  limits.max_dnf_terms = 500;
  ResourceGuard guard(limits);
  (*db)->set_resource_guard(&guard);
  auto request =
      ParseRequest(db->get(), "del " + workload::TowerLayerName(10) + "(" +
                                  workload::TowerElementName(0) + ")");
  ASSERT_TRUE(request.ok()) << request.status();
  auto result = (*db)->TranslateViewUpdate(*request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kBudgetExceeded);
  EXPECT_GT(guard.dnf_terms_charged(), 500u);
}

// ---------------------------------------------------------------------------
// FaultInjector-driven unwind and rollback.

class ProcessorRollbackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = Load(kEmployment);
    ASSERT_TRUE(db_->InitializeMaterializedViews().ok());
    processor_ = std::make_unique<UpdateProcessor>(db_.get());
    auto txn =
        ParseTransaction(db_.get(), "ins La(Maria), ins U_benefit(Maria)");
    ASSERT_TRUE(txn.ok());
    txn_ = std::make_unique<Transaction>(std::move(*txn));
  }

  void TearDown() override { FaultInjector::Instance().Disarm(); }

  // Arms `point`, asserts the transaction fails with the injected fault and
  // that the database (base facts + materialized store) is untouched, then
  // disarms and asserts the same transaction goes through cleanly.
  void ExpectRollbackAt(FaultPoint point) {
    std::string before = StateSnapshot(*db_);
    {
      ScopedFault fault(point, 1,
                        InternalError(std::string("injected fault at ") +
                                      FaultPointName(point)));
      auto report = processor_->ProcessTransaction(*txn_, /*apply=*/true);
      ASSERT_FALSE(report.ok()) << FaultPointName(point);
      EXPECT_EQ(report.status().code(), StatusCode::kInternal)
          << FaultPointName(point);
      EXPECT_NE(report.status().ToString().find("injected fault"),
                std::string::npos);
      EXPECT_EQ(StateSnapshot(*db_), before)
          << "state leaked through " << FaultPointName(point);
      EXPECT_GE(FaultInjector::Instance().HitCount(point), 1u);
    }
    // The disarmed injector costs nothing and the same transaction commits.
    auto report = processor_->ProcessTransaction(*txn_, /*apply=*/true);
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_TRUE(report->accepted);
    EXPECT_NE(StateSnapshot(*db_), before);
  }

  std::unique_ptr<DeductiveDatabase> db_;
  std::unique_ptr<UpdateProcessor> processor_;
  std::unique_ptr<Transaction> txn_;
};

TEST_F(ProcessorRollbackTest, FaultBeforeViewApplyRollsBack) {
  ExpectRollbackAt(FaultPoint::kProcessorApplyViews);
}

TEST_F(ProcessorRollbackTest, FaultBetweenViewAndBaseApplyRollsBack) {
  ExpectRollbackAt(FaultPoint::kProcessorApplyBase);
}

TEST_F(ProcessorRollbackTest, FaultAtCommitRollsBackBaseAndViews) {
  ExpectRollbackAt(FaultPoint::kProcessorCommit);
}

TEST_F(ProcessorRollbackTest, UpwardFaultFailsBeforeAnyMutation) {
  ExpectRollbackAt(FaultPoint::kUpwardBody);
}

// View (re)materialization runs the bottom-up evaluator proper; a fault in
// a fixpoint round — serial or inside a parallel worker/merge — must leave
// the previously materialized store fully intact.
class MaterializationFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = Load(kEmployment);
    ASSERT_TRUE(db_->InitializeMaterializedViews().ok());
  }
  void TearDown() override { FaultInjector::Instance().Disarm(); }

  void ExpectUnwindAt(FaultPoint point, size_t num_threads) {
    db_->set_num_threads(num_threads);
    std::string before = StateSnapshot(*db_);
    {
      ScopedFault fault(point, 1,
                        InternalError(std::string("injected fault at ") +
                                      FaultPointName(point)));
      Status status = db_->InitializeMaterializedViews();
      ASSERT_FALSE(status.ok()) << FaultPointName(point);
      EXPECT_EQ(status.code(), StatusCode::kInternal) << FaultPointName(point);
      EXPECT_EQ(StateSnapshot(*db_), before)
          << "state leaked through " << FaultPointName(point);
      EXPECT_GE(FaultInjector::Instance().HitCount(point), 1u)
          << FaultPointName(point) << " never reached";
    }
    EXPECT_TRUE(db_->InitializeMaterializedViews().ok());
    EXPECT_EQ(StateSnapshot(*db_), before);
    db_->set_num_threads(0);
  }

  std::unique_ptr<DeductiveDatabase> db_;
};

TEST_F(MaterializationFaultTest, SerialRoundFaultUnwinds) {
  ExpectUnwindAt(FaultPoint::kEvalRoundStart, /*num_threads=*/0);
}

TEST_F(MaterializationFaultTest, ParallelRoundFaultUnwinds) {
  ExpectUnwindAt(FaultPoint::kEvalRoundStart, /*num_threads=*/2);
}

TEST_F(MaterializationFaultTest, ParallelWorkerFaultUnwinds) {
  ExpectUnwindAt(FaultPoint::kEvalWorkItem, /*num_threads=*/2);
}

TEST_F(MaterializationFaultTest, ParallelMergeFaultUnwinds) {
  ExpectUnwindAt(FaultPoint::kEvalMerge, /*num_threads=*/2);
}

TEST(FaultUnwindTest, DownwardInterpreterUnwindsCleanly) {
  auto db = Load(kEmployment);
  std::string before = StateSnapshot(*db);
  auto request = ParseRequest(db.get(), "ins Unemp(Maria)");
  ASSERT_TRUE(request.ok());
  for (FaultPoint point :
       {FaultPoint::kDownwardEvent, FaultPoint::kDnfExpand}) {
    ScopedFault fault(point, 1, InternalError("injected fault"));
    auto result = db->TranslateViewUpdate(*request);
    ASSERT_FALSE(result.ok()) << FaultPointName(point);
    EXPECT_EQ(result.status().code(), StatusCode::kInternal);
    EXPECT_EQ(StateSnapshot(*db), before);
  }
  // Disarmed: the same request succeeds.
  EXPECT_TRUE(db->TranslateViewUpdate(*request).ok());
}

TEST(FaultUnwindTest, FailedEventCompileDoesNotPoisonTheCache) {
  auto db = Load(kEmployment);
  auto request = ParseRequest(db.get(), "ins Unemp(Maria)");
  ASSERT_TRUE(request.ok());
  {
    ScopedFault fault(FaultPoint::kEventCompile, 1,
                      InternalError("injected fault"));
    // First use compiles the event machinery lazily; the injected failure
    // must surface, not be swallowed into the compiled-events cache.
    auto result = db->TranslateViewUpdate(*request);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  }
  // After the fault clears, compilation runs afresh and succeeds.
  EXPECT_TRUE(db->TranslateViewUpdate(*request).ok());
}

TEST(FaultUnwindTest, ParallelEvaluationSurvivesWorkerFaults) {
  // A worker that fails mid-round must not wedge the pool or corrupt later
  // evaluations on the same evaluator.
  auto db = Load(R"(
    base Edge/2.
    derived Path/2.
    Path(x, y) <- Edge(x, y).
    Path(x, y) <- Path(x, z) & Edge(z, y).
    Edge(A, B). Edge(B, C). Edge(C, D). Edge(D, E).
  )");
  FactStoreProvider edb(&db->database().facts());
  EvaluationOptions options;
  options.num_threads = 4;
  BottomUpEvaluator evaluator(db->database().program(), db->symbols(), edb,
                              options);
  {
    ScopedFault fault(FaultPoint::kEvalWorkItem, 1,
                      InternalError("injected fault"));
    auto idb = evaluator.Evaluate();
    ASSERT_FALSE(idb.ok());
    EXPECT_EQ(idb.status().code(), StatusCode::kInternal);
  }
  auto idb = evaluator.Evaluate();
  ASSERT_TRUE(idb.ok()) << idb.status();
  SymbolId path = db->database().FindPredicate("Path").value();
  EXPECT_EQ(idb->Find(path)->size(), 10u);
}

}  // namespace
}  // namespace deddb
