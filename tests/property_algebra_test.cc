// Property-based tests of algebraic laws: DNF De Morgan/double negation
// over randomized formulas, transaction inversion symmetry of the upward
// interpretation, and idempotence of already-satisfied requests.

#include <gtest/gtest.h>

#include <set>

#include "core/deductive_database.h"
#include "interp/dnf.h"
#include "util/rng.h"
#include "workload/employment.h"

namespace deddb {
namespace {

// ---------------------------------------------------------------------------
// DNF laws over random formulas. The event-possibility function is made
// consistent (ins possible iff fact absent) by drawing facts from a fixed
// random subset.

class RandomDnfTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    rng_ = std::make_unique<Rng>(GetParam());
    pred_ = symbols_.Intern("P");
    for (uint32_t c = 0; c < 6; ++c) {
      if (rng_->NextChance(50, 100)) present_.insert(c);
    }
  }

  EventPossibleFn Possible() {
    return [this](const BaseEventFact& ev) {
      bool holds = present_.count(ev.tuple[0]) > 0;
      return ev.is_insert ? !holds : holds;
    };
  }

  // Random satisfiable-looking literal (possibility not guaranteed).
  EventLiteral RandomLiteral() {
    BaseEventFact ev;
    ev.is_insert = rng_->NextChance(50, 100);
    ev.predicate = pred_;
    ev.tuple = {static_cast<SymbolId>(rng_->NextBelow(6))};
    return EventLiteral{ev, rng_->NextChance(60, 100)};
  }

  Dnf RandomDnf(size_t max_disjuncts, size_t max_literals) {
    Dnf d;
    size_t disjuncts = 1 + rng_->NextBelow(max_disjuncts);
    for (size_t i = 0; i < disjuncts; ++i) {
      Conjunct c;
      size_t literals = 1 + rng_->NextBelow(max_literals);
      for (size_t j = 0; j < literals; ++j) c.Add(RandomLiteral());
      d.AddDisjunct(std::move(c));
    }
    d.Normalize(Possible());
    return d;
  }

  // Semantic evaluation of a DNF under a concrete transaction (set of
  // performed events). A positive literal holds iff its event is performed;
  // a negative one iff it is not.
  static bool Evaluate(const Dnf& dnf,
                       const std::set<std::pair<bool, SymbolId>>& performed) {
    if (dnf.IsTrue()) return true;
    for (const Conjunct& c : dnf.disjuncts()) {
      bool all = true;
      for (const EventLiteral& lit : c.literals()) {
        bool in = performed.count({lit.event.is_insert, lit.event.tuple[0]}) >
                  0;
        all &= lit.positive == in;
      }
      if (all) return true;
    }
    return false;
  }

  SymbolTable symbols_;
  SymbolId pred_ = 0;
  std::unique_ptr<Rng> rng_;
  std::set<uint32_t> present_;
};

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDnfTest,
                         ::testing::Range<uint64_t>(1, 21));

TEST_P(RandomDnfTest, NegationIsSemanticComplement) {
  Dnf d = RandomDnf(4, 3);
  auto negated = Dnf::NegateExact(d, Possible(), 1u << 14);
  ASSERT_TRUE(negated.ok()) << negated.status();

  // Check over all *valid* transactions on constants 0..5: for each
  // constant, the transaction may contain its one possible event or not.
  std::vector<std::pair<bool, SymbolId>> possible_events;
  for (uint32_t c = 0; c < 6; ++c) {
    possible_events.emplace_back(present_.count(c) == 0, c);  // ins if absent
  }
  for (uint32_t mask = 0; mask < (1u << 6); ++mask) {
    std::set<std::pair<bool, SymbolId>> performed;
    for (uint32_t c = 0; c < 6; ++c) {
      if (mask & (1u << c)) performed.insert(possible_events[c]);
    }
    EXPECT_NE(Evaluate(d, performed), Evaluate(*negated, performed))
        << "mask " << mask << " dnf " << d.ToString(symbols_) << " neg "
        << negated->ToString(symbols_);
  }
}

TEST_P(RandomDnfTest, AndIsSemanticConjunction) {
  Dnf a = RandomDnf(3, 2);
  Dnf b = RandomDnf(3, 2);
  auto ab = Dnf::And(a, b, Possible(), 1u << 14);
  ASSERT_TRUE(ab.ok());
  ASSERT_FALSE(ab->approximate());

  std::vector<std::pair<bool, SymbolId>> possible_events;
  for (uint32_t c = 0; c < 6; ++c) {
    possible_events.emplace_back(present_.count(c) == 0, c);
  }
  for (uint32_t mask = 0; mask < (1u << 6); ++mask) {
    std::set<std::pair<bool, SymbolId>> performed;
    for (uint32_t c = 0; c < 6; ++c) {
      if (mask & (1u << c)) performed.insert(possible_events[c]);
    }
    EXPECT_EQ(Evaluate(a, performed) && Evaluate(b, performed),
              Evaluate(*ab, performed));
  }
}

TEST_P(RandomDnfTest, OrIsSemanticDisjunction) {
  Dnf a = RandomDnf(3, 2);
  Dnf b = RandomDnf(3, 2);
  auto ab = Dnf::Or(a, b, Possible(), 1u << 14);
  ASSERT_TRUE(ab.ok());

  std::vector<std::pair<bool, SymbolId>> possible_events;
  for (uint32_t c = 0; c < 6; ++c) {
    possible_events.emplace_back(present_.count(c) == 0, c);
  }
  for (uint32_t mask = 0; mask < (1u << 6); ++mask) {
    std::set<std::pair<bool, SymbolId>> performed;
    for (uint32_t c = 0; c < 6; ++c) {
      if (mask & (1u << c)) performed.insert(possible_events[c]);
    }
    EXPECT_EQ(Evaluate(a, performed) || Evaluate(b, performed),
              Evaluate(*ab, performed));
  }
}

// ---------------------------------------------------------------------------
// Transaction inversion: if T induces events E on D⁰, then T⁻¹ applied to
// D⁰+T induces exactly E⁻¹ (eqs. 1-2 are symmetric in the two states).

class InversionTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, InversionTest,
                         ::testing::Range<uint64_t>(1, 9));

TEST_P(InversionTest, InverseTransactionInducesInverseEvents) {
  workload::EmploymentConfig config;
  config.people = 50;
  config.seed = GetParam();
  config.consistent = false;
  auto db = workload::MakeEmploymentDatabase(config);
  ASSERT_TRUE(db.ok());
  auto txn = workload::RandomEmploymentTransaction(db->get(), 50, 10,
                                                   GetParam() * 13);
  ASSERT_TRUE(txn.ok());

  auto forward = (*db)->InducedEvents(*txn);
  ASSERT_TRUE(forward.ok()) << forward.status();

  // Apply T, then compute events of T⁻¹.
  ASSERT_TRUE((*db)->Apply(*txn).ok());
  Transaction inverse;
  txn->inserts().ForEach([&](SymbolId pred, const Tuple& t) {
    ASSERT_TRUE(inverse.AddDelete(pred, t).ok());
  });
  txn->deletes().ForEach([&](SymbolId pred, const Tuple& t) {
    ASSERT_TRUE(inverse.AddInsert(pred, t).ok());
  });
  auto backward = (*db)->InducedEvents(inverse);
  ASSERT_TRUE(backward.ok()) << backward.status();

  // backward.inserts == forward.deletes and vice versa.
  EXPECT_EQ(backward->inserts.ToString((*db)->symbols()),
            forward->deletes.ToString((*db)->symbols()));
  EXPECT_EQ(backward->deletes.ToString((*db)->symbols()),
            forward->inserts.ToString((*db)->symbols()));
}

// ---------------------------------------------------------------------------
// Idempotence: requesting a change that already holds is never satisfiable
// as an *event* (eqs. 1-2), for every derived instance.

TEST(IdempotenceTest, SatisfiedRequestsHaveNoTranslations) {
  workload::EmploymentConfig config;
  config.people = 25;
  auto db = workload::MakeEmploymentDatabase(config);
  ASSERT_TRUE(db.ok());
  SymbolId unemp = (*db)->database().FindPredicate("Unemp").value();
  OldStateView view(&(*db)->database());
  auto tuples = view.Query(Atom(unemp, {Term::MakeVariable(0x7200000)}));
  ASSERT_TRUE(tuples.ok());
  ASSERT_FALSE(tuples->empty());
  for (const Tuple& t : *tuples) {
    UpdateRequest request;
    RequestedEvent event;
    event.is_insert = true;  // already holds -> no event possible
    event.predicate = unemp;
    for (SymbolId c : t) event.args.push_back(Term::MakeConstant(c));
    request.events.push_back(event);
    auto result = (*db)->TranslateViewUpdate(request);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->dnf.IsFalse())
        << AtomFromTuple(unemp, t).ToString((*db)->symbols());
  }
}

}  // namespace
}  // namespace deddb
