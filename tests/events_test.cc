// Unit tests of the event machinery (§3): transition rules, event rules,
// the compiler's simplifications, the hierarchy requirement, and the
// augmented program's stratifiability.

#include <gtest/gtest.h>

#include "core/deductive_database.h"
#include "eval/stratification.h"
#include "events/event_compiler.h"
#include "events/transaction_provider.h"
#include "events/transition.h"
#include "parser/parser.h"
#include "util/strings.h"

namespace deddb {
namespace {

std::unique_ptr<DeductiveDatabase> Load(const char* source,
                                        bool simplify = false) {
  auto db = std::make_unique<DeductiveDatabase>(
      EventCompilerOptions{.simplify = simplify, .obs = {}});
  auto loaded = LoadProgram(db.get(), source);
  EXPECT_TRUE(loaded.ok()) << loaded.status();
  return db;
}

TEST(TransitionTest, DisjunctCountIsTwoToTheN) {
  auto db = Load(R"(
    base A/1. base B/1. base C/1.
    derived D/1.
    D(x) <- A(x) & not B(x) & C(x).
  )");
  Program out;
  ASSERT_TRUE(BuildTransitionRules(db->database().program().rules()[0],
                                   &db->database().predicates(), &out)
                  .ok());
  EXPECT_EQ(out.size(), 8u);  // 2^3
}

TEST(TransitionTest, MultipleRulesUnionTheirExpansions) {
  auto db = Load(R"(
    base A/1. base B/1.
    derived D/1.
    D(x) <- A(x).
    D(x) <- B(x).
  )");
  auto compiled = db->Compiled();
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  SymbolId d = db->database().FindPredicate("D").value();
  SymbolId new_d = db->database()
                       .predicates()
                       .FindVariant(d, PredicateVariant::kNew)
                       .value();
  // 2 + 2 disjuncts.
  EXPECT_EQ((*compiled)->transition.RulesFor(new_d).size(), 4u);
}

TEST(TransitionTest, ZeroAryPredicate) {
  auto db = Load(R"(
    base A/1.
    derived D/0.
    D <- A(x).
  )");
  auto compiled = db->Compiled();
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  SymbolId d = db->database().FindPredicate("D").value();
  SymbolId new_d = db->database()
                       .predicates()
                       .FindVariant(d, PredicateVariant::kNew)
                       .value();
  ASSERT_EQ((*compiled)->transition.RulesFor(new_d).size(), 2u);
}

TEST(TransitionTest, PositiveEventLiteralCounting) {
  auto db = Load(R"(
    base A/1. base B/1.
    derived D/1.
    D(x) <- A(x) & not B(x).
  )");
  Program out;
  ASSERT_TRUE(BuildTransitionRules(db->database().program().rules()[0],
                                   &db->database().predicates(), &out)
                  .ok());
  // The four disjuncts have 0, 1, 1, 2 positive event literals.
  std::vector<size_t> counts;
  for (const Rule& rule : out.rules()) {
    counts.push_back(
        CountPositiveEventLiterals(rule, db->database().predicates()));
  }
  std::sort(counts.begin(), counts.end());
  EXPECT_EQ(counts, (std::vector<size_t>{0, 1, 1, 2}));
}

TEST(EventCompilerTest, EventRulesFollowEquations6And7) {
  auto db = Load(R"(
    base A/1.
    derived D/1.
    D(x) <- A(x).
  )");
  auto compiled = db->Compiled();
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  std::string rules = (*compiled)->event_rules.ToString(db->symbols());
  EXPECT_NE(rules.find("ins$D(_g0) <- new$D(_g0) & not D(_g0)"),
            std::string::npos)
      << rules;
  EXPECT_NE(rules.find("del$D(_g0) <- D(_g0) & not new$D(_g0)"),
            std::string::npos)
      << rules;
}

TEST(EventCompilerTest, RejectsRecursivePredicates) {
  auto db = Load(R"(
    base Edge/2.
    derived Path/2.
    Path(x, y) <- Edge(x, y).
    Path(x, y) <- Path(x, z) & Edge(z, y).
  )");
  auto compiled = db->Compiled();
  EXPECT_EQ(compiled.status().code(), StatusCode::kInvalidArgument);
}

TEST(EventCompilerTest, RejectsMutualRecursion) {
  auto db = Load(R"(
    base B/1.
    derived P/1.
    derived Q/1.
    P(x) <- Q(x).
    Q(x) <- P(x).
    Q(x) <- B(x).
  )");
  EXPECT_FALSE(db->Compiled().ok());
}

TEST(EventCompilerTest, DerivedOrderIsBottomUp) {
  auto db = Load(R"(
    base B/1.
    derived Lower/1.
    derived Upper/1.
    Lower(x) <- B(x).
    Upper(x) <- Lower(x).
  )");
  auto compiled = db->Compiled();
  ASSERT_TRUE(compiled.ok());
  SymbolId lower = db->database().FindPredicate("Lower").value();
  SymbolId upper = db->database().FindPredicate("Upper").value();
  const auto& order = (*compiled)->derived_order;
  auto pos = [&](SymbolId s) {
    return std::find(order.begin(), order.end(), s) - order.begin();
  };
  EXPECT_LT(pos(lower), pos(upper));
}

TEST(EventCompilerTest, SimplifiedModeBuildsHelperPredicates) {
  auto db = Load(R"(
    base A/1. base B/1.
    derived D/1.
    D(x) <- A(x) & not B(x).
  )",
                 /*simplify=*/true);
  auto compiled = db->Compiled();
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  EXPECT_TRUE((*compiled)->simplified);
  SymbolId inew = db->symbols().Find("inew$D");
  SymbolId dcand = db->symbols().Find("dcand$D");
  ASSERT_NE(inew, SymbolTable::kNoSymbol);
  ASSERT_NE(dcand, SymbolTable::kNoSymbol);
  // inew$D keeps the 3 disjuncts with a positive event literal.
  EXPECT_EQ((*compiled)->ins_new.RulesFor(inew).size(), 3u);
  // dcand$D has one rule per body literal.
  EXPECT_EQ((*compiled)->delete_candidates.RulesFor(dcand).size(), 2u);
  // dcand rules: (del$A(x) & not B(x)) and (A(x) & ins$B(x)).
  std::string dump = (*compiled)->delete_candidates.ToString(db->symbols());
  EXPECT_NE(dump.find("dcand$D(x) <- del$A(x) & not B(x)"),
            std::string::npos)
      << dump;
  EXPECT_NE(dump.find("dcand$D(x) <- A(x) & ins$B(x)"), std::string::npos)
      << dump;
}

TEST(EventCompilerTest, UnsimplifiedModeHasNoHelpers) {
  auto db = Load(R"(
    base A/1.
    derived D/1.
    D(x) <- A(x).
  )");
  auto compiled = db->Compiled();
  ASSERT_TRUE(compiled.ok());
  EXPECT_FALSE((*compiled)->simplified);
  EXPECT_TRUE((*compiled)->ins_new.empty());
  EXPECT_TRUE((*compiled)->delete_candidates.empty());
}

TEST(EventCompilerTest, AugmentedProgramIsStratified) {
  for (bool simplify : {false, true}) {
    auto db = Load(R"(
      base La/1. base Works/1. base U_benefit/1.
      view Unemp/1.
      ic Ic1/1.
      Unemp(x) <- La(x) & not Works(x).
      Ic1(x) <- Unemp(x) & not U_benefit(x).
    )",
                   simplify);
    auto compiled = db->Compiled();
    ASSERT_TRUE(compiled.ok()) << compiled.status();
    auto strat = Stratify((*compiled)->augmented, db->symbols());
    EXPECT_TRUE(strat.ok()) << "simplify=" << simplify << ": "
                            << strat.status();
  }
}

TEST(EventCompilerTest, DeclaredButUndefinedDerivedGetsEventRules) {
  auto db = Load(R"(
    base A/1.
    view EmptyView/1.
  )");
  auto compiled = db->Compiled();
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  SymbolId v = db->database().FindPredicate("EmptyView").value();
  SymbolId ins = db->database()
                     .predicates()
                     .FindVariant(v, PredicateVariant::kInsertEvent)
                     .value();
  EXPECT_EQ((*compiled)->event_rules.RulesFor(ins).size(), 1u);
}

TEST(TransactionProviderTest, ResolvesBaseEventPredicatesOnly) {
  auto db = Load(R"(
    base Q/1.
    derived D/1.
    D(x) <- Q(x).
    Q(A).
  )");
  ASSERT_TRUE(db->Compiled().ok());
  auto& predicates = db->database().predicates();
  SymbolId q = db->database().FindPredicate("Q").value();
  SymbolId d = db->database().FindPredicate("D").value();
  SymbolId a = db->symbols().Intern("A");
  SymbolId b = db->symbols().Intern("B");

  Transaction txn;
  ASSERT_TRUE(txn.AddDelete(q, {a}).ok());
  ASSERT_TRUE(txn.AddInsert(q, {b}).ok());
  TransactionProvider provider(&txn, &predicates);

  SymbolId ins_q = predicates.FindVariant(q, PredicateVariant::kInsertEvent)
                       .value();
  SymbolId del_q = predicates.FindVariant(q, PredicateVariant::kDeleteEvent)
                       .value();
  SymbolId ins_d = predicates.FindVariant(d, PredicateVariant::kInsertEvent)
                       .value();

  EXPECT_TRUE(provider.Contains(ins_q, {b}));
  EXPECT_TRUE(provider.Contains(del_q, {a}));
  EXPECT_FALSE(provider.Contains(ins_q, {a}));
  // Derived event predicates are never served by the transaction.
  EXPECT_FALSE(provider.Contains(ins_d, {a}));
  // Old predicates neither.
  EXPECT_FALSE(provider.Contains(q, {a}));
  EXPECT_EQ(provider.EstimateCount(ins_q), 1u);
  EXPECT_EQ(provider.EstimateCount(q), 0u);

  size_t seen = 0;
  provider.ForEachMatch(del_q, {std::nullopt},
                        [&](const Tuple&) { ++seen; });
  EXPECT_EQ(seen, 1u);
}

}  // namespace
}  // namespace deddb
