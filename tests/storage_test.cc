// Unit tests of the storage layer: relations with column indexes, fact
// stores, transactions, and the database triple.

#include <gtest/gtest.h>

#include "storage/database.h"
#include "storage/relation.h"
#include "storage/transaction.h"

namespace deddb {
namespace {

class RelationTest : public ::testing::TestWithParam<bool> {
 protected:
  bool indexed() const { return GetParam(); }
};

INSTANTIATE_TEST_SUITE_P(IndexModes, RelationTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Indexed" : "Unindexed";
                         });

TEST_P(RelationTest, InsertEraseContains) {
  Relation rel(2, indexed());
  EXPECT_TRUE(rel.Insert({1, 2}));
  EXPECT_FALSE(rel.Insert({1, 2}));  // duplicate
  EXPECT_TRUE(rel.Contains({1, 2}));
  EXPECT_EQ(rel.size(), 1u);
  EXPECT_TRUE(rel.Erase({1, 2}));
  EXPECT_FALSE(rel.Erase({1, 2}));
  EXPECT_TRUE(rel.empty());
}

TEST_P(RelationTest, PatternSelection) {
  Relation rel(2, indexed());
  rel.Insert({1, 10});
  rel.Insert({1, 20});
  rel.Insert({2, 10});
  EXPECT_EQ(rel.CountMatches({1, std::nullopt}), 2u);
  EXPECT_EQ(rel.CountMatches({std::nullopt, 10}), 2u);
  EXPECT_EQ(rel.CountMatches({1, 10}), 1u);
  EXPECT_EQ(rel.CountMatches({3, std::nullopt}), 0u);
  EXPECT_EQ(rel.CountMatches({std::nullopt, std::nullopt}), 3u);
}

TEST_P(RelationTest, SelectionAfterErasure) {
  Relation rel(2, indexed());
  rel.Insert({1, 10});
  rel.Insert({1, 20});
  rel.Erase({1, 10});
  EXPECT_EQ(rel.CountMatches({1, std::nullopt}), 1u);
  std::vector<Tuple> out;
  rel.ForEachMatch({1, std::nullopt},
                   [&](const Tuple& t) { out.push_back(t); });
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (Tuple{1, 20}));
}

TEST_P(RelationTest, SurvivesManyInsertsAndSelects) {
  Relation rel(2, indexed());
  for (uint32_t i = 0; i < 500; ++i) rel.Insert({i % 7, i});
  EXPECT_EQ(rel.size(), 500u);
  for (uint32_t k = 0; k < 7; ++k) {
    size_t expected = 500 / 7 + (k < 500 % 7 ? 1 : 0);
    EXPECT_EQ(rel.CountMatches({k, std::nullopt}), expected);
  }
}

TEST_P(RelationTest, ZeroArity) {
  Relation rel(0, indexed());
  EXPECT_TRUE(rel.Insert({}));
  EXPECT_FALSE(rel.Insert({}));
  EXPECT_EQ(rel.CountMatches({}), 1u);
  rel.Erase({});
  EXPECT_TRUE(rel.empty());
}

TEST(FactStoreTest, AddRemoveAcrossPredicates) {
  FactStore store;
  EXPECT_TRUE(store.Add(1, {10}));
  EXPECT_TRUE(store.Add(2, {10, 20}));
  EXPECT_FALSE(store.Add(1, {10}));
  EXPECT_EQ(store.TotalFacts(), 2u);
  EXPECT_TRUE(store.Contains(1, {10}));
  EXPECT_FALSE(store.Contains(1, {11}));
  EXPECT_TRUE(store.Remove(2, {10, 20}));
  EXPECT_FALSE(store.Remove(2, {10, 20}));
  EXPECT_EQ(store.TotalFacts(), 1u);
}

TEST(FactStoreTest, CopyIsDeep) {
  FactStore a;
  a.Add(1, {10});
  FactStore b = a;
  b.Add(1, {11});
  EXPECT_EQ(a.TotalFacts(), 1u);
  EXPECT_EQ(b.TotalFacts(), 2u);
}

TEST(FactStoreTest, FindReturnsNullForUnknown) {
  FactStore store;
  EXPECT_EQ(store.Find(9), nullptr);
  store.Add(9, {1});
  ASSERT_NE(store.Find(9), nullptr);
  EXPECT_EQ(store.Find(9)->size(), 1u);
}

class TransactionTest : public ::testing::Test {
 protected:
  SymbolTable symbols_;
  PredicateTable predicates_{&symbols_};
  SymbolId q_ = predicates_
                    .Declare("Q", 1, PredicateKind::kBase,
                             PredicateSemantics::kPlain)
                    .value();
  SymbolId a_ = symbols_.Intern("A");
  SymbolId b_ = symbols_.Intern("B");
};

TEST_F(TransactionTest, AddAndQueryEvents) {
  Transaction txn;
  ASSERT_TRUE(txn.AddInsert(q_, {a_}).ok());
  ASSERT_TRUE(txn.AddDelete(q_, {b_}).ok());
  EXPECT_TRUE(txn.ContainsInsert(q_, {a_}));
  EXPECT_TRUE(txn.ContainsDelete(q_, {b_}));
  EXPECT_FALSE(txn.ContainsInsert(q_, {b_}));
  EXPECT_EQ(txn.size(), 2u);
  EXPECT_EQ(txn.ToString(symbols_), "{del Q(B), ins Q(A)}");
}

TEST_F(TransactionTest, OppositeEventsConflict) {
  Transaction txn;
  ASSERT_TRUE(txn.AddInsert(q_, {a_}).ok());
  EXPECT_FALSE(txn.AddDelete(q_, {a_}).ok());
  // Same event twice is idempotent.
  EXPECT_TRUE(txn.AddInsert(q_, {a_}).ok());
  EXPECT_EQ(txn.size(), 1u);
}

TEST_F(TransactionTest, ValidateAgainstState) {
  FactStore state;
  state.Add(q_, {a_});
  Transaction valid;
  ASSERT_TRUE(valid.AddDelete(q_, {a_}).ok());
  ASSERT_TRUE(valid.AddInsert(q_, {b_}).ok());
  EXPECT_TRUE(valid.Validate(state, predicates_).ok());

  Transaction insert_existing;
  ASSERT_TRUE(insert_existing.AddInsert(q_, {a_}).ok());
  EXPECT_EQ(insert_existing.Validate(state, predicates_).code(),
            StatusCode::kFailedPrecondition);

  Transaction delete_absent;
  ASSERT_TRUE(delete_absent.AddDelete(q_, {b_}).ok());
  EXPECT_EQ(delete_absent.Validate(state, predicates_).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(TransactionTest, ApplyToProducesNewState) {
  FactStore state;
  state.Add(q_, {a_});
  Transaction txn;
  ASSERT_TRUE(txn.AddDelete(q_, {a_}).ok());
  ASSERT_TRUE(txn.AddInsert(q_, {b_}).ok());
  FactStore next = txn.ApplyTo(state);
  EXPECT_FALSE(next.Contains(q_, {a_}));
  EXPECT_TRUE(next.Contains(q_, {b_}));
  // Original state untouched.
  EXPECT_TRUE(state.Contains(q_, {a_}));
}

TEST_F(TransactionTest, MergeDetectsConflicts) {
  Transaction a, b;
  ASSERT_TRUE(a.AddInsert(q_, {a_}).ok());
  ASSERT_TRUE(b.AddDelete(q_, {a_}).ok());
  EXPECT_FALSE(a.Merge(b).ok());
  Transaction c;
  ASSERT_TRUE(c.AddInsert(q_, {b_}).ok());
  EXPECT_TRUE(a.Merge(c).ok());
  EXPECT_EQ(a.size(), 2u);
}

TEST(DatabaseTest, DeclarationsAndSemanticsLists) {
  Database db;
  SymbolId base = db.DeclareBase("B", 1).value();
  SymbolId view = db.DeclareDerived("V", 1, PredicateSemantics::kView).value();
  SymbolId ic = db.DeclareDerived("Ic1", 1, PredicateSemantics::kIc).value();
  SymbolId cond =
      db.DeclareDerived("C", 1, PredicateSemantics::kCondition).value();
  (void)base;
  EXPECT_EQ(db.view_predicates(), (std::vector<SymbolId>{view}));
  EXPECT_EQ(db.ic_predicates(), (std::vector<SymbolId>{ic}));
  EXPECT_EQ(db.condition_predicates(), (std::vector<SymbolId>{cond}));
  EXPECT_TRUE(db.HasConstraints());
}

TEST(DatabaseTest, GlobalIcRuleInstalledPerConstraint) {
  Database db;
  SymbolId b = db.DeclareBase("B", 1).value();
  (void)b;
  db.DeclareDerived("Ic1", 1, PredicateSemantics::kIc).value();
  db.DeclareDerived("Ic2", 0, PredicateSemantics::kIc).value();
  // One global rule per inconsistency predicate.
  EXPECT_EQ(db.program().RulesFor(db.global_ic()).size(), 2u);
}

TEST(DatabaseTest, IcNameIsReserved) {
  Database db;
  EXPECT_FALSE(db.DeclareBase("Ic", 1).ok());
  EXPECT_FALSE(db.DeclareDerived("Ic", 1, PredicateSemantics::kPlain).ok());
}

TEST(DatabaseTest, FactValidation) {
  Database db;
  SymbolId b = db.DeclareBase("B", 1).value();
  SymbolId d = db.DeclareDerived("D", 1, PredicateSemantics::kPlain).value();
  SymbolId a = db.symbols().Intern("A");
  VarId x = db.symbols().InternVar("x");

  EXPECT_TRUE(db.AddFact(Atom(b, {Term::MakeConstant(a)})).ok());
  // Derived facts are rejected (paper §2: derived predicates appear only in
  // the intensional part).
  EXPECT_FALSE(db.AddFact(Atom(d, {Term::MakeConstant(a)})).ok());
  // Non-ground facts are rejected.
  EXPECT_FALSE(db.AddFact(Atom(b, {Term::MakeVariable(x)})).ok());
  // Arity mismatch.
  EXPECT_FALSE(db.AddFact(Atom(b, {})).ok());
}

TEST(DatabaseTest, MaterializeRequiresViewSemantics) {
  Database db;
  SymbolId b = db.DeclareBase("B", 1).value();
  SymbolId v = db.DeclareDerived("V", 1, PredicateSemantics::kView).value();
  EXPECT_FALSE(db.MaterializeView(b).ok());
  EXPECT_TRUE(db.MaterializeView(v).ok());
  EXPECT_TRUE(db.IsMaterialized(v));
  EXPECT_FALSE(db.IsMaterialized(b));
}

TEST(DatabaseTest, FindPredicate) {
  Database db;
  SymbolId b = db.DeclareBase("B", 1).value();
  EXPECT_EQ(db.FindPredicate("B").value(), b);
  EXPECT_EQ(db.FindPredicate("Missing").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace deddb
