// Unit tests of the deterministic ThreadPool: exactly-once index coverage,
// the static worker partition, inline execution for 0/1 threads, reuse
// across many ParallelFor rounds, and item counts on both sides of the
// worker count.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "util/thread_pool.h"

namespace deddb {
namespace {

TEST(ThreadPoolTest, EveryIndexRunsExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  // Distinct indices: each slot is touched by exactly one worker, so plain
  // ints suffice (and TSan would flag a broken partition).
  std::vector<int> counts(1000, 0);
  pool.ParallelFor(counts.size(), [&](size_t i) { ++counts[i]; });
  for (size_t i = 0; i < counts.size(); ++i) {
    ASSERT_EQ(counts[i], 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ZeroAndOneThreadRunInline) {
  for (size_t n : {0u, 1u}) {
    ThreadPool pool(n);
    EXPECT_EQ(pool.size(), n);
    std::thread::id caller = std::this_thread::get_id();
    std::vector<std::thread::id> seen(5);
    pool.ParallelFor(seen.size(),
                     [&](size_t i) { seen[i] = std::this_thread::get_id(); });
    for (std::thread::id id : seen) EXPECT_EQ(id, caller);
  }
}

TEST(ThreadPoolTest, EmptyRangeIsANoOp) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, StaticPartitionIsStableAcrossRounds) {
  // Item i always goes to worker i % size, and workers are persistent
  // threads — so the index→thread mapping must be identical between two
  // identical ParallelFor calls.
  ThreadPool pool(3);
  std::vector<std::thread::id> first(30), second(30);
  pool.ParallelFor(first.size(),
                   [&](size_t i) { first[i] = std::this_thread::get_id(); });
  pool.ParallelFor(second.size(),
                   [&](size_t i) { second[i] = std::this_thread::get_id(); });
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i], second[i]) << "index " << i;
  }
  // And the stride partition puts i and i+3 on the same worker.
  for (size_t i = 0; i + 3 < first.size(); ++i) {
    EXPECT_EQ(first[i], first[i + 3]) << "index " << i;
  }
}

TEST(ThreadPoolTest, FewerItemsThanWorkers) {
  ThreadPool pool(8);
  std::vector<int> counts(3, 0);
  pool.ParallelFor(counts.size(), [&](size_t i) { ++counts[i]; });
  for (int c : counts) EXPECT_EQ(c, 1);
}

TEST(ThreadPoolTest, ReuseManyRounds) {
  ThreadPool pool(3);
  std::atomic<size_t> sum{0};
  for (size_t round = 0; round < 200; ++round) {
    pool.ParallelFor(7, [&](size_t i) { sum += i; });
  }
  EXPECT_EQ(sum.load(), 200u * (0 + 1 + 2 + 3 + 4 + 5 + 6));
}

TEST(ThreadPoolTest, SharedAtomicCounter) {
  ThreadPool pool(4);
  std::atomic<size_t> hits{0};
  pool.ParallelFor(10000, [&](size_t) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 10000u);
}

}  // namespace
}  // namespace deddb
