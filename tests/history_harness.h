// Shared scaffolding for the randomized history suites (DESIGN.md §10-§12):
// server_history_test, server_chaos_test, sub_history_test, and
// repl_history_test all drive a Server with seeded concurrent clients and
// validate what the server *acknowledged* against a serial oracle. The
// pieces every suite re-derived — the canonical fact-image rendering, the
// acknowledged-write log, the acknowledged-prefix replay oracle, the
// seeded persistent-or-in-memory database scaffold, and the retrying
// chaos-client plumbing — live here once.
//
// Header-only and gtest-bound: oracle builders use ASSERT_*/EXPECT_* so a
// violation names its seed via the caller's SCOPED_TRACE. Functions that
// run on client threads (where gtest asserts are off-limits) report through
// a `std::string* error` out-param instead.

#ifndef DEDDB_TESTS_HISTORY_HARNESS_H_
#define DEDDB_TESTS_HISTORY_HARNESS_H_

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "core/deductive_database.h"
#include "server/chaos.h"
#include "server/client.h"
#include "server/transport.h"
#include "util/rng.h"
#include "util/strings.h"

namespace deddb::server::harness {

// The shared vocabulary: two unary base predicates over six constants, plus
// the view P(x) <- Q(x) & not R(x) for the suites that read through
// derivation. Small enough that random traffic collides constantly (the
// point), large enough that images differentiate histories.
inline constexpr const char* kConstants[] = {"c0", "c1", "c2", "c3", "c4",
                                             "c5"};
inline constexpr size_t kNumConstants = 6;
inline constexpr const char* kBasePreds[] = {"Q", "R"};
inline constexpr size_t kNumBasePreds = 2;

/// A ground base fact as (predicate name, constant name).
using Fact = std::pair<std::string, std::string>;
using FactSet = std::set<Fact>;

/// Canonical image of a base-fact set: sorted "Pred(const)" atoms joined
/// with ';'. Byte-equal images mean identical states.
inline std::string ImageOf(const FactSet& facts) {
  std::vector<std::string> rendered;
  rendered.reserve(facts.size());
  for (const auto& [pred, constant] : facts) {
    rendered.push_back(StrCat(pred, "(", constant, ")"));
  }
  std::sort(rendered.begin(), rendered.end());
  return Join(rendered, ";");
}

/// What P(x) <- Q(x) & not R(x) derives from a canonical base image, for
/// suites that assert view answers against the same snapshot.
inline std::string DeriveP(const std::string& image) {
  std::vector<std::string> answers;
  for (const char* c : kConstants) {
    const bool q = image.find(StrCat("Q(", c, ")")) != std::string::npos;
    const bool r = image.find(StrCat("R(", c, ")")) != std::string::npos;
    if (q && !r) answers.push_back(c);
  }
  return Join(answers, ";");
}

/// One acknowledged write: the server said this transaction committed and
/// left the database at `version`. Events carry names, not ids, so any
/// facade (offline oracle, replica, fresh symbol table) can replay them.
struct AckedWrite {
  uint64_t version = 0;
  std::vector<std::tuple<std::string, std::string, bool>> events;
};

/// One acknowledged read: a batched Query answered at `version`, flattened
/// to the canonical base image (and derived answers, when the batch asked
/// for the view).
struct AckedRead {
  uint64_t version = 0;
  std::string base_image;
  std::string derived;
};

/// The serial acknowledged-prefix oracle. Acked writes, sorted by
/// acknowledged version, replay into a version→image map. Distinct versions
/// prove the writes serialized; replaying them from the empty initial state
/// proves the acks describe what really committed; reads then check against
/// the image at the largest acked version at or below their pinned version.
class AckedPrefixOracle {
 public:
  /// Replays `acked` (any order). `divergence_hint` names what a replay
  /// divergence means in the calling suite (e.g. "a retry applied twice").
  void Build(std::vector<const AckedWrite*> acked, uint64_t base_version,
             const char* divergence_hint) {
    base_version_ = base_version;
    std::sort(acked.begin(), acked.end(),
              [](const AckedWrite* a, const AckedWrite* b) {
                return a->version < b->version;
              });
    for (size_t i = 1; i < acked.size(); ++i) {
      ASSERT_NE(acked[i - 1]->version, acked[i]->version)
          << "two writes acknowledged the same commit version";
    }
    FactSet facts;
    image_at_[base_version] = ImageOf(facts);
    for (const AckedWrite* write : acked) {
      ASSERT_GT(write->version, base_version);
      for (const auto& [pred, constant, insert] : write->events) {
        if (insert) {
          ASSERT_TRUE(facts.insert({pred, constant}).second)
              << "acked insert of a present fact — " << divergence_hint;
        } else {
          ASSERT_EQ(facts.erase({pred, constant}), 1u)
              << "acked delete of an absent fact — " << divergence_hint;
        }
      }
      image_at_[write->version] = ImageOf(facts);
    }
  }

  /// The image at floor(acked version <= `version`). Fails the test when
  /// `version` precedes the seed state.
  std::string At(uint64_t version) const {
    auto it = image_at_.upper_bound(version);
    if (it == image_at_.begin()) {
      ADD_FAILURE() << "read at version " << version
                    << " precedes the seed state";
      return "<before-seed>";
    }
    --it;
    return it->second;
  }

  /// The full check one acknowledged read earns: its base image equals the
  /// acknowledged commit prefix at its version, and (when the batch read
  /// the view) the derived answers match the same snapshot.
  void ExpectReadMatches(const AckedRead& read, bool check_derived) const {
    EXPECT_EQ(read.base_image, At(read.version))
        << "read at version " << read.version
        << " does not match the acknowledged commit prefix";
    if (check_derived) {
      EXPECT_EQ(read.derived, DeriveP(read.base_image))
          << "view answers inconsistent with base facts at version "
          << read.version;
    }
  }

  uint64_t base_version() const { return base_version_; }
  const std::map<uint64_t, std::string>& image_at() const { return image_at_; }

 private:
  uint64_t base_version_ = 0;
  std::map<uint64_t, std::string> image_at_;
};

/// A seeded database that is either in-memory or persistent in a fresh
/// mkdtemp directory — the half-the-seeds-run-durably scaffold.
struct SeededDb {
  std::string dir;  // empty when in-memory
  std::unique_ptr<DeductiveDatabase> db;
};

inline void OpenSeededDb(const char* prefix, bool persistent, SeededDb* out) {
  if (!persistent) {
    out->db = std::make_unique<DeductiveDatabase>();
    return;
  }
  std::string tmpl = StrCat(::testing::TempDir(), prefix, "XXXXXX");
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  ASSERT_NE(::mkdtemp(buf.data()), nullptr);
  out->dir = buf.data();
  auto opened = DeductiveDatabase::OpenPersistent(out->dir);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  out->db = std::move(*opened);
}

/// Closes a persistent seeded database and removes its directory.
inline void CloseSeededDb(SeededDb* seeded) {
  if (seeded->dir.empty()) return;
  ASSERT_TRUE(seeded->db->Close().ok());
  seeded->db.reset();
  std::string cmd = StrCat("rm -rf ", seeded->dir);
  ASSERT_EQ(std::system(cmd.c_str()), 0);
}

/// Declares the shared Q/R(/P) schema. The view (and its materialization)
/// is optional because some suites only exercise base writes.
inline void DeclareQRSchema(DeductiveDatabase* db, bool with_view,
                            bool materialize) {
  ASSERT_TRUE(db->DeclareBase("Q", 1).ok());
  ASSERT_TRUE(db->DeclareBase("R", 1).ok());
  if (!with_view) return;
  Result<SymbolId> p = db->DeclareView("P", 1);
  ASSERT_TRUE(p.ok());
  Term x = db->Variable("x");
  ASSERT_TRUE(
      db->AddRule(Rule(db->MakeAtom("P", {x}).value(),
                       {Literal::Positive(db->MakeAtom("Q", {x}).value()),
                        Literal::Negative(db->MakeAtom("R", {x}).value())}))
          .ok());
  if (materialize) {
    ASSERT_TRUE(db->MaterializeView(*p).ok());
    ASSERT_TRUE(db->InitializeMaterializedViews().ok());
  }
}

/// Dials through the chaos transport: both the connect and every later
/// read/write can fault.
inline Dialer DialThrough(LoopbackNetwork* network, FaultyNetwork* chaos) {
  return [network, chaos]() -> Result<std::unique_ptr<Connection>> {
    Result<std::unique_ptr<Connection>> conn = network->Connect();
    if (!conn.ok()) return conn.status();
    return chaos->Wrap(std::move(*conn));
  };
}

/// Client options for retry-until-definitive runs: exactly-once tokens
/// (client_id != 0), a generous attempt cap so a pathological seed fails
/// loudly instead of spinning, and fast jittered backoff.
inline ClientOptions RetryOptions(uint64_t client_id, uint64_t seed) {
  ClientOptions options;
  options.client_id = client_id;
  options.max_attempts = 200;
  options.backoff.base = std::chrono::microseconds(50);
  options.backoff.cap = std::chrono::microseconds(2000);
  options.backoff.seed = seed;
  return options;
}

/// Builds a 1..max_events random transaction against `guess` (delete what
/// the guess says is present, insert what it says is absent). `guess` is
/// NOT updated — fold the write in only if the server acknowledges it.
/// Returns false (with *error set) only on an internal failure; an empty
/// transaction after dedup is possible and fine.
inline bool BuildGuessedWrite(Rng* rng, Client* client, const FactSet& guess,
                              size_t max_events, Transaction* txn,
                              AckedWrite* write, std::string* error) {
  std::set<std::pair<size_t, size_t>> touched;
  const size_t num_events = 1 + rng->NextBelow(max_events);
  for (size_t e = 0; e < num_events; ++e) {
    const size_t p = rng->NextBelow(kNumBasePreds);
    const size_t c = rng->NextBelow(kNumConstants);
    if (!touched.insert({p, c}).second) continue;
    Atom fact = client->GroundAtom(kBasePreds[p], {kConstants[c]});
    const bool present = guess.count({kBasePreds[p], kConstants[c]}) > 0;
    Status added = present ? txn->AddDelete(fact) : txn->AddInsert(fact);
    if (!added.ok()) {
      *error = added.ToString();
      return false;
    }
    write->events.emplace_back(kBasePreds[p], kConstants[c], !present);
  }
  return true;
}

/// Folds an acknowledged write's events into the tracked guess.
inline void FoldWriteIntoGuess(const AckedWrite& write, FactSet* guess) {
  for (const auto& [pred, constant, insert] : write.events) {
    if (insert) {
      guess->insert({pred, constant});
    } else {
      guess->erase({pred, constant});
    }
  }
}

/// Commits through the facade the suite is exercising. A processor
/// integrity rejection comes back as kFailedPrecondition (nothing applied,
/// not an ack), indistinguishable to callers from a validity rejection —
/// which is the point: both mean "definitively not committed".
inline Result<uint64_t> CommitWrite(Client* client, const Transaction& txn,
                                    bool via_processor) {
  if (via_processor) {
    Result<ProcessReply> reply = client->Process(txn);
    if (!reply.ok()) return reply.status();
    if (!reply->accepted) return FailedPreconditionError("rejected");
    return reply->version;
  }
  Result<ApplyReply> reply = client->Apply(txn);
  if (!reply.ok()) return reply.status();
  return reply->version;
}

/// True when a commit outcome is a definitive non-ack (validity or
/// integrity rejection) rather than a gave-up-unknown failure.
inline bool IsDefinitiveRejection(const Status& status) {
  return status.code() == StatusCode::kInvalidArgument ||
         status.code() == StatusCode::kFailedPrecondition;
}

/// Flattens a batched base-read reply (answers[0] = Q, answers[1] = R, and
/// optionally answers[2] = P) into an AckedRead, refreshing `guess` to the
/// observed state. Returns false (with *error set) on a malformed tuple.
inline bool DecodeBaseRead(Client* client, const QueryReply& reply,
                           FactSet* guess, AckedRead* read,
                           std::string* error) {
  if (reply.answers.size() < kNumBasePreds) {
    *error = "reply missing base-pattern answers";
    return false;
  }
  read->version = reply.version;
  std::vector<std::string> base;
  guess->clear();
  for (size_t p = 0; p < kNumBasePreds; ++p) {
    for (const Tuple& t : reply.answers[p]) {
      if (t.size() != 1) {
        *error = "non-unary answer tuple";
        return false;
      }
      const std::string& name = client->symbols().NameOf(t[0]);
      base.push_back(StrCat(kBasePreds[p], "(", name, ")"));
      guess->insert({kBasePreds[p], name});
    }
  }
  std::sort(base.begin(), base.end());
  read->base_image = Join(base, ";");
  if (reply.answers.size() > kNumBasePreds) {
    std::vector<std::string> derived;
    for (const Tuple& t : reply.answers[kNumBasePreds]) {
      if (t.size() != 1) {
        *error = "non-unary derived tuple";
        return false;
      }
      derived.push_back(std::string(client->symbols().NameOf(t[0])));
    }
    std::sort(derived.begin(), derived.end());
    read->derived = Join(derived, ";");
  }
  return true;
}

}  // namespace deddb::server::harness

#endif  // DEDDB_TESTS_HISTORY_HARNESS_H_
