// Exhaustive semantic verification of the upward interpretation on tiny
// domains: for EVERY valid transaction over the base facts, the induced
// events computed by the event-rule interpreter must equal the literal
// eqs.-1-2 diff of the old and new derived states — in both compilation
// modes. Together with exhaustive_downward_test this pins both directions
// of the framework to their definitions.

#include <gtest/gtest.h>

#include "core/deductive_database.h"
#include "eval/bottom_up.h"
#include "parser/parser.h"
#include "util/rng.h"

namespace deddb {
namespace {

struct Param {
  uint64_t seed;
  bool simplify;
};

class ExhaustiveUpwardTest : public ::testing::TestWithParam<Param> {
 protected:
  void SetUp() override {
    db_ = std::make_unique<DeductiveDatabase>(
        EventCompilerOptions{.simplify = GetParam().simplify, .obs = {}});
    ASSERT_TRUE(LoadProgram(db_.get(), R"(
      base Q/1. base R/1.
      view P/1.
      view W/1.
      ic IcOrphan/1.
      P(x) <- Q(x) & not R(x).
      W(x) <- P(x) & Q(x).
      IcOrphan(x) <- R(x) & not Q(x).
    )")
                    .ok());
    q_ = db_->database().FindPredicate("Q").value();
    r_ = db_->database().FindPredicate("R").value();

    Rng rng(GetParam().seed);
    for (const char* name : {"C0", "C1", "C2"}) {
      SymbolId c = db_->symbols().Intern(name);
      if (rng.NextChance(50, 100)) {
        ASSERT_TRUE(db_->AddFact(Atom(q_, {Term::MakeConstant(c)})).ok());
      }
      if (rng.NextChance(50, 100)) {
        ASSERT_TRUE(db_->AddFact(Atom(r_, {Term::MakeConstant(c)})).ok());
      }
      for (SymbolId pred : {q_, r_}) {
        bool present = db_->database().facts().Contains(pred, {c});
        (void)present;
      }
    }
    for (SymbolId pred : {q_, r_}) {
      for (const char* name : {"C0", "C1", "C2"}) {
        SymbolId c = db_->symbols().Intern(name);
        bool present = db_->database().facts().Contains(pred, {c});
        possible_.push_back({!present, pred, Tuple{c}});
      }
    }
  }

  // Ground-truth induced events: evaluate all derived predicates in both
  // states and diff.
  DerivedEvents BruteForce(const Transaction& txn) {
    FactStoreProvider old_edb(&db_->database().facts());
    BottomUpEvaluator old_eval(db_->database().program(), db_->symbols(),
                               old_edb);
    FactStore old_idb = old_eval.Evaluate().value();
    FactStore new_state = txn.ApplyTo(db_->database().facts());
    FactStoreProvider new_edb(&new_state);
    BottomUpEvaluator new_eval(db_->database().program(), db_->symbols(),
                               new_edb);
    FactStore new_idb = new_eval.Evaluate().value();

    DerivedEvents events;
    new_idb.ForEach([&](SymbolId pred, const Tuple& t) {
      if (!old_idb.Contains(pred, t)) events.inserts.Add(pred, t);
    });
    old_idb.ForEach([&](SymbolId pred, const Tuple& t) {
      if (!new_idb.Contains(pred, t)) events.deletes.Add(pred, t);
    });
    return events;
  }

  struct PossibleEvent {
    bool is_insert;
    SymbolId predicate;
    Tuple tuple;
  };

  std::unique_ptr<DeductiveDatabase> db_;
  SymbolId q_ = 0, r_ = 0;
  std::vector<PossibleEvent> possible_;
};

INSTANTIATE_TEST_SUITE_P(
    Seeds, ExhaustiveUpwardTest,
    ::testing::Values(Param{1, false}, Param{1, true}, Param{2, false},
                      Param{2, true}, Param{3, false}, Param{3, true},
                      Param{4, true}, Param{5, true}, Param{6, true},
                      Param{7, false}),
    [](const ::testing::TestParamInfo<Param>& info) {
      return "seed" + std::to_string(info.param.seed) +
             (info.param.simplify ? "_simp" : "_raw");
    });

TEST_P(ExhaustiveUpwardTest, EveryTransactionMatchesDefinition) {
  auto compiled = db_->Compiled();
  ASSERT_TRUE(compiled.ok()) << compiled.status();

  for (uint32_t mask = 0; mask < (1u << possible_.size()); ++mask) {
    Transaction txn;
    for (size_t i = 0; i < possible_.size(); ++i) {
      if (!(mask & (1u << i))) continue;
      const auto& ev = possible_[i];
      ASSERT_TRUE((ev.is_insert ? txn.AddInsert(ev.predicate, ev.tuple)
                                : txn.AddDelete(ev.predicate, ev.tuple))
                      .ok());
    }
    UpwardInterpreter upward(&db_->database(), *compiled, UpwardOptions{});
    auto events = upward.InducedEvents(txn);
    ASSERT_TRUE(events.ok()) << events.status();
    DerivedEvents expected = BruteForce(txn);
    ASSERT_EQ(events->ToString(db_->symbols()),
              expected.ToString(db_->symbols()))
        << "txn " << txn.ToString(db_->symbols());
  }
}

}  // namespace
}  // namespace deddb
