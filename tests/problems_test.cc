// Tests of the problems layer (paper §5) beyond the worked examples:
// precondition enforcement, condition monitoring, view maintenance wiring,
// validation problems, satisfiability, and translation post-processing.

#include <gtest/gtest.h>

#include "core/deductive_database.h"
#include "parser/parser.h"
#include "problems/translations.h"

namespace deddb {
namespace {

std::unique_ptr<DeductiveDatabase> Load(const char* source) {
  auto db = std::make_unique<DeductiveDatabase>();
  auto loaded = LoadProgram(db.get(), source);
  EXPECT_TRUE(loaded.ok()) << loaded.status();
  return db;
}

const char* kEmployment = R"(
  base La/1. base Works/1. base U_benefit/1.
  view Unemp/1.
  ic Ic1/1.
  condition Alert/1.
  Unemp(x) <- La(x) & not Works(x).
  Ic1(x) <- Unemp(x) & not U_benefit(x).
  Alert(x) <- Unemp(x).
  La(Dolors).
  U_benefit(Dolors).
)";

TEST(PreconditionsTest, UpwardProblemsCheckConsistency) {
  auto db = Load(kEmployment);
  // Make it inconsistent.
  ASSERT_TRUE(
      db->RemoveFact(db->GroundAtom("U_benefit", {"Dolors"}).value()).ok());
  auto txn = ParseTransaction(db.get(), "ins Works(Dolors)");
  ASSERT_TRUE(txn.ok());
  // CheckIntegrity requires ¬Ic⁰.
  EXPECT_EQ(db->CheckIntegrity(*txn).status().code(),
            StatusCode::kFailedPrecondition);
  // CheckConsistencyRestored requires Ic⁰ — fine here.
  auto restored = db->CheckConsistencyRestored(*txn);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_TRUE(restored->restored);
}

TEST(PreconditionsTest, DownwardProblemsCheckConsistency) {
  auto db = Load(kEmployment);
  auto txn = ParseTransaction(db.get(), "del U_benefit(Dolors)");
  ASSERT_TRUE(txn.ok());
  // Consistent database: repair and MaintainInconsistency are rejected.
  EXPECT_EQ(db->RepairDatabase().status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(db->MaintainInconsistency(*txn).status().code(),
            StatusCode::kFailedPrecondition);
  // Inconsistent database: MaintainIntegrity / FindViolating are rejected.
  ASSERT_TRUE(
      db->RemoveFact(db->GroundAtom("U_benefit", {"Dolors"}).value()).ok());
  EXPECT_EQ(db->MaintainIntegrity(*txn).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(db->FindViolatingTransactions().status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(ConditionMonitoringTest, ReportsOnlyConditionEvents) {
  auto db = Load(kEmployment);
  auto txn = ParseTransaction(db.get(), "ins La(Maria)");
  ASSERT_TRUE(txn.ok());
  auto changes = db->MonitorConditions(*txn);
  ASSERT_TRUE(changes.ok()) << changes.status();
  EXPECT_EQ(changes->events.ToString(db->symbols()), "{ins Alert(Maria)}");
  EXPECT_FALSE(changes->Unchanged());
}

TEST(ConditionMonitoringTest, RejectsNonConditionGoals) {
  auto db = Load(kEmployment);
  SymbolId unemp = db->database().FindPredicate("Unemp").value();
  Transaction txn;
  auto changes = db->MonitorConditions(txn, {unemp});
  EXPECT_EQ(changes.status().code(), StatusCode::kInvalidArgument);
}

TEST(ConditionMonitoringTest, UnchangedWhenTransactionIrrelevant) {
  auto db = Load(kEmployment);
  auto txn = ParseTransaction(db.get(), "ins U_benefit(Maria)");
  ASSERT_TRUE(txn.ok());
  auto changes = db->MonitorConditions(*txn);
  ASSERT_TRUE(changes.ok());
  EXPECT_TRUE(changes->Unchanged());
}

TEST(ViewMaintenanceTest, InitializeAndMaintain) {
  auto db = Load(R"(
    base B/1.
    materialized view V/1.
    V(x) <- B(x).
    B(A). B(C).
  )");
  ASSERT_TRUE(db->InitializeMaterializedViews().ok());
  SymbolId v = db->database().FindPredicate("V").value();
  EXPECT_EQ(db->database().materialized_store().Find(v)->size(), 2u);

  auto txn = ParseTransaction(db.get(), "del B(A), ins B(D)");
  ASSERT_TRUE(txn.ok());
  auto result = db->MaintainMaterializedViews(*txn, /*apply=*/true);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->applied_inserts, 1u);
  EXPECT_EQ(result->applied_deletes, 1u);
  SymbolId a = db->symbols().Intern("A");
  SymbolId d = db->symbols().Intern("D");
  EXPECT_FALSE(db->database().materialized_store().Contains(v, {a}));
  EXPECT_TRUE(db->database().materialized_store().Contains(v, {d}));
}

TEST(ViewMaintenanceTest, ApplyFalseLeavesStoreUntouched) {
  auto db = Load(R"(
    base B/1.
    materialized view V/1.
    V(x) <- B(x).
    B(A).
  )");
  ASSERT_TRUE(db->InitializeMaterializedViews().ok());
  auto txn = ParseTransaction(db.get(), "del B(A)");
  auto result = db->MaintainMaterializedViews(*txn, /*apply=*/false);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->delta.deletes.TotalFacts(), 1u);
  EXPECT_EQ(result->applied_deletes, 0u);
  SymbolId v = db->database().FindPredicate("V").value();
  SymbolId a = db->symbols().Intern("A");
  EXPECT_TRUE(db->database().materialized_store().Contains(v, {a}));
}

TEST(ViewValidationTest, DistinguishesReachableViews) {
  auto db = Load(R"(
    base B/1. base Blocker/1.
    view Reachable/1.
    view Dead/1.
    Reachable(x) <- B(x) & not Blocker(x).
    Dead(x) <- B(x) & Blocker(x).
    B(A). Blocker(A).
  )");
  SymbolId reachable = db->database().FindPredicate("Reachable").value();
  SymbolId dead = db->database().FindPredicate("Dead").value();
  // Reachable is empty but can gain members (del Blocker(A) or new B).
  EXPECT_TRUE(db->ValidateView(reachable, /*insertion=*/true).value());
  // Dead(A) holds; it can be deleted.
  EXPECT_TRUE(db->ValidateView(dead, /*insertion=*/false).value());
  // Reachable is empty: no instance can be deleted.
  EXPECT_FALSE(db->ValidateView(reachable, /*insertion=*/false).value());
}

TEST(SatisfiabilityTest, UnsatisfiableConstraintDetected) {
  // Ic_pair is violated by the *pair* of facts; removing either repairs it.
  auto db = Load(R"(
    base A/0. base B/0.
    ic IcPair/0.
    IcPair <- A & B.
    A. B.
  )");
  EXPECT_FALSE(db->IsConsistent().value());
  EXPECT_TRUE(db->CheckSatisfiability().value());
  auto repair = db->RepairDatabase();
  ASSERT_TRUE(repair.ok());
  EXPECT_EQ(repair->translations.size(), 2u);  // del A or del B
}

TEST(SatisfiabilityTest, ConsistentDatabaseIsTriviallySatisfiable) {
  auto db = Load(kEmployment);
  EXPECT_TRUE(db->CheckSatisfiability().value());
}

TEST(EnsuringSatisfactionTest, FindsWaysToViolate) {
  auto db = Load(kEmployment);
  auto result = db->FindViolatingTransactions();
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->translations.empty());
  // Every returned transaction, checked upward, must actually violate.
  for (size_t i = 0; i < result->translations.size() && i < 3; ++i) {
    auto check = db->CheckIntegrity(result->translations[i].transaction);
    ASSERT_TRUE(check.ok()) << check.status();
    EXPECT_TRUE(check->violated)
        << result->translations[i].ToString(db->symbols());
  }
}

TEST(ConditionActivationTest, EnforceRejectsNonConditions) {
  auto db = Load(kEmployment);
  RequestedEvent event;
  event.is_insert = true;
  event.predicate = db->database().FindPredicate("Unemp").value();
  event.args = {db->Constant("Dolors")};
  EXPECT_EQ(db->EnforceCondition(event).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ConditionActivationTest, EnforceAndValidate) {
  auto db = Load(kEmployment);
  SymbolId alert = db->database().FindPredicate("Alert").value();
  // Activating Alert(Maria) requires making her unemployed.
  RequestedEvent event;
  event.is_insert = true;
  event.predicate = alert;
  event.args = {db->Constant("Maria")};
  auto result = db->EnforceCondition(event);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->translations.size(), 1u);
  EXPECT_EQ(result->translations[0].transaction.ToString(db->symbols()),
            "{ins La(Maria)}");
  // With the active domain = {Dolors} alone, no instance can newly
  // activate (Alert(Dolors) already holds): finite-domain semantics (§2).
  EXPECT_FALSE(db->ValidateCondition(alert, /*activation=*/true).value());
  // Extending the finite domain with another individual makes it possible.
  ASSERT_TRUE(db->AddDomainConstant("Maria").ok());
  EXPECT_TRUE(db->ValidateCondition(alert, /*activation=*/true).value());
  // Deactivation is possible: Alert(Dolors) can be dropped.
  EXPECT_TRUE(db->ValidateCondition(alert, /*activation=*/false).value());
}

TEST(ConditionActivationTest, PreventConditionActivationFreezes) {
  auto db = Load(kEmployment);
  auto txn = ParseTransaction(db.get(), "ins La(Maria)");
  ASSERT_TRUE(txn.ok());
  RequestedEvent freeze;
  freeze.is_insert = true;
  freeze.predicate = db->database().FindPredicate("Alert").value();
  freeze.args = {db->Variable("anyone")};
  auto result = db->PreventConditionActivation(*txn, {freeze});
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_FALSE(result->translations.empty());
  // Applying any safe extension must not change Alert.
  for (const auto& translation : result->translations) {
    auto changes = db->MonitorConditions(translation.transaction);
    ASSERT_TRUE(changes.ok());
    EXPECT_TRUE(changes->events.inserts.TotalFacts() == 0)
        << translation.ToString(db->symbols());
  }
}

TEST(TranslationsTest, MinimalTranslationsFilterAndDedupe) {
  SymbolTable symbols;
  SymbolId q = symbols.Intern("Q");
  SymbolId a = symbols.Intern("A");
  SymbolId b = symbols.Intern("B");

  auto make = [&](std::vector<Tuple> inserts) {
    problems::Translation t;
    for (Tuple& tuple : inserts) {
      EXPECT_TRUE(t.transaction.AddInsert(q, tuple).ok());
    }
    return t;
  };
  std::vector<problems::Translation> all;
  all.push_back(make({{a}}));
  all.push_back(make({{a}, {b}}));  // superset of the first — dropped
  all.push_back(make({{b}}));
  all.push_back(make({{a}}));  // duplicate — collapsed
  auto minimal = problems::MinimalTranslations(all);
  EXPECT_EQ(minimal.size(), 2u);
}

TEST(TranslationsTest, TrueDnfYieldsEmptyTransaction) {
  auto translations = problems::TranslationsFromDnf(Dnf::True());
  ASSERT_EQ(translations.size(), 1u);
  EXPECT_TRUE(translations[0].transaction.empty());
  EXPECT_TRUE(problems::TranslationsFromDnf(Dnf::False()).empty());
}

}  // namespace
}  // namespace deddb
