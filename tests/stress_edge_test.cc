// Edge-case and failure-injection tests across the stack: zero arities,
// constants in rules, repeated variables, wide schemas, deep programs,
// option limits, and malformed inputs that must fail cleanly.

#include <gtest/gtest.h>

#include "core/deductive_database.h"
#include "parser/parser.h"
#include "util/strings.h"

namespace deddb {
namespace {

TEST(EdgeCaseTest, ZeroArityEndToEnd) {
  DeductiveDatabase db;
  ASSERT_TRUE(LoadProgram(&db, R"(
    base Switch/0.
    base Anything/0.
    view Lamp/0.
    condition Dark/0.
    Lamp <- Switch.
    Dark <- not Lamp, Anything.
    Anything.
  )")
                  .ok());
  // Upward: flipping the switch lights the lamp and ends the dark.
  auto txn = ParseTransaction(&db, "ins Switch");
  ASSERT_TRUE(txn.ok());
  auto events = db.InducedEvents(*txn);
  ASSERT_TRUE(events.ok()) << events.status();
  EXPECT_EQ(events->ToString(db.symbols()), "{del Dark, ins Lamp}");
  // Downward: how to light the lamp?
  auto request = ParseRequest(&db, "ins Lamp");
  ASSERT_TRUE(request.ok());
  auto result = db.TranslateViewUpdate(*request);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->translations.size(), 1u);
  EXPECT_EQ(result->translations[0].transaction.ToString(db.symbols()),
            "{ins Switch}");
}

TEST(EdgeCaseTest, ConstantsInRuleBodies) {
  DeductiveDatabase db;
  ASSERT_TRUE(LoadProgram(&db, R"(
    base Likes/2.
    view JazzFan/1.
    JazzFan(x) <- Likes(x, Jazz).
    Likes(Ann, Jazz). Likes(Bea, Rock).
  )")
                  .ok());
  auto request = ParseRequest(&db, "ins JazzFan(Bea)");
  ASSERT_TRUE(request.ok());
  auto result = db.TranslateViewUpdate(*request);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->translations.size(), 1u);
  EXPECT_EQ(result->translations[0].transaction.ToString(db.symbols()),
            "{ins Likes(Bea, Jazz)}");
}

TEST(EdgeCaseTest, RepeatedVariablesInRule) {
  DeductiveDatabase db;
  ASSERT_TRUE(LoadProgram(&db, R"(
    base Edge/2.
    view SelfLoop/1.
    SelfLoop(x) <- Edge(x, x).
    Edge(A, A). Edge(A, B).
  )")
                  .ok());
  OldStateView view(&db.database());
  SymbolId loop = db.database().FindPredicate("SelfLoop").value();
  SymbolId a = db.symbols().Intern("A");
  SymbolId b = db.symbols().Intern("B");
  EXPECT_TRUE(view.Contains(loop, {a}));
  EXPECT_FALSE(view.Contains(loop, {b}));
  // Downward: making B a self-loop inserts Edge(B, B).
  auto request = ParseRequest(&db, "ins SelfLoop(B)");
  auto result = db.TranslateViewUpdate(*request);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->translations.size(), 1u);
  EXPECT_EQ(result->translations[0].transaction.ToString(db.symbols()),
            "{ins Edge(B, B)}");
}

TEST(EdgeCaseTest, WideArityPredicates) {
  DeductiveDatabase db;
  ASSERT_TRUE(LoadProgram(&db, R"(
    base Wide/5.
    view Projected/2.
    Projected(a, e) <- Wide(a, b, c, d, e).
    Wide(V1, V2, V3, V4, V5).
  )")
                  .ok());
  auto txn = ParseTransaction(&db, "del Wide(V1, V2, V3, V4, V5)");
  ASSERT_TRUE(txn.ok());
  auto events = db.InducedEvents(*txn);
  ASSERT_TRUE(events.ok());
  EXPECT_EQ(events->ToString(db.symbols()), "{del Projected(V1, V5)}");
}

TEST(EdgeCaseTest, DeepViewTowerUpward) {
  // 20 stacked views over one base fact; one deletion must cascade through
  // every layer.
  DeductiveDatabase db;
  ASSERT_TRUE(db.DeclareBase("B", 1).ok());
  Term x = db.Variable("x");
  std::string prev = "B";
  for (int i = 1; i <= 20; ++i) {
    std::string name = StrCat("V", i);
    ASSERT_TRUE(db.DeclareView(name, 1).ok());
    ASSERT_TRUE(
        db.AddRule(Rule(db.MakeAtom(name, {x}).value(),
                        {Literal::Positive(db.MakeAtom(prev, {x}).value())}))
            .ok());
    prev = name;
  }
  ASSERT_TRUE(db.AddFact(db.GroundAtom("B", {"E"}).value()).ok());
  Transaction txn;
  ASSERT_TRUE(txn.AddDelete(db.database().FindPredicate("B").value(),
                            {db.symbols().Intern("E")})
                  .ok());
  auto events = db.InducedEvents(txn);
  ASSERT_TRUE(events.ok()) << events.status();
  EXPECT_EQ(events->size(), 20u);
}

TEST(EdgeCaseTest, MultipleRulesSameHeadDownward) {
  DeductiveDatabase db;
  ASSERT_TRUE(LoadProgram(&db, R"(
    base ByBirth/1. base ByLaw/1.
    view Citizen/1.
    Citizen(x) <- ByBirth(x).
    Citizen(x) <- ByLaw(x).
    ByBirth(Ann).
  )")
                  .ok());
  // Deleting Citizen(Ann) must remove her only support.
  auto del = db.TranslateViewUpdate(
      ParseRequest(&db, "del Citizen(Ann)").value());
  ASSERT_TRUE(del.ok());
  ASSERT_EQ(del->translations.size(), 1u);
  EXPECT_EQ(del->translations[0].transaction.ToString(db.symbols()),
            "{del ByBirth(Ann)}");
  // Inserting Citizen(Cal) can go through either rule.
  auto ins = db.TranslateViewUpdate(
      ParseRequest(&db, "ins Citizen(Cal)").value());
  ASSERT_TRUE(ins.ok());
  EXPECT_EQ(ins->translations.size(), 2u);
}

TEST(EdgeCaseTest, DeletingMultiSupportedFactNeedsBothRemovals) {
  DeductiveDatabase db;
  ASSERT_TRUE(LoadProgram(&db, R"(
    base ByBirth/1. base ByLaw/1.
    view Citizen/1.
    Citizen(x) <- ByBirth(x).
    Citizen(x) <- ByLaw(x).
    ByBirth(Ann). ByLaw(Ann).
  )")
                  .ok());
  auto del = db.TranslateViewUpdate(
      ParseRequest(&db, "del Citizen(Ann)").value());
  ASSERT_TRUE(del.ok());
  ASSERT_EQ(del->translations.size(), 1u);
  EXPECT_EQ(del->translations[0].transaction.ToString(db.symbols()),
            "{del ByBirth(Ann), del ByLaw(Ann)}");
}

TEST(EdgeCaseTest, ProjectionDeletionEnumeratesWitnesses) {
  // Deleting a projected fact must break EVERY witness.
  DeductiveDatabase db;
  ASSERT_TRUE(LoadProgram(&db, R"(
    base Works/2.
    view Employed/1.
    Employed(p) <- Works(p, c).
    Works(Ann, Acme). Works(Ann, Bcorp).
  )")
                  .ok());
  auto del = db.TranslateViewUpdate(
      ParseRequest(&db, "del Employed(Ann)").value());
  ASSERT_TRUE(del.ok()) << del.status();
  ASSERT_EQ(del->translations.size(), 1u);
  EXPECT_EQ(del->translations[0].transaction.ToString(db.symbols()),
            "{del Works(Ann, Acme), del Works(Ann, Bcorp)}");
}

TEST(FailureInjectionTest, DepthLimitSurfacesCleanly) {
  DeductiveDatabase db;
  ASSERT_TRUE(LoadProgram(&db, R"(
    base Q/1. base R/1.
    view P/1.
    P(x) <- Q(x) & not R(x).
    Q(A).
  )")
                  .ok());
  db.downward_options().max_depth = 0;
  auto result = db.TranslateViewUpdate(
      ParseRequest(&db, "ins P(B)").value());
  // Depth 0 still allows the top-level event; the nested derived events are
  // what would exceed it. Either a clean success or a clean
  // RESOURCE_EXHAUSTED is acceptable; never a crash or a wrong answer.
  if (!result.ok()) {
    EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  }
}

TEST(FailureInjectionTest, DisjunctCapZeroStillSound) {
  DeductiveDatabase db;
  ASSERT_TRUE(LoadProgram(&db, R"(
    base Q/1.
    view P/1.
    P(x) <- Q(x).
  )")
                  .ok());
  db.downward_options().max_disjuncts = 1;
  auto result =
      db.TranslateViewUpdate(ParseRequest(&db, "ins P(B)").value());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_LE(result->dnf.size(), 1u);
}

TEST(FailureInjectionTest, EvaluationRoundLimit) {
  DeductiveDatabase db;
  ASSERT_TRUE(LoadProgram(&db, R"(
    base Edge/2.
    derived Path/2.
    Path(x, y) <- Edge(x, y).
    Path(x, y) <- Path(x, z) & Edge(z, y).
    Edge(A, B). Edge(B, C). Edge(C, D). Edge(D, E).
  )")
                  .ok());
  FactStoreProvider edb(&db.database().facts());
  EvaluationOptions options;
  options.max_rounds = 1;
  BottomUpEvaluator evaluator(db.database().program(), db.symbols(), edb,
                              options);
  auto idb = evaluator.Evaluate();
  EXPECT_EQ(idb.status().code(), StatusCode::kRoundLimit);
}

// ---------------------------------------------------------------------------
// Concurrency edges of the parallel evaluator. Differential coverage lives in
// parallel_differential_test.cc; these pin down the awkward configurations.

constexpr const char* kChainProgram = R"(
  base Edge/2.
  derived Path/2.
  Path(x, y) <- Edge(x, y).
  Path(x, y) <- Path(x, z) & Edge(z, y).
  Edge(A, B). Edge(B, C). Edge(C, D). Edge(D, E).
)";

TEST(ParallelEdgeTest, RepeatedEvaluateOnOneInstance) {
  DeductiveDatabase db;
  ASSERT_TRUE(LoadProgram(&db, kChainProgram).ok());
  FactStoreProvider edb(&db.database().facts());
  EvaluationOptions options;
  options.num_threads = 4;
  BottomUpEvaluator evaluator(db.database().program(), db.symbols(), edb,
                              options);
  // The pool is created on the first call and reused by the later ones;
  // every call must return the same facts, and because each run is
  // deterministic the accumulated stats are an exact multiple.
  std::string first;
  EvaluationStats after_one;
  for (int call = 0; call < 3; ++call) {
    auto idb = evaluator.Evaluate();
    ASSERT_TRUE(idb.ok()) << "call " << call << ": " << idb.status();
    std::string rendering = idb->ToString(db.symbols());
    if (call == 0) {
      first = rendering;
      after_one = evaluator.stats();
    } else {
      EXPECT_EQ(rendering, first) << "call " << call;
    }
  }
  EXPECT_EQ(evaluator.stats().rounds, 3 * after_one.rounds);
  EXPECT_EQ(evaluator.stats().strata, 3 * after_one.strata);
  EXPECT_EQ(evaluator.stats().rule_firings, 3 * after_one.rule_firings);
  EXPECT_EQ(evaluator.stats().derived_facts, 3 * after_one.derived_facts);
}

TEST(ParallelEdgeTest, MoreThreadsThanRules) {
  DeductiveDatabase db;
  ASSERT_TRUE(LoadProgram(&db, kChainProgram).ok());
  FactStoreProvider edb(&db.database().facts());
  EvaluationOptions serial;
  BottomUpEvaluator oracle(db.database().program(), db.symbols(), edb,
                           serial);
  auto expected = oracle.Evaluate();
  ASSERT_TRUE(expected.ok());
  EvaluationOptions options;
  options.num_threads = 16;  // far more workers than the 2 rules
  BottomUpEvaluator evaluator(db.database().program(), db.symbols(), edb,
                              options);
  auto idb = evaluator.Evaluate();
  ASSERT_TRUE(idb.ok()) << idb.status();
  EXPECT_EQ(idb->ToString(db.symbols()), expected->ToString(db.symbols()));
}

TEST(ParallelEdgeTest, SingleRuleStrata) {
  // Start's stratum holds exactly one (non-recursive) rule; Loop's stratum
  // holds exactly one recursive rule that can never seed itself, so its
  // fixpoint must terminate on an empty delta without deriving anything.
  DeductiveDatabase db;
  ASSERT_TRUE(LoadProgram(&db, R"(
    base Zero/1.
    base Succ/2.
    derived Start/1.
    derived Loop/1.
    Start(x) <- Zero(x).
    Loop(y) <- Loop(x) & Succ(x, y).
    Zero(N0). Succ(N0, N1). Succ(N1, N2).
  )")
                  .ok());
  FactStoreProvider edb(&db.database().facts());
  for (size_t threads : {0u, 1u, 4u}) {
    EvaluationOptions options;
    options.num_threads = threads;
    BottomUpEvaluator evaluator(db.database().program(), db.symbols(), edb,
                                options);
    auto idb = evaluator.Evaluate();
    ASSERT_TRUE(idb.ok()) << "threads=" << threads;
    SymbolId start = db.database().FindPredicate("Start").value();
    SymbolId loop = db.database().FindPredicate("Loop").value();
    EXPECT_EQ(idb->Find(start)->size(), 1u) << "threads=" << threads;
    const Relation* loop_rel = idb->Find(loop);
    EXPECT_TRUE(loop_rel == nullptr || loop_rel->size() == 0)
        << "threads=" << threads;
  }
}

TEST(ParallelEdgeTest, ZeroThreadsIsExactlyTheSerialEngine) {
  DeductiveDatabase db;
  ASSERT_TRUE(LoadProgram(&db, kChainProgram).ok());
  FactStoreProvider edb(&db.database().facts());
  BottomUpEvaluator default_eval(db.database().program(), db.symbols(), edb);
  EvaluationOptions zero;
  zero.num_threads = 0;
  BottomUpEvaluator zero_eval(db.database().program(), db.symbols(), edb,
                              zero);
  auto a = default_eval.Evaluate();
  auto b = zero_eval.Evaluate();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->ToString(db.symbols()), b->ToString(db.symbols()));
  // num_threads=0 is not "parallel with one worker": it must take the
  // original serial loop, whose stats match the default configuration
  // field-for-field (in-round visibility and all).
  EXPECT_EQ(zero_eval.stats().rounds, default_eval.stats().rounds);
  EXPECT_EQ(zero_eval.stats().strata, default_eval.stats().strata);
  EXPECT_EQ(zero_eval.stats().rule_firings, default_eval.stats().rule_firings);
  EXPECT_EQ(zero_eval.stats().derived_facts,
            default_eval.stats().derived_facts);
}

TEST(ParallelEdgeTest, RoundLimitSurfacesInParallelMode) {
  DeductiveDatabase db;
  ASSERT_TRUE(LoadProgram(&db, kChainProgram).ok());
  FactStoreProvider edb(&db.database().facts());
  EvaluationOptions options;
  options.max_rounds = 1;
  options.num_threads = 4;
  BottomUpEvaluator evaluator(db.database().program(), db.symbols(), edb,
                              options);
  auto idb = evaluator.Evaluate();
  EXPECT_EQ(idb.status().code(), StatusCode::kRoundLimit);
}

TEST(ParallelEdgeTest, EvaluateForThenFullEvaluateReusesPool) {
  DeductiveDatabase db;
  ASSERT_TRUE(LoadProgram(&db, R"(
    base B/1.
    derived Wanted/1.
    derived Other/2.
    Wanted(x) <- B(x).
    Other(x, y) <- B(x) & B(y).
    B(A). B(C). B(D).
  )")
                  .ok());
  FactStoreProvider edb(&db.database().facts());
  EvaluationOptions options;
  options.num_threads = 2;
  BottomUpEvaluator evaluator(db.database().program(), db.symbols(), edb,
                              options);
  SymbolId wanted = db.database().FindPredicate("Wanted").value();
  SymbolId other = db.database().FindPredicate("Other").value();
  auto restricted = evaluator.EvaluateFor({wanted});
  ASSERT_TRUE(restricted.ok());
  EXPECT_EQ(restricted->Find(other), nullptr);
  EXPECT_EQ(restricted->Find(wanted)->size(), 3u);
  auto full = evaluator.Evaluate();
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->Find(other)->size(), 9u);
  EXPECT_EQ(full->Find(wanted)->size(), 3u);
}

TEST(ParallelEdgeTest, FacadeParallelUpwardMatchesSerial) {
  // set_num_threads must flow through the facade into upward interpretation
  // (which routes derived old-state queries through the locked
  // OldStateView) without changing any induced event.
  constexpr const char* kSource = R"(
    base Emp/2. base Mgr/1.
    view Works/1.
    condition Unmanaged/1.
    Works(p) <- Emp(p, c).
    Unmanaged(p) <- Works(p) & not Mgr(p).
    Emp(Ann, Acme). Emp(Bea, Bcorp). Mgr(Ann).
  )";
  std::vector<std::string> renderings;
  for (size_t threads : {0u, 8u}) {
    DeductiveDatabase db;
    ASSERT_TRUE(LoadProgram(&db, kSource).ok());
    db.set_num_threads(threads);
    auto txn = ParseTransaction(&db, "ins Emp(Cal, Acme), del Mgr(Ann)");
    ASSERT_TRUE(txn.ok());
    auto events = db.InducedEvents(*txn);
    ASSERT_TRUE(events.ok()) << "threads=" << threads << ": "
                             << events.status();
    renderings.push_back(events->ToString(db.symbols()));
  }
  EXPECT_EQ(renderings[0], renderings[1]);
  EXPECT_NE(renderings[0], "{}");
}

TEST(FailureInjectionTest, RequestOnUnknownPredicateFails) {
  DeductiveDatabase db;
  ASSERT_TRUE(LoadProgram(&db, "base Q/1. Q(A).").ok());
  RequestedEvent event;
  event.is_insert = true;
  event.predicate = 0xDEAD;
  UpdateRequest request;
  request.events.push_back(event);
  EXPECT_FALSE(db.TranslateViewUpdate(request).ok());
}

TEST(FailureInjectionTest, EventVariantSymbolsRejectedInRequests) {
  DeductiveDatabase db;
  ASSERT_TRUE(LoadProgram(&db, R"(
    base Q/1.
    view P/1.
    P(x) <- Q(x).
  )")
                  .ok());
  ASSERT_TRUE(db.Compiled().ok());
  SymbolId p = db.database().FindPredicate("P").value();
  SymbolId ins_p = db.database()
                       .predicates()
                       .FindVariant(p, PredicateVariant::kInsertEvent)
                       .value();
  RequestedEvent event;
  event.is_insert = true;
  event.predicate = ins_p;  // decorated symbol: not a user predicate
  event.args = {db.Constant("A")};
  UpdateRequest request;
  request.events.push_back(event);
  EXPECT_EQ(db.TranslateViewUpdate(request).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace deddb
