// Tests of the subscription subsystem below the wire (DESIGN.md §11): the
// delta algebra (Coalesce), the client-side materialized view (SubView,
// driven by a differential oracle against full recomputation), the
// SubscriptionManager's queueing/overflow/resume machinery, and the facade's
// CDC commit hook edge cases (empty transaction, rejected no-op insert,
// commit with an empty induced delta — each must push nothing, not an empty
// frame).

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <thread>
#include <vector>

#include "core/deductive_database.h"
#include "interp/derived_events.h"
#include "parser/parser.h"
#include "storage/transaction.h"
#include "storage/tuple.h"
#include "sub/cdc.h"
#include "sub/manager.h"
#include "sub/view.h"

namespace deddb {
namespace {

using sub::DeltaBatch;
using sub::GapReason;
using sub::OverflowPolicy;
using sub::SubscriptionManager;
using sub::SubscriptionSpec;

DeltaBatch MakeBatch(uint64_t version, std::vector<Tuple> inserts,
                     std::vector<Tuple> deletes) {
  DeltaBatch batch;
  batch.version = version;
  batch.inserts = std::move(inserts);
  batch.deletes = std::move(deletes);
  sub::SortUnique(&batch.inserts);
  sub::SortUnique(&batch.deletes);
  return batch;
}

/// The exactness invariant every batch must satisfy: sorted, duplicate-free
/// sides that are mutually disjoint.
void ExpectExact(const DeltaBatch& batch) {
  EXPECT_TRUE(std::is_sorted(batch.inserts.begin(), batch.inserts.end()));
  EXPECT_TRUE(std::is_sorted(batch.deletes.begin(), batch.deletes.end()));
  EXPECT_EQ(std::adjacent_find(batch.inserts.begin(), batch.inserts.end()),
            batch.inserts.end());
  EXPECT_EQ(std::adjacent_find(batch.deletes.begin(), batch.deletes.end()),
            batch.deletes.end());
  for (const Tuple& t : batch.inserts) {
    EXPECT_FALSE(std::binary_search(batch.deletes.begin(),
                                    batch.deletes.end(), t))
        << "tuple on both sides";
  }
}

// ---- Coalesce: exact sequential composition -------------------------------

TEST(DeltaBatchTest, CoalesceInsertThenDeleteCancels) {
  DeltaBatch merged = sub::Coalesce(MakeBatch(1, {{7}}, {}),
                                    MakeBatch(2, {}, {{7}}));
  EXPECT_TRUE(merged.empty());
  EXPECT_EQ(merged.version, 2u);
}

TEST(DeltaBatchTest, CoalesceDeleteThenReinsertCancels) {
  DeltaBatch merged = sub::Coalesce(MakeBatch(3, {}, {{7}}),
                                    MakeBatch(4, {{7}}, {}));
  EXPECT_TRUE(merged.empty());
  EXPECT_EQ(merged.version, 4u);
}

TEST(DeltaBatchTest, CoalesceDisjointSidesUnion) {
  DeltaBatch merged = sub::Coalesce(MakeBatch(1, {{2}}, {{9}}),
                                    MakeBatch(2, {{1}}, {{8}}));
  EXPECT_EQ(merged.inserts, (std::vector<Tuple>{{1}, {2}}));
  EXPECT_EQ(merged.deletes, (std::vector<Tuple>{{8}, {9}}));
  EXPECT_EQ(merged.version, 2u);
  ExpectExact(merged);
}

TEST(DeltaBatchTest, CoalesceMixedKeepsNetEffect) {
  // v1: +a -b; v2: +b -c. Net across both: +a, -c (b cancels out).
  const Tuple a = {1}, b = {2}, c = {3};
  DeltaBatch merged =
      sub::Coalesce(MakeBatch(1, {a}, {b}), MakeBatch(2, {b}, {c}));
  EXPECT_EQ(merged.inserts, (std::vector<Tuple>{a}));
  EXPECT_EQ(merged.deletes, (std::vector<Tuple>{c}));
  ExpectExact(merged);
}

TEST(DeltaBatchTest, CoalesceAgreesWithSequentialApplication) {
  // Oracle: applying Coalesce(first, second) to a set must equal applying
  // first then second, for a sweep of exact random delta pairs.
  std::mt19937 rng(20260808);
  const std::vector<Tuple> universe = {{1}, {2}, {3}, {4}, {5}, {6}};
  for (int round = 0; round < 200; ++round) {
    std::set<Tuple> state;
    for (const Tuple& t : universe) {
      if (rng() % 2 == 0) state.insert(t);
    }
    // An exact delta relative to `from`: deletes present tuples, inserts
    // absent ones.
    auto random_delta = [&](const std::set<Tuple>& from, uint64_t version) {
      DeltaBatch d;
      d.version = version;
      for (const Tuple& t : universe) {
        if (rng() % 3 != 0) continue;
        if (from.count(t)) {
          d.deletes.push_back(t);
        } else {
          d.inserts.push_back(t);
        }
      }
      return d;
    };
    auto apply = [](std::set<Tuple> s, const DeltaBatch& d) {
      for (const Tuple& t : d.deletes) s.erase(t);
      for (const Tuple& t : d.inserts) s.insert(t);
      return s;
    };
    DeltaBatch first = random_delta(state, 1);
    std::set<Tuple> mid = apply(state, first);
    DeltaBatch second = random_delta(mid, 2);
    std::set<Tuple> end = apply(mid, second);

    DeltaBatch merged = sub::Coalesce(first, second);
    ExpectExact(merged);
    EXPECT_EQ(apply(state, merged), end) << "round " << round;
  }
}

TEST(DeltaBatchTest, MatchesPatternWildcardsAndConstants) {
  const Tuple t = {10, 20};
  EXPECT_TRUE(sub::MatchesPattern(t, {std::nullopt, std::nullopt}));
  EXPECT_TRUE(sub::MatchesPattern(t, {SymbolId{10}, std::nullopt}));
  EXPECT_TRUE(sub::MatchesPattern(t, {SymbolId{10}, SymbolId{20}}));
  EXPECT_FALSE(sub::MatchesPattern(t, {SymbolId{11}, std::nullopt}));
  EXPECT_FALSE(sub::MatchesPattern(t, {std::nullopt, SymbolId{21}}));
  // Arity mismatch never matches.
  EXPECT_FALSE(sub::MatchesPattern(t, {std::nullopt}));
  EXPECT_FALSE(
      sub::MatchesPattern(t, {std::nullopt, std::nullopt, std::nullopt}));
}

TEST(DeltaBatchTest, SortUniqueSortsAndDeduplicates) {
  std::vector<Tuple> tuples = {{3}, {1}, {2}, {1}, {3}};
  sub::SortUnique(&tuples);
  EXPECT_EQ(tuples, (std::vector<Tuple>{{1}, {2}, {3}}));
}

// ---- SubView: the client-side materialized view ---------------------------

TEST(SubViewTest, ResetSortsAndDeduplicates) {
  sub::SubView view;
  view.Reset(5, {{3}, {1}, {3}, {2}});
  EXPECT_EQ(view.version(), 5u);
  EXPECT_EQ(view.tuples(), (std::vector<Tuple>{{1}, {2}, {3}}));
}

TEST(SubViewTest, ApplyAdvancesVersionAndContent) {
  sub::SubView view;
  view.Reset(1, {{1}, {2}});
  ASSERT_TRUE(view.Apply(MakeBatch(2, {{3}}, {{1}})).ok());
  EXPECT_EQ(view.version(), 2u);
  EXPECT_EQ(view.tuples(), (std::vector<Tuple>{{2}, {3}}));
}

TEST(SubViewTest, ApplyRejectsDuplicateOrReorderedFrame) {
  sub::SubView view;
  view.Reset(3, {{1}});
  // Same version and older version both mean a duplicated/reordered frame.
  EXPECT_EQ(view.Apply(MakeBatch(3, {{2}}, {})).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(view.Apply(MakeBatch(2, {{2}}, {})).code(),
            StatusCode::kFailedPrecondition);
  // And the view is untouched.
  EXPECT_EQ(view.version(), 3u);
  EXPECT_EQ(view.tuples(), (std::vector<Tuple>{{1}}));
}

TEST(SubViewTest, ApplyRejectsDivergenceAsCorruption) {
  sub::SubView view;
  view.Reset(1, {{1}});
  EXPECT_EQ(view.Apply(MakeBatch(2, {{1}}, {})).code(),
            StatusCode::kCorruption);  // insert of a present tuple
  EXPECT_EQ(view.Apply(MakeBatch(2, {}, {{9}})).code(),
            StatusCode::kCorruption);  // delete of an absent tuple
  EXPECT_EQ(view.version(), 1u);
  EXPECT_EQ(view.tuples(), (std::vector<Tuple>{{1}}));
}

TEST(SubViewTest, DifferentialOracleAgainstRecomputation) {
  // Drive the view through 100 random exact deltas; after each, its
  // contents and canonical rendering must be byte-identical to the
  // independently maintained reference set.
  SymbolTable symbols;
  std::vector<Tuple> universe;
  for (const char* name : {"A", "B", "C", "D", "E"}) {
    for (const char* other : {"X", "Y"}) {
      universe.push_back({symbols.Intern(name), symbols.Intern(other)});
    }
  }
  std::mt19937 rng(42);
  std::set<Tuple> reference;
  sub::SubView view;
  view.Reset(0, {});
  for (uint64_t version = 1; version <= 100; ++version) {
    DeltaBatch batch;
    batch.version = version;
    for (const Tuple& t : universe) {
      if (rng() % 3 != 0) continue;
      if (reference.count(t)) {
        batch.deletes.push_back(t);
        reference.erase(t);
      } else {
        batch.inserts.push_back(t);
        reference.insert(t);
      }
    }
    sub::SortUnique(&batch.inserts);
    sub::SortUnique(&batch.deletes);
    ASSERT_TRUE(view.Apply(batch).ok()) << "version " << version;
    EXPECT_EQ(view.version(), version);
    EXPECT_EQ(view.tuples(),
              std::vector<Tuple>(reference.begin(), reference.end()));
    std::string expected;
    for (const Tuple& t : reference) {
      expected += TupleToString(t, symbols);
      expected += '\n';
    }
    ASSERT_EQ(view.ToString(symbols), expected) << "version " << version;
  }
}

TEST(SubViewTest, ToStringRendersSortedTuplesOnePerLine) {
  SymbolTable symbols;
  const SymbolId a = symbols.Intern("A");
  const SymbolId b = symbols.Intern("B");
  sub::SubView view;
  view.Reset(1, {{b, a}, {a, b}});
  const std::string expected_first = TupleToString(
      std::min(Tuple{a, b}, Tuple{b, a}), symbols);
  const std::string rendered = view.ToString(symbols);
  EXPECT_EQ(rendered.substr(0, expected_first.size()), expected_first);
  EXPECT_EQ(std::count(rendered.begin(), rendered.end(), '\n'), 2);
}

// ---- SubscriptionManager: queueing, overflow, resume ----------------------

class SubManagerTest : public ::testing::Test {
 protected:
  SubManagerTest() : pred_(symbols_.Intern("P")) {}

  SubscriptionSpec BaseSpec(size_t max_queued = 64,
                            OverflowPolicy policy =
                                OverflowPolicy::kDisconnectWithGap) {
    SubscriptionSpec spec;
    spec.predicate = pred_;
    spec.filter = {std::nullopt};
    spec.derived = false;
    spec.policy = policy;
    spec.max_queued = max_queued;
    return spec;
  }

  /// One committed transaction inserting/deleting unary P facts.
  Transaction Txn(std::vector<SymbolId> inserts,
                  std::vector<SymbolId> deletes = {}) {
    Transaction txn;
    for (SymbolId s : inserts) EXPECT_TRUE(txn.AddInsert(pred_, {s}).ok());
    for (SymbolId s : deletes) EXPECT_TRUE(txn.AddDelete(pred_, {s}).ok());
    return txn;
  }

  /// Drives the observer contract the way the facade does: wanted set
  /// first, then the commit.
  void Commit(SubscriptionManager* mgr, uint64_t version,
              const Transaction& txn) {
    const DerivedEvents no_derived;
    mgr->WantedDerived();
    mgr->OnCommit(version, txn, no_derived);
  }

  SymbolTable symbols_;
  SymbolId pred_;
};

TEST_F(SubManagerTest, ActivateDropsBatchesTheSnapshotContains) {
  SubscriptionManager mgr;
  const uint64_t id = mgr.Register(BaseSpec(), /*owner=*/1);
  // Both commits land while the subscription is pending (snapshot being
  // built); the snapshot is taken at version 1, so only v2 must be pushed.
  Commit(&mgr, 1, Txn({symbols_.Intern("a")}));
  Commit(&mgr, 2, Txn({symbols_.Intern("b")}));
  mgr.Activate(id, /*snapshot_version=*/1);
  auto item = mgr.WaitPop();
  ASSERT_TRUE(item.has_value());
  EXPECT_FALSE(item->is_gap);
  EXPECT_EQ(item->sub_id, id);
  EXPECT_EQ(item->version, 2u);
  EXPECT_EQ(item->batch.inserts, (std::vector<Tuple>{{symbols_.Intern("b")}}));
  EXPECT_EQ(mgr.Stats().queued_batches, 0u);
}

TEST_F(SubManagerTest, EmptyFilteredDeltaEnqueuesNothing) {
  SubscriptionManager mgr;
  SubscriptionSpec spec = BaseSpec();
  spec.filter = {symbols_.Intern("wanted")};
  const uint64_t id = mgr.Register(spec, 1);
  mgr.Activate(id, 0);
  // The commit touches P, but no tuple passes the bound-argument filter:
  // nothing is queued — not an empty batch.
  Commit(&mgr, 1, Txn({symbols_.Intern("other")}));
  const auto stats = mgr.Stats();
  EXPECT_EQ(stats.commits_observed, 1u);
  EXPECT_EQ(stats.deltas_queued, 0u);
  EXPECT_EQ(stats.queued_batches, 0u);
}

TEST_F(SubManagerTest, BoundArgumentFilterSelectsMatchingTuples) {
  SubscriptionManager mgr;
  SubscriptionSpec spec = BaseSpec();
  const SymbolId wanted = symbols_.Intern("wanted");
  spec.filter = {wanted};
  const uint64_t id = mgr.Register(spec, 1);
  mgr.Activate(id, 0);
  Commit(&mgr, 1, Txn({wanted, symbols_.Intern("other")}));
  auto item = mgr.WaitPop();
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(item->batch.inserts, (std::vector<Tuple>{{wanted}}));
  EXPECT_TRUE(item->batch.deletes.empty());
}

TEST_F(SubManagerTest, DeliveryIsFifoPerSubscription) {
  SubscriptionManager mgr;
  const uint64_t id = mgr.Register(BaseSpec(), 1);
  mgr.Activate(id, 0);
  for (uint64_t v = 1; v <= 3; ++v) {
    Commit(&mgr, v, Txn({symbols_.Intern(std::to_string(v).c_str())}));
  }
  for (uint64_t v = 1; v <= 3; ++v) {
    auto item = mgr.WaitPop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(item->version, v);
  }
}

TEST_F(SubManagerTest, OverflowDisconnectsWithGapAndEndsSubscription) {
  SubscriptionManager mgr;
  const uint64_t id = mgr.Register(BaseSpec(/*max_queued=*/1), 1);
  mgr.Activate(id, 0);
  Commit(&mgr, 1, Txn({symbols_.Intern("a")}));
  // Queue is at its bound; the next matching delta overflows.
  Commit(&mgr, 2, Txn({symbols_.Intern("b")}));
  auto item = mgr.WaitPop();
  ASSERT_TRUE(item.has_value());
  EXPECT_TRUE(item->is_gap);
  EXPECT_EQ(item->reason, GapReason::kOverflow);
  EXPECT_EQ(item->version, 2u);
  // The gap marker is terminal: the subscription is gone.
  EXPECT_EQ(mgr.OwnerSubscriptions(1), 0u);
  EXPECT_EQ(mgr.Stats().gap_events, 1u);
}

TEST_F(SubManagerTest, OverflowCoalesceMergesIntoExactBatch) {
  SubscriptionManager mgr;
  const uint64_t id =
      mgr.Register(BaseSpec(/*max_queued=*/1, OverflowPolicy::kCoalesce), 1);
  mgr.Activate(id, 0);
  const SymbolId a = symbols_.Intern("a");
  const SymbolId b = symbols_.Intern("b");
  Commit(&mgr, 1, Txn({a}));
  Commit(&mgr, 2, Txn({b}));  // at the bound: merged into the v1 batch
  auto item = mgr.WaitPop();
  ASSERT_TRUE(item.has_value());
  EXPECT_FALSE(item->is_gap);
  EXPECT_EQ(item->version, 2u);
  std::vector<Tuple> expected = {{a}, {b}};
  sub::SortUnique(&expected);
  EXPECT_EQ(item->batch.inserts, expected);
  EXPECT_EQ(mgr.Stats().deltas_coalesced, 1u);
  EXPECT_EQ(mgr.Stats().gap_events, 0u);
}

TEST_F(SubManagerTest, CoalesceToNetEmptyDropsTheBatchEntirely) {
  SubscriptionManager mgr;
  const uint64_t id =
      mgr.Register(BaseSpec(/*max_queued=*/1, OverflowPolicy::kCoalesce), 1);
  mgr.Activate(id, 0);
  const SymbolId a = symbols_.Intern("a");
  const SymbolId b = symbols_.Intern("b");
  Commit(&mgr, 1, Txn({a}));
  Commit(&mgr, 2, Txn({}, {a}));  // merge cancels: +a then -a
  EXPECT_EQ(mgr.Stats().queued_batches, 0u);
  // The subscriber's next batch simply jumps versions.
  Commit(&mgr, 3, Txn({b}));
  auto item = mgr.WaitPop();
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(item->version, 3u);
  EXPECT_EQ(item->batch.inserts, (std::vector<Tuple>{{b}}));
}

TEST_F(SubManagerTest, BarrierGapsEveryLiveSubscription) {
  SubscriptionManager mgr;
  const uint64_t id = mgr.Register(BaseSpec(), 1);
  mgr.Activate(id, 0);
  mgr.OnBarrier(5);
  auto item = mgr.WaitPop();
  ASSERT_TRUE(item.has_value());
  EXPECT_TRUE(item->is_gap);
  EXPECT_EQ(item->reason, GapReason::kBarrier);
  EXPECT_EQ(item->version, 5u);
  EXPECT_EQ(mgr.Stats().barriers, 1u);
}

TEST_F(SubManagerTest, BarrierDuringHandshakeGapsAtActivate) {
  SubscriptionManager mgr;
  const uint64_t id = mgr.Register(BaseSpec(), 1);
  mgr.OnBarrier(3);  // pending: gap is remembered, not yet deliverable
  mgr.Activate(id, 3);
  auto item = mgr.WaitPop();
  ASSERT_TRUE(item.has_value());
  EXPECT_TRUE(item->is_gap);
  EXPECT_EQ(item->reason, GapReason::kBarrier);
}

TEST_F(SubManagerTest, ResumeReplaysTheRetainedWindow) {
  SubscriptionManager mgr;
  // Arm the CDC log with a first subscriber, then commit past it.
  const uint64_t first = mgr.Register(BaseSpec(), 1);
  mgr.Activate(first, 0);
  const SymbolId a = symbols_.Intern("a");
  const SymbolId b = symbols_.Intern("b");
  const SymbolId c = symbols_.Intern("c");
  Commit(&mgr, 1, Txn({a}));
  Commit(&mgr, 2, Txn({b}));
  Commit(&mgr, 3, Txn({c}));
  // A reconnecting client that acknowledged version 1 resumes: v2 and v3
  // are replayed from the log, v1 is not (the client already has it).
  const uint64_t id = mgr.Register(BaseSpec(), 2);
  ASSERT_TRUE(mgr.TryStageResume(id, /*from_version=*/1));
  mgr.Activate(id, 1);
  std::vector<uint64_t> versions;
  for (int i = 0; i < 5 && versions.size() < 5; ++i) {
    auto item = mgr.WaitPop();
    ASSERT_TRUE(item.has_value());
    if (item->sub_id != id) continue;  // the first sub's live batches
    versions.push_back(item->version);
    if (versions.size() == 2) break;
  }
  EXPECT_EQ(versions, (std::vector<uint64_t>{2, 3}));
  EXPECT_EQ(mgr.Stats().resume_hits, 1u);
}

TEST_F(SubManagerTest, ResumeMissesAheadOfLatestVersion) {
  SubscriptionManager mgr;
  const uint64_t arm = mgr.Register(BaseSpec(), 1);
  mgr.Activate(arm, 0);
  Commit(&mgr, 1, Txn({symbols_.Intern("a")}));
  const uint64_t id = mgr.Register(BaseSpec(), 2);
  EXPECT_FALSE(mgr.TryStageResume(id, /*from_version=*/7));
  EXPECT_EQ(mgr.Stats().resume_misses, 1u);
}

TEST_F(SubManagerTest, ResumeMissesAcrossABarrier) {
  SubscriptionManager mgr;
  const uint64_t arm = mgr.Register(BaseSpec(), 1);
  mgr.Activate(arm, 0);
  Commit(&mgr, 1, Txn({symbols_.Intern("a")}));
  mgr.OnBarrier(2);
  Commit(&mgr, 3, Txn({symbols_.Intern("b")}));
  const uint64_t id = mgr.Register(BaseSpec(), 2);
  // The barrier at v2 fences v1: the stream from there is not contiguous.
  EXPECT_FALSE(mgr.TryStageResume(id, /*from_version=*/1));
  // Resuming from after the barrier still works.
  const uint64_t id2 = mgr.Register(BaseSpec(), 2);
  EXPECT_TRUE(mgr.TryStageResume(id2, /*from_version=*/3));
}

TEST_F(SubManagerTest, ResumeMissesWhenTheWindowEvicted) {
  SubscriptionManager::Options options;
  options.retain_window = 1;
  SubscriptionManager mgr(options);
  const uint64_t arm = mgr.Register(BaseSpec(), 1);
  mgr.Activate(arm, 0);
  Commit(&mgr, 1, Txn({symbols_.Intern("a")}));
  Commit(&mgr, 2, Txn({symbols_.Intern("b")}));
  Commit(&mgr, 3, Txn({symbols_.Intern("c")}));
  const uint64_t id = mgr.Register(BaseSpec(), 2);
  // Only v3 is retained; a resume from v1 has lost v2.
  EXPECT_FALSE(mgr.TryStageResume(id, /*from_version=*/1));
  const uint64_t id2 = mgr.Register(BaseSpec(), 2);
  EXPECT_TRUE(mgr.TryStageResume(id2, /*from_version=*/2));
}

TEST_F(SubManagerTest, DerivedResumeRequiresCoveredEntries) {
  SubscriptionManager mgr;
  // Arm with a base subscriber so commits are logged, but with no derived
  // subscriber: the logged entries cover no derived predicate.
  const uint64_t arm = mgr.Register(BaseSpec(), 1);
  mgr.Activate(arm, 0);
  Commit(&mgr, 1, Txn({symbols_.Intern("a")}));
  SubscriptionSpec derived = BaseSpec();
  derived.predicate = symbols_.Intern("V");
  derived.derived = true;
  const uint64_t id = mgr.Register(derived, 2);
  // The v1 entry carries no induced events for V, so a derived resume
  // across it must miss (falling back to a fresh snapshot).
  EXPECT_FALSE(mgr.TryStageResume(id, /*from_version=*/0));
  EXPECT_EQ(mgr.Stats().resume_misses, 1u);
}

TEST_F(SubManagerTest, DerivedResumeMissesWhileAnUncoveringCommitIsInFlight) {
  // The race the 100-seed chaos suite found: a commit's WantedDerived()
  // runs while no one subscribes to V (so its induced events skip V), a
  // derived V subscriber registers mid-commit, and its resume is staged
  // before OnCommit lands. latest_version_ still predates the in-flight
  // commit, so every contiguity check passes — but the commit's batch for
  // this sub will be empty, silently losing its delta. The stage must miss
  // until the commit lands (then the covered check takes over).
  SubscriptionManager mgr;
  const uint64_t arm = mgr.Register(BaseSpec(), 1);
  mgr.Activate(arm, 0);
  Commit(&mgr, 1, Txn({symbols_.Intern("a")}));
  // Commit v2 is now in flight: wanted computed (covering no derived
  // predicate), OnCommit not yet delivered.
  mgr.WantedDerived();
  SubscriptionSpec derived = BaseSpec();
  derived.predicate = symbols_.Intern("V");
  derived.derived = true;
  const uint64_t id = mgr.Register(derived, 2);
  EXPECT_FALSE(mgr.TryStageResume(id, /*from_version=*/1));
  EXPECT_EQ(mgr.Stats().resume_misses, 1u);
  // Once v2 lands, the entry is visible and uncovered for V: still a miss,
  // but now by the ordinary covered check.
  const DerivedEvents no_derived;
  mgr.OnCommit(2, Txn({symbols_.Intern("b")}), no_derived);
  EXPECT_FALSE(mgr.TryStageResume(id, /*from_version=*/1));
  EXPECT_EQ(mgr.Stats().resume_misses, 2u);
  // A base subscriber registered mid-commit is unaffected: transactions are
  // always fully retained, and the in-flight commit's batch reaches its
  // pending queue.
  mgr.WantedDerived();
  const uint64_t base_id = mgr.Register(BaseSpec(), 3);
  EXPECT_TRUE(mgr.TryStageResume(base_id, /*from_version=*/2));
}

TEST_F(SubManagerTest, DerivedDeltaReadFromInducedEvents) {
  SubscriptionManager mgr;
  SubscriptionSpec spec = BaseSpec();
  const SymbolId view = symbols_.Intern("V");
  spec.predicate = view;
  spec.derived = true;
  const uint64_t id = mgr.Register(spec, 1);
  mgr.Activate(id, 0);
  // The commit's base delta must NOT leak into a derived subscription; its
  // batch comes from the induced events alone.
  DerivedEvents induced;
  const SymbolId x = symbols_.Intern("x");
  induced.inserts.Add(view, {x});
  EXPECT_EQ(mgr.WantedDerived(), (std::vector<SymbolId>{view}));
  mgr.OnCommit(1, Txn({symbols_.Intern("a")}), induced);
  auto item = mgr.WaitPop();
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(item->predicate, view);
  EXPECT_EQ(item->batch.inserts, (std::vector<Tuple>{{x}}));
  EXPECT_TRUE(item->batch.deletes.empty());
}

TEST_F(SubManagerTest, CancelIsOwnerChecked) {
  SubscriptionManager mgr;
  const uint64_t id = mgr.Register(BaseSpec(), /*owner=*/1);
  EXPECT_FALSE(mgr.Cancel(id, /*owner=*/2));
  EXPECT_EQ(mgr.OwnerSubscriptions(1), 1u);
  EXPECT_TRUE(mgr.Cancel(id, 1));
  EXPECT_EQ(mgr.OwnerSubscriptions(1), 0u);
  EXPECT_FALSE(mgr.Cancel(id, 1));  // already gone
}

TEST_F(SubManagerTest, CancelOwnerEndsEverySubscriptionOfTheConnection) {
  SubscriptionManager mgr;
  mgr.Register(BaseSpec(), 1);
  mgr.Register(BaseSpec(), 1);
  mgr.Register(BaseSpec(), 2);
  EXPECT_EQ(mgr.CancelOwner(1), 2u);
  EXPECT_EQ(mgr.OwnerSubscriptions(1), 0u);
  EXPECT_EQ(mgr.OwnerSubscriptions(2), 1u);
}

TEST_F(SubManagerTest, WaitPopSkipsCancelledSubscriptions) {
  SubscriptionManager mgr;
  const uint64_t doomed = mgr.Register(BaseSpec(), 1);
  const uint64_t kept = mgr.Register(BaseSpec(), 1);
  mgr.Activate(doomed, 0);
  mgr.Activate(kept, 0);
  Commit(&mgr, 1, Txn({symbols_.Intern("a")}));  // both scheduled
  ASSERT_TRUE(mgr.Cancel(doomed, 1));
  auto item = mgr.WaitPop();
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(item->sub_id, kept);
}

TEST_F(SubManagerTest, ShutdownWakesABlockedWaitPop) {
  SubscriptionManager mgr;
  std::optional<sub::PushItem> popped = sub::PushItem{};
  std::thread pusher([&] { popped = mgr.WaitPop(); });
  mgr.Shutdown();
  pusher.join();
  EXPECT_FALSE(popped.has_value());
  // And WaitPop stays woken for any later caller.
  EXPECT_FALSE(mgr.WaitPop().has_value());
}

// ---- SubEdge: the facade's CDC hook, edge cases first ---------------------
// Satellite: the InducedEvents paths feeding CDC — an empty transaction, a
// rejected no-op insert, and a commit whose induced delta is empty must each
// push nothing (not an empty frame).

class SubEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<DeductiveDatabase>();
    auto loaded = LoadProgram(db_.get(), R"(
      base P/1. base Q/1.
      view V/1.
      V(x) <- P(x) & not Q(x).
      P(A).
    )");
    ASSERT_TRUE(loaded.ok()) << loaded.status();
    db_->set_commit_observer(&mgr_);
  }

  void TearDown() override { db_->set_commit_observer(nullptr); }

  uint64_t RegisterBase(const char* predicate) {
    SubscriptionSpec spec;
    spec.predicate = db_->database().FindPredicate(predicate).value();
    spec.filter = {std::nullopt};
    spec.derived = false;
    const uint64_t id = mgr_.Register(spec, 1);
    mgr_.Activate(id, db_->version());
    return id;
  }

  uint64_t RegisterDerived(const char* predicate) {
    SubscriptionSpec spec;
    spec.predicate = db_->database().FindPredicate(predicate).value();
    spec.filter = {std::nullopt};
    spec.derived = true;
    const uint64_t id = mgr_.Register(spec, 1);
    mgr_.Activate(id, db_->version());
    return id;
  }

  std::unique_ptr<DeductiveDatabase> db_;
  SubscriptionManager mgr_;
};

TEST_F(SubEdgeTest, EnumNamesAreStableMetricLabels) {
  // These strings appear in metric names (sub.gap_*, sub.policy_*) and in
  // operator-facing diagnostics; renaming one silently breaks dashboards.
  EXPECT_STREQ(OverflowPolicyName(OverflowPolicy::kDisconnectWithGap),
               "disconnect_with_gap");
  EXPECT_STREQ(OverflowPolicyName(OverflowPolicy::kCoalesce), "coalesce");
  EXPECT_STREQ(GapReasonName(GapReason::kOverflow), "overflow");
  EXPECT_STREQ(GapReasonName(GapReason::kBarrier), "barrier");
  EXPECT_STREQ(GapReasonName(GapReason::kResumeWindow), "resume_window");
  EXPECT_STREQ(GapReasonName(GapReason::kShutdown), "shutdown");
}

TEST_F(SubEdgeTest, EmptyTransactionPushesNothing) {
  RegisterBase("P");
  ASSERT_TRUE(db_->Apply(Transaction{}).ok());
  const auto stats = mgr_.Stats();
  EXPECT_EQ(stats.commits_observed, 1u);  // the commit was observed...
  EXPECT_EQ(stats.deltas_queued, 0u);     // ...but nothing was queued
  EXPECT_EQ(stats.queued_batches, 0u);
}

TEST_F(SubEdgeTest, RejectedNoOpInsertPushesNothing) {
  RegisterBase("P");
  // P(A) already holds, so the insertion event is invalid (paper eq. 1):
  // the write is rejected before the commit path, and CDC sees nothing.
  auto txn = ParseTransaction(db_.get(), "ins P(A)");
  ASSERT_TRUE(txn.ok());
  EXPECT_EQ(db_->Apply(*txn).code(), StatusCode::kFailedPrecondition);
  const auto stats = mgr_.Stats();
  EXPECT_EQ(stats.commits_observed, 0u);
  EXPECT_EQ(stats.queued_batches, 0u);
}

TEST_F(SubEdgeTest, CommitWithEmptyInducedDeltaPushesNothing) {
  RegisterDerived("V");
  // Q(B) flips no V tuple (V(B) would also need P(B)): the induced delta
  // for V is empty, so the derived subscriber gets nothing.
  auto txn = ParseTransaction(db_.get(), "ins Q(B)");
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(db_->Apply(*txn).ok());
  const auto stats = mgr_.Stats();
  EXPECT_EQ(stats.commits_observed, 1u);
  EXPECT_EQ(stats.deltas_queued, 0u);
  EXPECT_EQ(stats.queued_batches, 0u);
}

TEST_F(SubEdgeTest, InducedDeltaMatchesFullRederivation) {
  RegisterDerived("V");
  // Prime the client-side view from a pinned snapshot.
  auto session = db_->BeginSession();
  ASSERT_TRUE(session.ok());
  auto pattern = db_->MakeAtom("V", {db_->Variable("x")});
  ASSERT_TRUE(pattern.ok());
  auto initial = (*session)->Solve(*pattern);
  ASSERT_TRUE(initial.ok());
  sub::SubView view;
  view.Reset((*session)->version(), std::move(*initial));

  // ins Q(A) retracts V(A): P(A) & not Q(A) stops holding.
  auto txn = ParseTransaction(db_.get(), "ins Q(A)");
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(db_->Apply(*txn).ok());
  auto item = mgr_.WaitPop();
  ASSERT_TRUE(item.has_value());
  ASSERT_FALSE(item->is_gap);
  EXPECT_EQ(item->version, db_->version());
  ASSERT_TRUE(view.Apply(item->batch).ok());

  // Byte-identity against full re-derivation at the pushed version.
  auto fresh = db_->BeginSession();
  ASSERT_TRUE(fresh.ok());
  auto rederived = (*fresh)->Solve(*pattern);
  ASSERT_TRUE(rederived.ok());
  sub::SubView oracle;
  oracle.Reset((*fresh)->version(), std::move(*rederived));
  EXPECT_EQ(view.ToString(db_->symbols()), oracle.ToString(db_->symbols()));
}

TEST_F(SubEdgeTest, DirectFacadeMutationAnnouncesABarrier) {
  RegisterBase("P");
  // AddFact bypasses the transaction path: no delta stream exists for it,
  // so every live subscription is gapped instead of silently diverging.
  ASSERT_TRUE(db_->AddFact(db_->GroundAtom("P", {"Z"}).value()).ok());
  auto item = mgr_.WaitPop();
  ASSERT_TRUE(item.has_value());
  EXPECT_TRUE(item->is_gap);
  EXPECT_EQ(item->reason, GapReason::kBarrier);
  EXPECT_EQ(item->version, db_->version());
  EXPECT_EQ(mgr_.Stats().barriers, 1u);
}

TEST_F(SubEdgeTest, BaseDeltaReadStraightOffTheTransaction) {
  RegisterBase("Q");
  auto txn = ParseTransaction(db_.get(), "ins Q(C)");
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(db_->Apply(*txn).ok());
  auto item = mgr_.WaitPop();
  ASSERT_TRUE(item.has_value());
  ASSERT_FALSE(item->is_gap);
  EXPECT_EQ(item->batch.inserts,
            (std::vector<Tuple>{{db_->symbols().Intern("C")}}));
  EXPECT_TRUE(item->batch.deletes.empty());
}

}  // namespace
}  // namespace deddb
