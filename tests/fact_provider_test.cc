// Unit tests for the FactProvider hierarchy: FactStoreProvider selection and
// estimates, LayeredProvider union semantics (per-layer duplicates, early
// stop, count aggregation), EmptyProvider, and the default
// ForEachMatchUntil adapter.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "eval/fact_provider.h"
#include "storage/fact_store.h"

namespace deddb {
namespace {

class FactProviderTest : public ::testing::Test {
 protected:
  // Predicate ids are arbitrary distinct symbols; no SymbolTable needed.
  static constexpr SymbolId kEdge = 1;
  static constexpr SymbolId kNode = 2;
  static constexpr SymbolId kUnknown = 99;

  void SetUp() override {
    store_.Add(kEdge, {10, 20});
    store_.Add(kEdge, {10, 30});
    store_.Add(kEdge, {20, 30});
    store_.Add(kNode, {10});
  }

  static std::vector<Tuple> Collect(const FactProvider& provider,
                                    SymbolId predicate,
                                    const TuplePattern& pattern) {
    std::vector<Tuple> out;
    provider.ForEachMatch(predicate, pattern,
                          [&](const Tuple& t) { out.push_back(t); });
    std::sort(out.begin(), out.end());
    return out;
  }

  FactStore store_;
};

TEST_F(FactProviderTest, FactStoreProviderMatchesPattern) {
  FactStoreProvider provider(&store_);
  EXPECT_EQ(Collect(provider, kEdge, {10, std::nullopt}),
            (std::vector<Tuple>{{10, 20}, {10, 30}}));
  EXPECT_EQ(Collect(provider, kEdge, {std::nullopt, std::nullopt}).size(), 3u);
  EXPECT_EQ(Collect(provider, kEdge, {40, std::nullopt}).size(), 0u);
}

TEST_F(FactProviderTest, FactStoreProviderContainsAndEstimate) {
  FactStoreProvider provider(&store_);
  EXPECT_TRUE(provider.Contains(kEdge, {10, 20}));
  EXPECT_FALSE(provider.Contains(kEdge, {20, 10}));
  EXPECT_EQ(provider.EstimateCount(kEdge), 3u);
  EXPECT_EQ(provider.EstimateCount(kNode), 1u);
}

TEST_F(FactProviderTest, UnknownPredicateIsEmpty) {
  FactStoreProvider provider(&store_);
  EXPECT_EQ(Collect(provider, kUnknown, {std::nullopt}).size(), 0u);
  EXPECT_FALSE(provider.Contains(kUnknown, {10}));
  EXPECT_EQ(provider.EstimateCount(kUnknown), 0u);
}

TEST_F(FactProviderTest, DefaultUntilAdapterStopsEarly) {
  FactStoreProvider provider(&store_);
  size_t seen = 0;
  bool stopped = provider.ForEachMatchUntil(
      kEdge, {std::nullopt, std::nullopt}, [&](const Tuple&) {
        ++seen;
        return false;  // stop after the first match
      });
  EXPECT_TRUE(stopped);
  EXPECT_EQ(seen, 1u);

  // Exhausting the relation reports no early stop.
  stopped = provider.ForEachMatchUntil(kEdge, {std::nullopt, std::nullopt},
                                       [](const Tuple&) { return true; });
  EXPECT_FALSE(stopped);
}

TEST_F(FactProviderTest, LayeredProviderUnionsLayers) {
  FactStore overlay;
  overlay.Add(kEdge, {30, 40});
  overlay.Add(kEdge, {10, 20});  // duplicate of a base fact

  FactStoreProvider base(&store_);
  FactStoreProvider top(&overlay);
  LayeredProvider layered({&base, &top});

  EXPECT_TRUE(layered.Contains(kEdge, {10, 30}));  // only in base
  EXPECT_TRUE(layered.Contains(kEdge, {30, 40}));  // only in overlay
  EXPECT_FALSE(layered.Contains(kEdge, {40, 50}));

  // A fact present in both layers is reported once per layer; callers
  // deduplicate (set semantics downstream).
  auto all = Collect(layered, kEdge, {std::nullopt, std::nullopt});
  EXPECT_EQ(all.size(), 5u);
  EXPECT_EQ(std::count(all.begin(), all.end(), Tuple{10, 20}), 2);

  EXPECT_EQ(layered.EstimateCount(kEdge), 5u);
}

TEST_F(FactProviderTest, LayeredProviderUntilSpansLayers) {
  FactStore overlay;
  overlay.Add(kEdge, {30, 40});
  FactStoreProvider base(&store_);
  FactStoreProvider top(&overlay);
  LayeredProvider layered({&base, &top});

  // Stop inside the second layer: all three base tuples plus one overlay
  // tuple are seen.
  size_t seen = 0;
  bool stopped = layered.ForEachMatchUntil(
      kEdge, {std::nullopt, std::nullopt}, [&](const Tuple&) {
        return ++seen < 4;
      });
  EXPECT_TRUE(stopped);
  EXPECT_EQ(seen, 4u);
}

TEST_F(FactProviderTest, EmptyProviderHasNothing) {
  EmptyProvider provider;
  EXPECT_EQ(Collect(provider, kEdge, {std::nullopt, std::nullopt}).size(), 0u);
  EXPECT_FALSE(provider.Contains(kEdge, {10, 20}));
  EXPECT_EQ(provider.EstimateCount(kEdge), 0u);
  EXPECT_FALSE(provider.ForEachMatchUntil(kEdge, {std::nullopt, std::nullopt},
                                          [](const Tuple&) { return false; }));
}

}  // namespace
}  // namespace deddb
