// Robustness proof of the wire protocol (DESIGN.md §10): every frame and
// payload type round-trips through a *separate* symbol table (names travel,
// ids are re-interned), and decoding arbitrary bytes — truncated at every
// offset, bit-flipped at every offset, spliced, or carrying an oversized
// length prefix — returns a typed error or a well-formed value. It never
// crashes and never allocates proportionally to a length field the input
// cannot back: the ASan/UBSan CI job runs this suite, so any out-of-bounds
// read or pathological reserve is a test failure, not a latent CVE.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "persist/codec.h"
#include "server/protocol.h"
#include "server/transport.h"
#include "util/strings.h"

namespace deddb::server {
namespace {

Atom MakeAtom(SymbolTable* symbols, std::string_view pred,
              std::vector<std::string_view> constants) {
  std::vector<Term> args;
  for (std::string_view c : constants) {
    args.push_back(Term::MakeConstant(symbols->Intern(c)));
  }
  return Atom(symbols->Intern(pred), std::move(args));
}

Admission SampleAdmission() {
  Admission admission;
  admission.deadline_ms = 1500;
  admission.max_derived_facts = 77;
  admission.max_dnf_terms = 123456789;
  return admission;
}

Transaction SampleTransaction(SymbolTable* symbols) {
  Transaction txn;
  EXPECT_TRUE(txn.AddInsert(MakeAtom(symbols, "Q", {"alpha"})).ok());
  EXPECT_TRUE(txn.AddInsert(MakeAtom(symbols, "R", {"beta"})).ok());
  EXPECT_TRUE(txn.AddDelete(MakeAtom(symbols, "Q", {"gamma"})).ok());
  return txn;
}

void ExpectAdmissionEq(const Admission& a, const Admission& b) {
  EXPECT_EQ(a.deadline_ms, b.deadline_ms);
  EXPECT_EQ(a.max_derived_facts, b.max_derived_facts);
  EXPECT_EQ(a.max_dnf_terms, b.max_dnf_terms);
}

// ---- Round trips through a fresh symbol table -------------------------------
// The decoder's table starts empty (the other-process situation), so equal
// ids would be an accident; comparisons go through rendered names.

TEST(ServerCodecTest, QueryRequestRoundTrip) {
  SymbolTable sender;
  QueryRequest request;
  request.admission = SampleAdmission();
  request.patterns.push_back(MakeAtom(&sender, "P", {"c0", "c1"}));
  Atom open(sender.Intern("Q"),
            {Term::MakeVariable(sender.InternVar("x")),
             Term::MakeConstant(sender.Intern("c2"))});
  request.patterns.push_back(open);
  request.patterns.push_back(MakeAtom(&sender, "Zero", {}));

  SymbolTable receiver;
  Result<QueryRequest> decoded =
      DecodeQueryRequest(EncodeQueryRequest(request, sender), &receiver);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectAdmissionEq(request.admission, decoded->admission);
  ASSERT_EQ(decoded->patterns.size(), request.patterns.size());
  for (size_t i = 0; i < request.patterns.size(); ++i) {
    EXPECT_EQ(decoded->patterns[i].ToString(receiver),
              request.patterns[i].ToString(sender));
  }
}

TEST(ServerCodecTest, ApplyAndProcessRequestRoundTrip) {
  SymbolTable sender;
  ApplyRequest apply;
  apply.admission = SampleAdmission();
  apply.transaction = SampleTransaction(&sender);

  SymbolTable receiver;
  Result<ApplyRequest> decoded =
      DecodeApplyRequest(EncodeApplyRequest(apply, sender), &receiver);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectAdmissionEq(apply.admission, decoded->admission);
  EXPECT_EQ(decoded->transaction.ToString(receiver),
            apply.transaction.ToString(sender));

  ProcessRequest process;
  process.admission = SampleAdmission();
  process.transaction = SampleTransaction(&sender);
  SymbolTable receiver2;
  Result<ProcessRequest> decoded2 =
      DecodeProcessRequest(EncodeProcessRequest(process, sender), &receiver2);
  ASSERT_TRUE(decoded2.ok()) << decoded2.status().ToString();
  EXPECT_EQ(decoded2->transaction.ToString(receiver2),
            process.transaction.ToString(sender));
}

TEST(ServerCodecTest, TranslateRequestRoundTrip) {
  SymbolTable sender;
  TranslateRequest request;
  request.admission = SampleAdmission();
  RequestedEvent insertion;
  insertion.positive = true;
  insertion.is_insert = true;
  insertion.predicate = sender.Intern("View");
  insertion.args = {Term::MakeConstant(sender.Intern("c0")),
                    Term::MakeVariable(sender.InternVar("y"))};
  RequestedEvent negated;
  negated.positive = false;
  negated.is_insert = false;
  negated.predicate = sender.Intern("Other");
  negated.args = {Term::MakeConstant(sender.Intern("c1"))};
  request.request.events = {insertion, negated};

  SymbolTable receiver;
  Result<TranslateRequest> decoded = DecodeTranslateRequest(
      EncodeTranslateRequest(request, sender), &receiver);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectAdmissionEq(request.admission, decoded->admission);
  ASSERT_EQ(decoded->request.events.size(), 2u);
  EXPECT_EQ(decoded->request.ToString(receiver),
            request.request.ToString(sender));
  EXPECT_TRUE(decoded->request.events[0].positive);
  EXPECT_TRUE(decoded->request.events[0].is_insert);
  EXPECT_FALSE(decoded->request.events[1].positive);
  EXPECT_FALSE(decoded->request.events[1].is_insert);
}

TEST(ServerCodecTest, AdmissionOnlyRoundTrip) {
  Result<Admission> decoded =
      DecodeAdmissionOnly(EncodeAdmissionOnly(SampleAdmission()));
  ASSERT_TRUE(decoded.ok());
  ExpectAdmissionEq(SampleAdmission(), *decoded);

  // The default header is inert and round-trips too.
  Result<Admission> inert = DecodeAdmissionOnly(EncodeAdmissionOnly({}));
  ASSERT_TRUE(inert.ok());
  ExpectAdmissionEq({}, *inert);
}

TEST(ServerCodecTest, QueryReplyRoundTrip) {
  SymbolTable sender;
  QueryReply reply;
  reply.version = 42;
  reply.answers.push_back(
      {{sender.Intern("c0"), sender.Intern("c1")}, {sender.Intern("c2")}});
  reply.answers.push_back({});  // a pattern with no matches
  reply.answers.push_back({{}});  // one 0-ary match (e.g. `Ic` holds)

  SymbolTable receiver;
  Result<QueryReply> decoded =
      DecodeQueryReply(EncodeQueryReply(reply, sender), &receiver);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->version, 42u);
  ASSERT_EQ(decoded->answers.size(), 3u);
  ASSERT_EQ(decoded->answers[0].size(), 2u);
  ASSERT_EQ(decoded->answers[0][0].size(), 2u);
  EXPECT_EQ(receiver.NameOf(decoded->answers[0][0][0]), "c0");
  EXPECT_EQ(receiver.NameOf(decoded->answers[0][0][1]), "c1");
  EXPECT_EQ(receiver.NameOf(decoded->answers[0][1][0]), "c2");
  EXPECT_TRUE(decoded->answers[1].empty());
  ASSERT_EQ(decoded->answers[2].size(), 1u);
  EXPECT_TRUE(decoded->answers[2][0].empty());
}

TEST(ServerCodecTest, SimpleRepliesRoundTrip) {
  Result<ApplyReply> apply = DecodeApplyReply(EncodeApplyReply({17}));
  ASSERT_TRUE(apply.ok());
  EXPECT_EQ(apply->version, 17u);

  ProcessReply process;
  process.version = 9;
  process.accepted = false;
  process.detail = "Ic violated: C1(c3)";
  Result<ProcessReply> process2 =
      DecodeProcessReply(EncodeProcessReply(process));
  ASSERT_TRUE(process2.ok());
  EXPECT_EQ(process2->version, 9u);
  EXPECT_FALSE(process2->accepted);
  EXPECT_EQ(process2->detail, process.detail);

  Result<CheckpointReply> checkpoint =
      DecodeCheckpointReply(EncodeCheckpointReply({33}));
  ASSERT_TRUE(checkpoint.ok());
  EXPECT_EQ(checkpoint->version, 33u);

  StatsReply stats{R"({"server":{"queue_depth":0}})"};
  Result<StatsReply> stats2 = DecodeStatsReply(EncodeStatsReply(stats));
  ASSERT_TRUE(stats2.ok());
  EXPECT_EQ(stats2->json, stats.json);
}

TEST(ServerCodecTest, TranslateReplyRoundTrip) {
  SymbolTable sender;
  TranslateReply reply;
  reply.approximate = true;
  reply.alternatives.push_back(SampleTransaction(&sender));
  Transaction second;
  ASSERT_TRUE(second.AddDelete(MakeAtom(&sender, "R", {"delta"})).ok());
  reply.alternatives.push_back(second);

  SymbolTable receiver;
  Result<TranslateReply> decoded =
      DecodeTranslateReply(EncodeTranslateReply(reply, sender), &receiver);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded->approximate);
  ASSERT_EQ(decoded->alternatives.size(), 2u);
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(decoded->alternatives[i].ToString(receiver),
              reply.alternatives[i].ToString(sender));
  }
}

TEST(ServerCodecTest, ErrorReplyRoundTripPreservesTypedGuardCodes) {
  // The small-fix contract: which guard tripped survives the wire — a
  // client can distinguish a deadline from a budget from a cancellation.
  for (StatusCode code :
       {StatusCode::kDeadlineExceeded, StatusCode::kBudgetExceeded,
        StatusCode::kCancelled, StatusCode::kResourceExhausted,
        StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kFailedPrecondition, StatusCode::kCorruption,
        StatusCode::kInternal, StatusCode::kAlreadyExists,
        StatusCode::kUnimplemented, StatusCode::kRoundLimit}) {
    ErrorReply reply{code, "detail text"};
    Result<ErrorReply> decoded = DecodeErrorReply(EncodeErrorReply(reply));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->code, code);
    EXPECT_EQ(decoded->message, "detail text");
    EXPECT_EQ(decoded->ToStatus().code(), code);
  }
}

TEST(ServerCodecTest, UnknownWireCodeDegradesToInternal) {
  EXPECT_EQ(CodeFromWire(0xEE), StatusCode::kInternal);
}

// ---- Subscription frames (DESIGN.md §11) ------------------------------------

TEST(ServerCodecTest, SubscribeRequestRoundTrip) {
  SymbolTable sender;
  SubscribeRequest request;
  request.admission = SampleAdmission();
  request.pattern = Atom(sender.Intern("Emp"),
                         {Term::MakeConstant(sender.Intern("dept9")),
                          Term::MakeVariable(sender.InternVar("x"))});
  request.policy = sub::OverflowPolicy::kCoalesce;
  request.max_queued = 32;
  request.resume_from_version = 41;

  SymbolTable receiver;
  Result<SubscribeRequest> decoded = DecodeSubscribeRequest(
      EncodeSubscribeRequest(request, sender), &receiver);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectAdmissionEq(request.admission, decoded->admission);
  EXPECT_EQ(decoded->pattern.ToString(receiver),
            request.pattern.ToString(sender));
  EXPECT_EQ(decoded->policy, sub::OverflowPolicy::kCoalesce);
  EXPECT_EQ(decoded->max_queued, 32u);
  EXPECT_EQ(decoded->resume_from_version, 41u);
}

TEST(ServerCodecTest, SubscribeRequestRejectsUnknownPolicy) {
  SymbolTable sender;
  SubscribeRequest request;
  request.pattern = MakeAtom(&sender, "P", {"c0"});
  std::string payload = EncodeSubscribeRequest(request, sender);
  // The policy byte sits 13 bytes from the end (u8 + u32 + u64).
  payload[payload.size() - 13] = 2;
  SymbolTable receiver;
  Result<SubscribeRequest> decoded =
      DecodeSubscribeRequest(payload, &receiver);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(ServerCodecTest, UnsubscribeRoundTrips) {
  UnsubscribeRequest request;
  request.admission = SampleAdmission();
  request.sub_id = 99;
  Result<UnsubscribeRequest> decoded =
      DecodeUnsubscribeRequest(EncodeUnsubscribeRequest(request));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->sub_id, 99u);

  Result<UnsubscribeReply> yes =
      DecodeUnsubscribeReply(EncodeUnsubscribeReply({true}));
  ASSERT_TRUE(yes.ok());
  EXPECT_TRUE(yes->existed);
  Result<UnsubscribeReply> no =
      DecodeUnsubscribeReply(EncodeUnsubscribeReply({false}));
  ASSERT_TRUE(no.ok());
  EXPECT_FALSE(no->existed);
}

TEST(ServerCodecTest, SubscribeReplyRoundTripSnapshotAndResume) {
  SymbolTable sender;
  SubscribeReply fresh;
  fresh.sub_id = 4;
  fresh.version = 17;
  fresh.snapshot = {{sender.Intern("c0"), sender.Intern("c1")},
                    {sender.Intern("c2"), sender.Intern("c3")}};
  SymbolTable receiver;
  Result<SubscribeReply> decoded =
      DecodeSubscribeReply(EncodeSubscribeReply(fresh, sender), &receiver);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->sub_id, 4u);
  EXPECT_EQ(decoded->version, 17u);
  EXPECT_FALSE(decoded->resumed);
  ASSERT_EQ(decoded->snapshot.size(), 2u);
  EXPECT_EQ(receiver.NameOf(decoded->snapshot[0][0]), "c0");
  EXPECT_EQ(receiver.NameOf(decoded->snapshot[1][1]), "c3");

  SubscribeReply resumed;
  resumed.sub_id = 4;
  resumed.version = 12;
  resumed.resumed = true;
  SymbolTable receiver2;
  Result<SubscribeReply> decoded2 =
      DecodeSubscribeReply(EncodeSubscribeReply(resumed, sender), &receiver2);
  ASSERT_TRUE(decoded2.ok());
  EXPECT_TRUE(decoded2->resumed);
  EXPECT_TRUE(decoded2->snapshot.empty());

  // A resumed reply carrying a snapshot is contradictory: malformed.
  SubscribeReply bad = fresh;
  bad.resumed = true;
  SymbolTable receiver3;
  Result<SubscribeReply> rejected =
      DecodeSubscribeReply(EncodeSubscribeReply(bad, sender), &receiver3);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
}

TEST(ServerCodecTest, PushDeltaRoundTripAndEmptyFrameRejected) {
  SymbolTable sender;
  PushDeltaFrame frame;
  frame.sub_id = 8;
  frame.version = 23;
  frame.inserts = {{sender.Intern("c0")}};
  frame.deletes = {{sender.Intern("c1")}, {sender.Intern("c2")}};
  SymbolTable receiver;
  Result<PushDeltaFrame> decoded =
      DecodePushDeltaFrame(EncodePushDeltaFrame(frame, sender), &receiver);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->sub_id, 8u);
  EXPECT_EQ(decoded->version, 23u);
  ASSERT_EQ(decoded->inserts.size(), 1u);
  ASSERT_EQ(decoded->deletes.size(), 2u);
  EXPECT_EQ(receiver.NameOf(decoded->inserts[0][0]), "c0");

  // The no-empty-frames contract, enforced at the codec: a frame with both
  // lists empty is a sender bug and must not decode.
  PushDeltaFrame empty;
  empty.sub_id = 8;
  empty.version = 24;
  SymbolTable receiver2;
  Result<PushDeltaFrame> rejected =
      DecodePushDeltaFrame(EncodePushDeltaFrame(empty, sender), &receiver2);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
}

TEST(ServerCodecTest, SubGapRoundTripAndUnknownReasonRejected) {
  for (sub::GapReason reason :
       {sub::GapReason::kOverflow, sub::GapReason::kBarrier,
        sub::GapReason::kResumeWindow, sub::GapReason::kShutdown}) {
    SubGapFrame frame;
    frame.sub_id = 2;
    frame.version = 7;
    frame.reason = reason;
    Result<SubGapFrame> decoded = DecodeSubGapFrame(EncodeSubGapFrame(frame));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->reason, reason);
  }
  SubGapFrame frame;
  std::string payload = EncodeSubGapFrame(frame);
  payload.back() = 4;  // one past kShutdown
  Result<SubGapFrame> rejected = DecodeSubGapFrame(payload);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
}

TEST(ServerCodecTest, HealthRequestExtensionIsBackwardCompatible) {
  // A default Health request is byte-identical to the v1 admission-only
  // payload, and the v1 payload decodes with want_subscriptions=false.
  HealthRequest plain;
  plain.admission = SampleAdmission();
  EXPECT_EQ(EncodeHealthRequest(plain),
            EncodeAdmissionOnly(SampleAdmission()));
  Result<HealthRequest> decoded =
      DecodeHealthRequest(EncodeAdmissionOnly(SampleAdmission()));
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE(decoded->want_subscriptions);

  HealthRequest extended;
  extended.admission = SampleAdmission();
  extended.want_subscriptions = true;
  Result<HealthRequest> decoded2 =
      DecodeHealthRequest(EncodeHealthRequest(extended));
  ASSERT_TRUE(decoded2.ok());
  EXPECT_TRUE(decoded2->want_subscriptions);

  // An unknown extension tag is malformed, not silently skipped.
  std::string payload = EncodeAdmissionOnly({});
  payload.push_back('\x07');
  payload.push_back('\x01');
  Result<HealthRequest> rejected = DecodeHealthRequest(payload);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
}

TEST(ServerCodecTest, HealthReplySubscriptionSectionRoundTrips) {
  HealthReply base;
  base.state = ServerState::kDegraded;
  base.version = 5;
  base.last_durable_seq = 3;
  base.queue_depth = 2;
  Result<HealthReply> plain = DecodeHealthReply(EncodeHealthReply(base));
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(plain->has_subscriptions);

  HealthReply extended = base;
  extended.has_subscriptions = true;
  extended.active_subscriptions = 4;
  extended.queued_deltas = 11;
  extended.gap_events = 1;
  Result<HealthReply> decoded =
      DecodeHealthReply(EncodeHealthReply(extended));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded->has_subscriptions);
  EXPECT_EQ(decoded->active_subscriptions, 4u);
  EXPECT_EQ(decoded->queued_deltas, 11u);
  EXPECT_EQ(decoded->gap_events, 1u);
  EXPECT_EQ(decoded->state, ServerState::kDegraded);

  // A truncated subscription section is malformed (all three fields or
  // none).
  std::string payload = EncodeHealthReply(extended);
  Result<HealthReply> torn =
      DecodeHealthReply(std::string_view(payload).substr(0, payload.size() - 8));
  ASSERT_FALSE(torn.ok());
  EXPECT_EQ(torn.status().code(), StatusCode::kInvalidArgument);
}

TEST(ServerCodecTest, HealthReplyReplicationBlockRoundTrips) {
  HealthReply reply;
  reply.state = ServerState::kServing;
  reply.version = 9;
  reply.queue_depth = 1;
  reply.has_replication = true;
  reply.applied_seq = 40;
  reply.primary_last_durable_seq = 45;
  reply.feed_bounded = true;
  Result<HealthReply> decoded = DecodeHealthReply(EncodeHealthReply(reply));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_FALSE(decoded->has_subscriptions);
  EXPECT_TRUE(decoded->has_replication);
  EXPECT_EQ(decoded->applied_seq, 40u);
  EXPECT_EQ(decoded->primary_last_durable_seq, 45u);
  EXPECT_TRUE(decoded->feed_bounded);

  // Both blocks together (a replica probed with want_subscriptions).
  reply.has_subscriptions = true;
  reply.active_subscriptions = 2;
  Result<HealthReply> both = DecodeHealthReply(EncodeHealthReply(reply));
  ASSERT_TRUE(both.ok()) << both.status().ToString();
  EXPECT_TRUE(both->has_subscriptions);
  EXPECT_TRUE(both->has_replication);
  EXPECT_EQ(both->active_subscriptions, 2u);
  EXPECT_EQ(both->applied_seq, 40u);
}

TEST(ServerCodecTest, HealthReplyRejectsDuplicateAndUnknownTags) {
  // Tags must be strictly increasing; hand-craft violations the encoder
  // cannot produce. Base header: state, version, last_durable_seq, depth.
  persist::ByteSink dup;
  dup.PutU8(0);
  dup.PutU64(1);
  dup.PutU64(1);
  dup.PutU32(0);
  for (int i = 0; i < 2; ++i) {  // replication block (tag 2) twice
    dup.PutU8(2);
    dup.PutU64(5);
    dup.PutU64(5);
    dup.PutU8(1);
  }
  Result<HealthReply> duplicated = DecodeHealthReply(dup.bytes());
  ASSERT_FALSE(duplicated.ok());
  EXPECT_EQ(duplicated.status().code(), StatusCode::kInvalidArgument);

  persist::ByteSink unknown;
  unknown.PutU8(0);
  unknown.PutU64(1);
  unknown.PutU64(1);
  unknown.PutU32(0);
  unknown.PutU8(7);  // no such extension
  Result<HealthReply> rejected = DecodeHealthReply(unknown.bytes());
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
}

TEST(ServerCodecTest, HealthReplySubscriptionSectionKeepsV1ByteLayout) {
  // The subscription section predates the tag scheme and is wire-frozen as
  // an untagged trailing block: a client from before replication existed
  // must keep decoding a current primary's reply, and vice versa. Hand-build
  // the pre-replication bytes and require the encoder to match them exactly.
  HealthReply reply;
  reply.state = ServerState::kServing;
  reply.version = 12;
  reply.last_durable_seq = 9;
  reply.queue_depth = 3;
  reply.has_subscriptions = true;
  reply.active_subscriptions = 4;
  reply.queued_deltas = 11;
  reply.gap_events = 1;

  persist::ByteSink v1;
  v1.PutU8(static_cast<uint8_t>(ServerState::kServing));
  v1.PutU64(12);
  v1.PutU64(9);
  v1.PutU32(3);
  v1.PutU32(4);   // untagged: no tag byte before the section
  v1.PutU64(11);
  v1.PutU64(1);
  EXPECT_EQ(EncodeHealthReply(reply), v1.bytes());

  Result<HealthReply> decoded = DecodeHealthReply(v1.bytes());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded->has_subscriptions);
  EXPECT_FALSE(decoded->has_replication);
  EXPECT_EQ(decoded->active_subscriptions, 4u);
  EXPECT_EQ(decoded->queued_deltas, 11u);
  EXPECT_EQ(decoded->gap_events, 1u);
}

// ---- WAL feed payloads (DESIGN.md §12) --------------------------------------

TEST(ServerCodecTest, QueryRequestStalenessExtensionRoundTrips) {
  SymbolTable sender;
  QueryRequest request;
  request.admission = SampleAdmission();
  request.patterns.push_back(MakeAtom(&sender, "P", {"c0"}));

  // Unset bound: the payload is byte-identical to v1 (no trailing
  // extension), and decodes back to an unset bound.
  const std::string v1 = EncodeQueryRequest(request, sender);
  SymbolTable receiver;
  Result<QueryRequest> plain = DecodeQueryRequest(v1, &receiver);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  EXPECT_FALSE(plain->max_staleness.has_value());

  request.max_staleness = 17;
  const std::string v2 = EncodeQueryRequest(request, sender);
  EXPECT_GT(v2.size(), v1.size());
  EXPECT_EQ(v2.compare(0, v1.size(), v1), 0);  // extension is strictly trailing
  SymbolTable receiver2;
  Result<QueryRequest> bounded = DecodeQueryRequest(v2, &receiver2);
  ASSERT_TRUE(bounded.ok()) << bounded.status().ToString();
  ASSERT_TRUE(bounded->max_staleness.has_value());
  EXPECT_EQ(*bounded->max_staleness, 17u);

  // A zero bound ("serve only when fully caught up") is a real value, not
  // an absent one.
  request.max_staleness = 0;
  SymbolTable receiver3;
  Result<QueryRequest> zero =
      DecodeQueryRequest(EncodeQueryRequest(request, sender), &receiver3);
  ASSERT_TRUE(zero.ok());
  ASSERT_TRUE(zero->max_staleness.has_value());
  EXPECT_EQ(*zero->max_staleness, 0u);
}

TEST(ServerCodecTest, QueryReplyReplicaStatusSectionRoundTrips) {
  SymbolTable sender;
  QueryReply reply;
  reply.version = 6;
  reply.answers = {{{sender.Intern("c0")}}};

  SymbolTable receiver;
  Result<QueryReply> plain =
      DecodeQueryReply(EncodeQueryReply(reply, sender), &receiver);
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(plain->has_replica_status);

  reply.has_replica_status = true;
  reply.applied_seq = 30;
  reply.primary_last_durable_seq = 33;
  reply.bounded = true;
  SymbolTable receiver2;
  Result<QueryReply> decoded =
      DecodeQueryReply(EncodeQueryReply(reply, sender), &receiver2);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded->has_replica_status);
  EXPECT_EQ(decoded->applied_seq, 30u);
  EXPECT_EQ(decoded->primary_last_durable_seq, 33u);
  EXPECT_TRUE(decoded->bounded);

  // A torn staleness section (not exactly 17 trailing bytes) is malformed.
  std::string payload = EncodeQueryReply(reply, sender);
  SymbolTable receiver3;
  Result<QueryReply> torn = DecodeQueryReply(
      std::string_view(payload).substr(0, payload.size() - 3), &receiver3);
  ASSERT_FALSE(torn.ok());
  EXPECT_EQ(torn.status().code(), StatusCode::kInvalidArgument);
}

TEST(ServerCodecTest, WalFetchRequestRoundTrips) {
  WalFetchRequest request;
  request.admission = SampleAdmission();
  request.from_seq = 41;
  request.max_records = 128;
  request.max_bytes = 65536;
  Result<WalFetchRequest> decoded =
      DecodeWalFetchRequest(EncodeWalFetchRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectAdmissionEq(request.admission, decoded->admission);
  EXPECT_EQ(decoded->from_seq, 41u);
  EXPECT_EQ(decoded->max_records, 128u);
  EXPECT_EQ(decoded->max_bytes, 65536u);
}

TEST(ServerCodecTest, WalRecordsReplyRoundTripsAndChecksumCatchesDamage) {
  WalRecordsReply reply;
  reply.primary_last_durable_seq = 12;
  for (std::string_view payload :
       {std::string_view("record-one"), std::string_view("r2"),
        std::string_view("")}) {
    WalRecordsReply::Record record;
    record.payload = std::string(payload);
    record.crc = 0xDEADBEEF;  // opaque to the codec; carried, not checked
    reply.records.push_back(std::move(record));
  }
  const std::string wire = EncodeWalRecordsReply(reply);
  Result<WalRecordsReply> decoded = DecodeWalRecordsReply(wire);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->primary_last_durable_seq, 12u);
  ASSERT_EQ(decoded->records.size(), 3u);
  EXPECT_EQ(decoded->records[0].payload, "record-one");
  EXPECT_EQ(decoded->records[0].crc, 0xDEADBEEFu);
  EXPECT_EQ(decoded->records[2].payload, "");

  // The trailing frame checksum makes EVERY single-byte flip detectable —
  // including flips the structural parse would tolerate (record bytes, the
  // horizon, the per-record CRCs themselves).
  for (size_t offset = 0; offset < wire.size(); ++offset) {
    for (uint8_t mask : {uint8_t{0x01}, uint8_t{0x80}}) {
      std::string damaged = wire;
      damaged[offset] = static_cast<char>(damaged[offset] ^ mask);
      Result<WalRecordsReply> refused = DecodeWalRecordsReply(damaged);
      ASSERT_FALSE(refused.ok())
          << "flip at offset " << offset << " mask " << int{mask} << " decoded";
      EXPECT_EQ(refused.status().code(), StatusCode::kInvalidArgument);
    }
  }
  // And every truncation, including ones that leave a parseable structure.
  for (size_t len = 0; len < wire.size(); ++len) {
    Result<WalRecordsReply> refused =
        DecodeWalRecordsReply(std::string_view(wire).substr(0, len));
    ASSERT_FALSE(refused.ok()) << "prefix of " << len << " decoded";
    EXPECT_EQ(refused.status().code(), StatusCode::kInvalidArgument);
  }
}

// ---- Framing ----------------------------------------------------------------

TEST(ServerCodecTest, FrameRoundTripAndSplicedWalk) {
  std::string bytes;
  AppendFrame(FrameType::kQuery, 7, "payload-a", &bytes);
  AppendFrame(FrameType::kStatsOk, 8, "", &bytes);
  AppendFrame(FrameType::kError, 9, "payload-c", &bytes);

  size_t consumed = 0;
  Result<FrameView> first = DecodeFrame(bytes, &consumed);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->type, FrameType::kQuery);
  EXPECT_EQ(first->request_id, 7u);
  EXPECT_EQ(first->payload, "payload-a");

  std::string_view rest = std::string_view(bytes).substr(consumed);
  Result<FrameView> second = DecodeFrame(rest, &consumed);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->type, FrameType::kStatsOk);
  EXPECT_EQ(second->request_id, 8u);
  EXPECT_TRUE(second->payload.empty());

  rest = rest.substr(consumed);
  Result<FrameView> third = DecodeFrame(rest, &consumed);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third->payload, "payload-c");
  EXPECT_EQ(consumed, rest.size());

  // A splice is NOT a single frame: trailing bytes are a typed error, so a
  // second message cannot ride along unnoticed.
  Result<FrameView> spliced = DecodeSingleFrame(bytes);
  EXPECT_FALSE(spliced.ok());
  EXPECT_EQ(spliced.status().code(), StatusCode::kInvalidArgument);
}

TEST(ServerCodecTest, TruncatedFrameAtEveryOffsetIsTypedError) {
  std::string bytes;
  AppendFrame(FrameType::kApply, 0xDEADBEEFCAFEull, "some payload", &bytes);
  for (size_t len = 0; len < bytes.size(); ++len) {
    Result<FrameView> decoded = DecodeSingleFrame(bytes.substr(0, len));
    ASSERT_FALSE(decoded.ok()) << "prefix of " << len << " bytes decoded";
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  }
  ASSERT_TRUE(DecodeSingleFrame(bytes).ok());
}

TEST(ServerCodecTest, OversizedLengthPrefixRejectedBeforeAllocation) {
  persist::ByteSink sink;
  sink.PutU32(kMaxFrameBytes + 1);
  sink.PutU8(static_cast<uint8_t>(FrameType::kQuery));
  sink.PutU64(1);
  size_t consumed = 0;
  Result<FrameView> decoded = DecodeFrame(sink.bytes(), &consumed);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  // 0xFFFFFFFF: the worst a flipped prefix can demand. Rejected up front —
  // under ASan this proves no 4GB buffer is attempted.
  persist::ByteSink worst;
  worst.PutU32(0xFFFFFFFFu);
  worst.PutU8(static_cast<uint8_t>(FrameType::kQuery));
  worst.PutU64(1);
  EXPECT_FALSE(DecodeFrame(worst.bytes(), &consumed).ok());
}

TEST(ServerCodecTest, UnknownFrameTypeIsTypedError) {
  // 8/9 and 72..75 became Subscribe/Unsubscribe and the push frames in
  // DESIGN.md §11; 12/13 and 76/77 became the WAL-feed frames in §12. The
  // probe list uses the bytes just past them.
  for (uint8_t type : {0, 14, 63, 64, 78, 126, 200, 255}) {
    persist::ByteSink sink;
    sink.PutU32(9);
    sink.PutU8(type);
    sink.PutU64(1);
    size_t consumed = 0;
    Result<FrameView> decoded = DecodeFrame(sink.bytes(), &consumed);
    ASSERT_FALSE(decoded.ok()) << "type " << int{type} << " decoded";
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  }
}

// ---- Adversarial payload bytes ----------------------------------------------

/// Every payload decoder behind one uniform call, so the corruption sweeps
/// below exercise them all.
struct NamedDecoder {
  const char* name;
  std::string (*encode)(SymbolTable* symbols);
  Status (*decode)(std::string_view payload);
};

const NamedDecoder kDecoders[] = {
    {"QueryRequest",
     [](SymbolTable* s) {
       QueryRequest r;
       r.admission = SampleAdmission();
       r.patterns = {MakeAtom(s, "P", {"c0", "c1"}),
                     Atom(s->Intern("Q"),
                          {Term::MakeVariable(s->InternVar("x"))})};
       return EncodeQueryRequest(r, *s);
     },
     [](std::string_view p) {
       SymbolTable t;
       return DecodeQueryRequest(p, &t).status();
     }},
    {"ApplyRequest",
     [](SymbolTable* s) {
       ApplyRequest r;
       r.transaction = SampleTransaction(s);
       return EncodeApplyRequest(r, *s);
     },
     [](std::string_view p) {
       SymbolTable t;
       return DecodeApplyRequest(p, &t).status();
     }},
    {"ProcessRequest",
     [](SymbolTable* s) {
       ProcessRequest r;
       r.transaction = SampleTransaction(s);
       return EncodeProcessRequest(r, *s);
     },
     [](std::string_view p) {
       SymbolTable t;
       return DecodeProcessRequest(p, &t).status();
     }},
    {"TranslateRequest",
     [](SymbolTable* s) {
       TranslateRequest r;
       RequestedEvent e;
       e.predicate = s->Intern("View");
       e.args = {Term::MakeConstant(s->Intern("c0"))};
       r.request.events = {e};
       return EncodeTranslateRequest(r, *s);
     },
     [](std::string_view p) {
       SymbolTable t;
       return DecodeTranslateRequest(p, &t).status();
     }},
    {"AdmissionOnly",
     [](SymbolTable*) { return EncodeAdmissionOnly(SampleAdmission()); },
     [](std::string_view p) { return DecodeAdmissionOnly(p).status(); }},
    {"QueryReply",
     [](SymbolTable* s) {
       QueryReply r;
       r.version = 3;
       r.answers = {{{s->Intern("c0")}}, {}};
       return EncodeQueryReply(r, *s);
     },
     [](std::string_view p) {
       SymbolTable t;
       return DecodeQueryReply(p, &t).status();
     }},
    {"ProcessReply",
     [](SymbolTable*) {
       return EncodeProcessReply({5, false, "detail"});
     },
     [](std::string_view p) { return DecodeProcessReply(p).status(); }},
    {"TranslateReply",
     [](SymbolTable* s) {
       TranslateReply r;
       r.alternatives = {SampleTransaction(s)};
       return EncodeTranslateReply(r, *s);
     },
     [](std::string_view p) {
       SymbolTable t;
       return DecodeTranslateReply(p, &t).status();
     }},
    {"ErrorReply",
     [](SymbolTable*) {
       return EncodeErrorReply({StatusCode::kDeadlineExceeded, "late"});
     },
     [](std::string_view p) { return DecodeErrorReply(p).status(); }},
    {"SubscribeRequest",
     [](SymbolTable* s) {
       SubscribeRequest r;
       r.admission = SampleAdmission();
       r.pattern = Atom(s->Intern("Emp"),
                        {Term::MakeConstant(s->Intern("dept9")),
                         Term::MakeVariable(s->InternVar("x"))});
       r.policy = sub::OverflowPolicy::kCoalesce;
       r.max_queued = 32;
       r.resume_from_version = 41;
       return EncodeSubscribeRequest(r, *s);
     },
     [](std::string_view p) {
       SymbolTable t;
       return DecodeSubscribeRequest(p, &t).status();
     }},
    {"UnsubscribeRequest",
     [](SymbolTable*) {
       UnsubscribeRequest r;
       r.admission = SampleAdmission();
       r.sub_id = 7;
       return EncodeUnsubscribeRequest(r);
     },
     [](std::string_view p) { return DecodeUnsubscribeRequest(p).status(); }},
    {"SubscribeReply",
     [](SymbolTable* s) {
       SubscribeReply r;
       r.sub_id = 3;
       r.version = 12;
       r.snapshot = {{s->Intern("c0"), s->Intern("c1")}, {s->Intern("c2")}};
       return EncodeSubscribeReply(r, *s);
     },
     [](std::string_view p) {
       SymbolTable t;
       return DecodeSubscribeReply(p, &t).status();
     }},
    {"UnsubscribeReply",
     [](SymbolTable*) { return EncodeUnsubscribeReply({true}); },
     [](std::string_view p) { return DecodeUnsubscribeReply(p).status(); }},
    {"PushDeltaFrame",
     [](SymbolTable* s) {
       PushDeltaFrame f;
       f.sub_id = 3;
       f.version = 13;
       f.inserts = {{s->Intern("c0")}};
       f.deletes = {{s->Intern("c1")}};
       return EncodePushDeltaFrame(f, *s);
     },
     [](std::string_view p) {
       SymbolTable t;
       return DecodePushDeltaFrame(p, &t).status();
     }},
    {"SubGapFrame",
     [](SymbolTable*) {
       SubGapFrame f;
       f.sub_id = 3;
       f.version = 14;
       f.reason = sub::GapReason::kOverflow;
       return EncodeSubGapFrame(f);
     },
     [](std::string_view p) { return DecodeSubGapFrame(p).status(); }},
    {"WalFetchRequest",
     [](SymbolTable*) {
       WalFetchRequest r;
       r.admission = SampleAdmission();
       r.from_seq = 9;
       r.max_records = 64;
       r.max_bytes = 4096;
       return EncodeWalFetchRequest(r);
     },
     [](std::string_view p) { return DecodeWalFetchRequest(p).status(); }},
    {"WalRecordsReply",
     [](SymbolTable*) {
       WalRecordsReply r;
       r.primary_last_durable_seq = 4;
       r.records.push_back({0x12345678u, "wal-record-bytes"});
       return EncodeWalRecordsReply(r);
     },
     [](std::string_view p) { return DecodeWalRecordsReply(p).status(); }},
};

TEST(ServerCodecTest, TruncatedPayloadAtEveryOffsetNeverCrashes) {
  for (const NamedDecoder& decoder : kDecoders) {
    SCOPED_TRACE(decoder.name);
    SymbolTable symbols;
    std::string payload = decoder.encode(&symbols);
    ASSERT_TRUE(decoder.decode(payload).ok());
    for (size_t len = 0; len < payload.size(); ++len) {
      Status status = decoder.decode(payload.substr(0, len));
      // Dropping trailing bytes must fail: every decoder drains its whole
      // payload, and no payload here has a valid strict prefix.
      EXPECT_FALSE(status.ok())
          << "prefix of " << len << "/" << payload.size() << " decoded";
    }
  }
}

TEST(ServerCodecTest, BitFlippedPayloadAtEveryOffsetNeverCrashes) {
  for (const NamedDecoder& decoder : kDecoders) {
    SCOPED_TRACE(decoder.name);
    SymbolTable symbols;
    const std::string payload = decoder.encode(&symbols);
    for (size_t offset = 0; offset < payload.size(); ++offset) {
      for (uint8_t mask : {uint8_t{0x01}, uint8_t{0x80}, uint8_t{0xFF}}) {
        std::string damaged = payload;
        damaged[offset] = static_cast<char>(damaged[offset] ^ mask);
        // A flip may still decode (e.g. inside a name) — that is fine; the
        // contract is no crash, no overread, no unbounded allocation, and
        // errors are typed. ASan/UBSan turn violations into failures.
        Status status = decoder.decode(damaged);
        if (!status.ok()) {
          EXPECT_EQ(status.code(), StatusCode::kInvalidArgument)
              << "offset " << offset << " mask " << int{mask} << ": "
              << status.ToString();
        }
      }
    }
  }
}

TEST(ServerCodecTest, BitFlippedFrameHeaderAtEveryOffsetNeverCrashes) {
  std::string bytes;
  AppendFrame(FrameType::kProcess, 1234, "payload-bytes", &bytes);
  for (size_t offset = 0; offset < bytes.size(); ++offset) {
    for (uint8_t mask : {uint8_t{0x01}, uint8_t{0x80}, uint8_t{0xFF}}) {
      std::string damaged = bytes;
      damaged[offset] = static_cast<char>(damaged[offset] ^ mask);
      size_t consumed = 0;
      Result<FrameView> decoded = DecodeFrame(damaged, &consumed);
      if (!decoded.ok()) {
        EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
      }
    }
  }
}

// ---- The persist count-cap regression (the pre-existing crash vector) -------

TEST(ServerCodecTest, HugeTupleCountFailsFastInsteadOfAllocating) {
  // Before the fix, DecodeTuple reserved `count * sizeof(SymbolId)` bytes
  // off an unvalidated u32 — a flipped count field demanded ~16GB. Now any
  // count the remaining bytes cannot back is kCorruption before reserve.
  persist::ByteSink sink;
  sink.PutU32(0xFFFFFFFFu);
  persist::ByteSource source(sink.bytes());
  SymbolTable symbols;
  Result<Tuple> decoded = persist::DecodeTuple(&source, &symbols);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

// ---- Frame I/O over the loopback transport ----------------------------------

TEST(ServerCodecTest, LoopbackFrameRoundTripAndTornStream) {
  LoopbackNetwork network;
  auto listener = network.TakeListener();
  Result<std::unique_ptr<Connection>> client = network.Connect();
  ASSERT_TRUE(client.ok());
  Result<std::unique_ptr<Connection>> server = listener->Accept();
  ASSERT_TRUE(server.ok());

  ASSERT_TRUE(
      WriteFrame(client->get(), FrameType::kStats, 5, "abc").ok());
  Result<std::optional<OwnedFrame>> frame = ReadFrame(server->get());
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  ASSERT_TRUE(frame->has_value());
  EXPECT_EQ((*frame)->type, FrameType::kStats);
  EXPECT_EQ((*frame)->request_id, 5u);
  EXPECT_EQ((*frame)->payload, "abc");

  // A stream cut mid-frame is a typed error, not EOF: the header promised
  // bytes that never arrived.
  std::string partial;
  AppendFrame(FrameType::kQuery, 6, "never-finished", &partial);
  ASSERT_TRUE(
      (*client)->Write(partial.data(), partial.size() - 4).ok());
  (*client)->Close();
  Result<std::optional<OwnedFrame>> torn = ReadFrame(server->get());
  ASSERT_FALSE(torn.ok());
  EXPECT_EQ(torn.status().code(), StatusCode::kInvalidArgument);
}

TEST(ServerCodecTest, LoopbackCleanCloseIsEof) {
  LoopbackNetwork network;
  auto listener = network.TakeListener();
  Result<std::unique_ptr<Connection>> client = network.Connect();
  ASSERT_TRUE(client.ok());
  Result<std::unique_ptr<Connection>> server = listener->Accept();
  ASSERT_TRUE(server.ok());
  (*client)->Close();
  Result<std::optional<OwnedFrame>> eof = ReadFrame(server->get());
  ASSERT_TRUE(eof.ok()) << eof.status().ToString();
  EXPECT_FALSE(eof->has_value());
}

TEST(ServerCodecTest, WriteFrameRejectsOversizedPayloadTyped) {
  // The sender-side half of the frame cap: a payload the peer's ReadFrame
  // would reject as malformed is refused with a typed status before any
  // byte hits the wire, and the connection stays usable.
  LoopbackNetwork network;
  auto listener = network.TakeListener();
  Result<std::unique_ptr<Connection>> client = network.Connect();
  ASSERT_TRUE(client.ok());
  Result<std::unique_ptr<Connection>> server = listener->Accept();
  ASSERT_TRUE(server.ok());

  std::string oversized(size_t{kMaxFramePayloadBytes} + 1, 'x');
  Status refused =
      WriteFrame(client->get(), FrameType::kQueryOk, 1, oversized);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.code(), StatusCode::kResourceExhausted)
      << refused.ToString();

  // Nothing was written: the next well-formed frame is the first the peer
  // sees, not a torn prefix of the oversized one.
  ASSERT_TRUE(WriteFrame(client->get(), FrameType::kStats, 2, "ok").ok());
  Result<std::optional<OwnedFrame>> frame = ReadFrame(server->get());
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  ASSERT_TRUE(frame->has_value());
  EXPECT_EQ((*frame)->request_id, 2u);
  EXPECT_EQ((*frame)->payload, "ok");
}

TEST(ServerCodecTest, FrameAtExactPayloadCapRoundTrips) {
  // kMaxFramePayloadBytes is the cap, not past it: a frame carrying exactly
  // that much encodes, stays within kMaxFrameBytes, and decodes.
  std::string payload(kMaxFramePayloadBytes, 'p');
  std::string bytes;
  AppendFrame(FrameType::kQueryOk, 3, payload, &bytes);
  EXPECT_EQ(bytes.size(), size_t{4} + kMaxFrameBytes);
  Result<FrameView> decoded = DecodeSingleFrame(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->payload.size(), payload.size());
}

TEST(ServerCodecTest, LoopbackOversizedFrameRejectedBeforeBuffering) {
  LoopbackNetwork network;
  auto listener = network.TakeListener();
  Result<std::unique_ptr<Connection>> client = network.Connect();
  ASSERT_TRUE(client.ok());
  Result<std::unique_ptr<Connection>> server = listener->Accept();
  ASSERT_TRUE(server.ok());
  persist::ByteSink sink;
  sink.PutU32(0xFFFFFFFFu);  // a body the reader must never try to buffer
  ASSERT_TRUE((*client)->Write(sink.bytes().data(), 4).ok());
  Result<std::optional<OwnedFrame>> read =
      ReadFrame(server->get(), /*max_frame_bytes=*/1024);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace deddb::server
