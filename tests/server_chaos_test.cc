// The fault-tolerance proof (DESIGN.md §10): the randomized protocol
// history suite re-run over a hostile network. 100 seeded runs, each
// starting a Server behind a server::FaultyNetwork that deterministically
// resets reads, truncates writes mid-frame, and delays operations on both
// sides of every connection, driven by 2-4 retrying clients with
// exactly-once idempotency tokens. Clients retry every failed operation
// until the server gives a definitive answer (an acknowledgment or a typed
// validity rejection), re-dialing through the same faulty network.
//
// The oracle is the same serial acknowledged-prefix check as
// server_history_test (tests/history_harness.h) — and it is only sound here
// *because* of the tokens: a write is either acked (committed exactly once,
// at the acked version) or definitively rejected (never applied), so
// replaying acked writes in version order must reproduce every read. A
// double-applied retry surfaces as "acked insert of a present fact"; a
// lost-but-acked write as a read mismatch. The suite also asserts the retry
// machinery actually engaged: across a shard, faults were injected, clients
// retried, and at least one retried committed write was answered from the
// server's dedup table.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/deductive_database.h"
#include "history_harness.h"
#include "server/chaos.h"
#include "server/client.h"
#include "server/server.h"
#include "server/transport.h"
#include "util/rng.h"
#include "util/strings.h"

namespace deddb::server {
namespace {

namespace hh = harness;

struct ClientLog {
  std::vector<hh::AckedWrite> writes;
  std::vector<hh::AckedRead> reads;
  std::vector<std::string> errors;
  uint64_t retries = 0;
  uint64_t dials = 0;
};

/// One retrying client over the faulty network. Every operation is retried
/// until definitive: the generous attempt cap exists only so a pathological
/// seed fails loudly instead of spinning.
void ClientLoop(LoopbackNetwork* network, FaultyNetwork* chaos,
                bool via_processor, uint64_t client_id, uint64_t seed,
                ClientLog* log) {
  Rng rng(seed);
  Client client(hh::DialThrough(network, chaos),
                hh::RetryOptions(client_id, seed));

  hh::FactSet guess;
  std::string error;

  for (int op = 0; op < 25; ++op) {
    if (rng.NextChance(1, 2)) {
      std::vector<Atom> patterns = {
          client.MakeAtom("Q", {client.Variable("x")}),
          client.MakeAtom("R", {client.Variable("x")})};
      Result<QueryReply> reply = client.Query(std::move(patterns));
      if (!reply.ok()) {
        log->errors.push_back(
            StrCat("query: ", reply.status().ToString()));
        break;
      }
      hh::AckedRead read;
      if (!hh::DecodeBaseRead(&client, *reply, &guess, &read, &error)) {
        log->errors.push_back(error);
        break;
      }
      log->reads.push_back(std::move(read));
      continue;
    }

    Transaction txn;
    hh::AckedWrite write;
    if (!hh::BuildGuessedWrite(&rng, &client, guess, 3, &txn, &write,
                               &error)) {
      log->errors.push_back(error);
      break;
    }
    Result<uint64_t> version = hh::CommitWrite(&client, txn, via_processor);
    if (version.ok()) {
      write.version = *version;
      hh::FoldWriteIntoGuess(write, &guess);
      log->writes.push_back(std::move(write));
    } else if (!hh::IsDefinitiveRejection(version.status())) {
      // Only a definitive validity/integrity rejection is acceptable: the
      // retry loop must have converted every transient failure into an ack
      // or such a rejection. Anything else means retries gave up with the
      // outcome unknown — exactly what this suite exists to rule out.
      log->errors.push_back(
          StrCat("write gave up: ", version.status().ToString()));
      break;
    }
  }
  log->retries = client.retries();
  log->dials = client.dials();
  client.Close();
}

/// Totals accumulated across a shard so the "machinery engaged" assertions
/// do not depend on any single seed's luck.
struct ShardTotals {
  uint64_t faults = 0;
  uint64_t retries = 0;
  uint64_t dedup_hits = 0;
};

/// Extracts `"key":<number>` from the server's stats JSON.
uint64_t JsonCounter(const std::string& json, const std::string& key) {
  const std::string needle = StrCat("\"", key, "\":");
  size_t at = json.find(needle);
  if (at == std::string::npos) return 0;
  return std::strtoull(json.c_str() + at + needle.size(), nullptr, 10);
}

void RunSeed(uint64_t seed, ShardTotals* totals) {
  SCOPED_TRACE(StrCat("seed=", seed));
  Rng rng(seed * 0x9E3779B97F4A7C15ull + 17);
  const bool via_processor = rng.NextChance(1, 2);
  const bool persistent = rng.NextChance(1, 2);

  // Half the seeds run durably, so tokened commit records travel through
  // the WAL (and its group-commit pipeline) under concurrent retries.
  hh::SeededDb seeded;
  hh::OpenSeededDb("srvchaos", persistent, &seeded);
  if (::testing::Test::HasFatalFailure()) return;
  DeductiveDatabase* db = seeded.db.get();
  hh::DeclareQRSchema(db, /*with_view=*/false, /*materialize=*/false);
  if (persistent) {
    ASSERT_TRUE(db->Checkpoint().ok());
  }
  const uint64_t base_version = db->version();

  FaultyNetwork::Options faults;
  faults.seed = seed * 31 + 5;
  faults.reset_read_per_mille = 15;
  faults.truncate_write_per_mille = 15;
  faults.delay_per_mille = 40;
  faults.max_delay_us = 300;
  FaultyNetwork chaos(faults);

  LoopbackNetwork network;
  Server server(db);
  // Both sides are faulty: the server accepts through the wrapped listener,
  // so its replies die mid-frame too, not just the clients' requests.
  ASSERT_TRUE(server.Serve(chaos.WrapListener(network.TakeListener())).ok());

  const size_t num_clients = 2 + seed % 3;
  std::vector<ClientLog> logs(num_clients);
  std::vector<std::thread> clients;
  clients.reserve(num_clients);
  for (size_t i = 0; i < num_clients; ++i) {
    clients.emplace_back(ClientLoop, &network, &chaos, via_processor,
                         /*client_id=*/i + 1, seed * 1000 + i, &logs[i]);
  }
  for (std::thread& thread : clients) thread.join();

  const std::string stats = server.StatsJson();
  server.Stop();

  for (size_t i = 0; i < num_clients; ++i) {
    SCOPED_TRACE(StrCat("client=", i));
    ASSERT_TRUE(logs[i].errors.empty()) << logs[i].errors.front();
    totals->retries += logs[i].retries;
  }
  totals->faults +=
      chaos.resets_injected() + chaos.truncations_injected();
  totals->dedup_hits += JsonCounter(stats, "dedup_hits");

  // The serial oracle (identical to server_history_test): a replay
  // divergence here means a retry applied twice.
  std::vector<const hh::AckedWrite*> acked;
  for (const ClientLog& log : logs) {
    for (const hh::AckedWrite& write : log.writes) acked.push_back(&write);
  }
  hh::AckedPrefixOracle oracle;
  oracle.Build(std::move(acked), base_version, "a retry applied twice");
  if (::testing::Test::HasFatalFailure()) return;

  for (size_t i = 0; i < num_clients; ++i) {
    SCOPED_TRACE(StrCat("client=", i));
    for (const hh::AckedRead& read : logs[i].reads) {
      oracle.ExpectReadMatches(read, /*check_derived=*/false);
    }
  }

  ASSERT_EQ(db->active_sessions(), 0u);

  hh::CloseSeededDb(&seeded);
}

class ServerChaosTest : public ::testing::TestWithParam<int> {};

TEST_P(ServerChaosTest, EveryAckedWriteAppliesExactlyOnceUnderFaults) {
  // 10 seeds per shard x 10 shards = the 100-seed suite. The
  // machinery-engaged assertions hold per shard: with ~3% fault rate per
  // transport call and hundreds of operations per seed, every shard injects
  // faults, forces retries, and exercises the dedup path.
  const int shard = GetParam();
  ShardTotals totals;
  for (int i = 0; i < 10; ++i) {
    RunSeed(static_cast<uint64_t>(shard * 10 + i), &totals);
    if (::testing::Test::HasFatalFailure()) return;
  }
  EXPECT_GT(totals.faults, 0u) << "the chaos transport injected nothing";
  EXPECT_GT(totals.retries, 0u) << "no client ever retried";
  EXPECT_GT(totals.dedup_hits, 0u)
      << "no retried committed write was answered from the dedup table";
}

INSTANTIATE_TEST_SUITE_P(Matrix, ServerChaosTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace deddb::server
