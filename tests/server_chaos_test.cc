// The fault-tolerance proof (DESIGN.md §10): the randomized protocol
// history suite re-run over a hostile network. 100 seeded runs, each
// starting a Server behind a server::FaultyNetwork that deterministically
// resets reads, truncates writes mid-frame, and delays operations on both
// sides of every connection, driven by 2-4 retrying clients with
// exactly-once idempotency tokens. Clients retry every failed operation
// until the server gives a definitive answer (an acknowledgment or a typed
// validity rejection), re-dialing through the same faulty network.
//
// The oracle is the same serial acknowledged-prefix check as
// server_history_test — and it is only sound here *because* of the tokens:
// a write is either acked (committed exactly once, at the acked version) or
// definitively rejected (never applied), so replaying acked writes in
// version order must reproduce every read. A double-applied retry surfaces
// as "acked insert of a present fact"; a lost-but-acked write as a read
// mismatch. The suite also asserts the retry machinery actually engaged:
// across a shard, faults were injected, clients retried, and at least one
// retried committed write was answered from the server's dedup table.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "core/deductive_database.h"
#include "server/chaos.h"
#include "server/client.h"
#include "server/server.h"
#include "server/transport.h"
#include "util/rng.h"
#include "util/strings.h"

namespace deddb::server {
namespace {

constexpr const char* kConstants[] = {"c0", "c1", "c2", "c3", "c4", "c5"};
constexpr const char* kBasePreds[] = {"Q", "R"};

std::string ImageOf(const std::set<std::pair<size_t, size_t>>& facts) {
  std::vector<std::string> rendered;
  for (const auto& [p, c] : facts) {
    rendered.push_back(StrCat(kBasePreds[p], "(", kConstants[c], ")"));
  }
  std::sort(rendered.begin(), rendered.end());
  return Join(rendered, ";");
}

void DeclareSchema(DeductiveDatabase* db) {
  ASSERT_TRUE(db->DeclareBase("Q", 1).ok());
  ASSERT_TRUE(db->DeclareBase("R", 1).ok());
}

struct AckedWrite {
  uint64_t version = 0;
  std::vector<std::tuple<size_t, size_t, bool>> events;
};

struct AckedRead {
  uint64_t version = 0;
  std::string base_image;
};

struct ClientLog {
  std::vector<AckedWrite> writes;
  std::vector<AckedRead> reads;
  std::vector<std::string> errors;
  uint64_t retries = 0;
  uint64_t dials = 0;
};

/// One retrying client over the faulty network. Every operation is retried
/// until definitive: the generous attempt cap exists only so a pathological
/// seed fails loudly instead of spinning.
void ClientLoop(LoopbackNetwork* network, FaultyNetwork* chaos,
                bool via_processor, uint64_t client_id, uint64_t seed,
                ClientLog* log) {
  Rng rng(seed);
  ClientOptions options;
  options.client_id = client_id;
  options.max_attempts = 200;
  options.backoff.base = std::chrono::microseconds(50);
  options.backoff.cap = std::chrono::microseconds(2000);
  options.backoff.seed = seed;
  Client client(
      [network, chaos]() -> Result<std::unique_ptr<Connection>> {
        Result<std::unique_ptr<Connection>> conn = network->Connect();
        if (!conn.ok()) return conn.status();
        return chaos->Wrap(std::move(*conn));
      },
      options);

  std::set<std::pair<size_t, size_t>> guess;

  for (int op = 0; op < 25; ++op) {
    if (rng.NextChance(1, 2)) {
      std::vector<Atom> patterns = {
          client.MakeAtom("Q", {client.Variable("x")}),
          client.MakeAtom("R", {client.Variable("x")})};
      Result<QueryReply> reply = client.Query(std::move(patterns));
      if (!reply.ok()) {
        log->errors.push_back(
            StrCat("query: ", reply.status().ToString()));
        break;
      }
      AckedRead read;
      read.version = reply->version;
      std::vector<std::string> base;
      guess.clear();
      for (size_t p = 0; p < 2; ++p) {
        for (const Tuple& t : reply->answers[p]) {
          const std::string& name = client.symbols().NameOf(t[0]);
          base.push_back(StrCat(kBasePreds[p], "(", name, ")"));
          for (size_t c = 0; c < 6; ++c) {
            if (name == kConstants[c]) guess.insert({p, c});
          }
        }
      }
      std::sort(base.begin(), base.end());
      read.base_image = Join(base, ";");
      log->reads.push_back(std::move(read));
      continue;
    }

    Transaction txn;
    AckedWrite write;
    std::set<std::pair<size_t, size_t>> touched;
    const size_t num_events = 1 + rng.NextBelow(3);
    for (size_t e = 0; e < num_events; ++e) {
      const size_t p = rng.NextBelow(2);
      const size_t c = rng.NextBelow(6);
      if (!touched.insert({p, c}).second) continue;
      Atom fact = client.GroundAtom(kBasePreds[p], {kConstants[c]});
      const bool present = guess.count({p, c}) > 0;
      Status added = present ? txn.AddDelete(fact) : txn.AddInsert(fact);
      if (!added.ok()) {
        log->errors.push_back(added.ToString());
        break;
      }
      write.events.emplace_back(p, c, !present);
    }
    Result<uint64_t> version =
        via_processor
            ? [&]() -> Result<uint64_t> {
                Result<ProcessReply> reply = client.Process(txn);
                if (!reply.ok()) return reply.status();
                if (!reply->accepted) {
                  return FailedPreconditionError("rejected");
                }
                return reply->version;
              }()
            : [&]() -> Result<uint64_t> {
                Result<ApplyReply> reply = client.Apply(txn);
                if (!reply.ok()) return reply.status();
                return reply->version;
              }();
    if (version.ok()) {
      write.version = *version;
      for (const auto& [p, c, ins] : write.events) {
        if (ins) {
          guess.insert({p, c});
        } else {
          guess.erase({p, c});
        }
      }
      log->writes.push_back(std::move(write));
    } else if (version.status().code() != StatusCode::kInvalidArgument &&
               version.status().code() != StatusCode::kFailedPrecondition) {
      // Only a definitive validity/integrity rejection is acceptable: the
      // retry loop must have converted every transient failure into an ack
      // or such a rejection. Anything else means retries gave up with the
      // outcome unknown — exactly what this suite exists to rule out.
      log->errors.push_back(
          StrCat("write gave up: ", version.status().ToString()));
      break;
    }
  }
  log->retries = client.retries();
  log->dials = client.dials();
  client.Close();
}

/// Totals accumulated across a shard so the "machinery engaged" assertions
/// do not depend on any single seed's luck.
struct ShardTotals {
  uint64_t faults = 0;
  uint64_t retries = 0;
  uint64_t dedup_hits = 0;
};

/// Extracts `"key":<number>` from the server's stats JSON.
uint64_t JsonCounter(const std::string& json, const std::string& key) {
  const std::string needle = StrCat("\"", key, "\":");
  size_t at = json.find(needle);
  if (at == std::string::npos) return 0;
  return std::strtoull(json.c_str() + at + needle.size(), nullptr, 10);
}

void RunSeed(uint64_t seed, ShardTotals* totals) {
  SCOPED_TRACE(StrCat("seed=", seed));
  Rng rng(seed * 0x9E3779B97F4A7C15ull + 17);
  const bool via_processor = rng.NextChance(1, 2);
  const bool persistent = rng.NextChance(1, 2);

  // Half the seeds run durably, so tokened commit records travel through
  // the WAL (and its group-commit pipeline) under concurrent retries.
  std::string dir;
  std::unique_ptr<DeductiveDatabase> db;
  if (persistent) {
    std::string tmpl = StrCat(::testing::TempDir(), "srvchaosXXXXXX");
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    ASSERT_NE(::mkdtemp(buf.data()), nullptr);
    dir = buf.data();
    auto opened = DeductiveDatabase::OpenPersistent(dir);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    db = std::move(*opened);
  } else {
    db = std::make_unique<DeductiveDatabase>();
  }
  DeclareSchema(db.get());
  if (persistent) {
    ASSERT_TRUE(db->Checkpoint().ok());
  }
  const uint64_t base_version = db->version();

  FaultyNetwork::Options faults;
  faults.seed = seed * 31 + 5;
  faults.reset_read_per_mille = 15;
  faults.truncate_write_per_mille = 15;
  faults.delay_per_mille = 40;
  faults.max_delay_us = 300;
  FaultyNetwork chaos(faults);

  LoopbackNetwork network;
  Server server(db.get());
  // Both sides are faulty: the server accepts through the wrapped listener,
  // so its replies die mid-frame too, not just the clients' requests.
  ASSERT_TRUE(server.Serve(chaos.WrapListener(network.TakeListener())).ok());

  const size_t num_clients = 2 + seed % 3;
  std::vector<ClientLog> logs(num_clients);
  std::vector<std::thread> clients;
  clients.reserve(num_clients);
  for (size_t i = 0; i < num_clients; ++i) {
    clients.emplace_back(ClientLoop, &network, &chaos, via_processor,
                         /*client_id=*/i + 1, seed * 1000 + i, &logs[i]);
  }
  for (std::thread& thread : clients) thread.join();

  const std::string stats = server.StatsJson();
  server.Stop();

  for (size_t i = 0; i < num_clients; ++i) {
    SCOPED_TRACE(StrCat("client=", i));
    ASSERT_TRUE(logs[i].errors.empty()) << logs[i].errors.front();
    totals->retries += logs[i].retries;
  }
  totals->faults +=
      chaos.resets_injected() + chaos.truncations_injected();
  totals->dedup_hits += JsonCounter(stats, "dedup_hits");

  // ---- The serial oracle (identical to server_history_test) -----------------
  std::vector<const AckedWrite*> acked;
  for (const ClientLog& log : logs) {
    for (const AckedWrite& write : log.writes) acked.push_back(&write);
  }
  std::sort(acked.begin(), acked.end(),
            [](const AckedWrite* a, const AckedWrite* b) {
              return a->version < b->version;
            });
  for (size_t i = 1; i < acked.size(); ++i) {
    ASSERT_NE(acked[i - 1]->version, acked[i]->version)
        << "two writes acknowledged the same commit version";
  }

  std::map<uint64_t, std::string> image_at;
  std::set<std::pair<size_t, size_t>> facts;
  image_at[base_version] = ImageOf(facts);
  for (const AckedWrite* write : acked) {
    ASSERT_GT(write->version, base_version);
    for (const auto& [p, c, ins] : write->events) {
      if (ins) {
        ASSERT_TRUE(facts.insert({p, c}).second)
            << "acked insert of a present fact — a retry applied twice";
      } else {
        ASSERT_EQ(facts.erase({p, c}), 1u)
            << "acked delete of an absent fact — a retry applied twice";
      }
    }
    image_at[write->version] = ImageOf(facts);
  }

  for (size_t i = 0; i < num_clients; ++i) {
    SCOPED_TRACE(StrCat("client=", i));
    for (const AckedRead& read : logs[i].reads) {
      auto it = image_at.upper_bound(read.version);
      ASSERT_NE(it, image_at.begin())
          << "read at version " << read.version << " precedes the seed state";
      --it;
      EXPECT_EQ(read.base_image, it->second)
          << "read at version " << read.version
          << " does not match the acknowledged commit prefix at version "
          << it->first;
    }
  }

  ASSERT_EQ(db->active_sessions(), 0u);

  if (persistent) {
    ASSERT_TRUE(db->Close().ok());
    db.reset();
    std::string cmd = StrCat("rm -rf ", dir);
    ASSERT_EQ(std::system(cmd.c_str()), 0);
  }
}

class ServerChaosTest : public ::testing::TestWithParam<int> {};

TEST_P(ServerChaosTest, EveryAckedWriteAppliesExactlyOnceUnderFaults) {
  // 10 seeds per shard x 10 shards = the 100-seed suite. The
  // machinery-engaged assertions hold per shard: with ~3% fault rate per
  // transport call and hundreds of operations per seed, every shard injects
  // faults, forces retries, and exercises the dedup path.
  const int shard = GetParam();
  ShardTotals totals;
  for (int i = 0; i < 10; ++i) {
    RunSeed(static_cast<uint64_t>(shard * 10 + i), &totals);
    if (::testing::Test::HasFatalFailure()) return;
  }
  EXPECT_GT(totals.faults, 0u) << "the chaos transport injected nothing";
  EXPECT_GT(totals.retries, 0u) << "no client ever retried";
  EXPECT_GT(totals.dedup_hits, 0u)
      << "no retried committed write was answered from the dedup table";
}

INSTANTIATE_TEST_SUITE_P(Matrix, ServerChaosTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace deddb::server
