// Direct unit tests of the observability library: Tracer span bookkeeping
// (nesting, defensive End, id reset), ScopedSpan's disabled mode,
// MetricsRegistry semantics and renderings, JsonQuote escaping, and the
// RenderSpanTree/Explain options. The integration surface (instrumented
// evaluators, facades) is covered by trace_golden_test / trace_parallel_test.

#include <gtest/gtest.h>

#include "obs/explain.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace deddb::obs {
namespace {

// ---- Tracer ----------------------------------------------------------------

TEST(TracerTest, SequentialIdsAndStackParenting) {
  Tracer tracer;
  SpanId outer = tracer.Begin("outer");
  SpanId inner = tracer.Begin("inner");
  EXPECT_EQ(outer, 1u);
  EXPECT_EQ(inner, 2u);
  tracer.End(inner);
  SpanId sibling = tracer.Begin("sibling");
  tracer.End(sibling);
  tracer.End(outer);
  SpanId root2 = tracer.Begin("root2");
  tracer.End(root2);

  auto spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[0].parent, kNoSpan);
  EXPECT_EQ(spans[1].parent, outer);
  EXPECT_EQ(spans[2].parent, outer);  // after inner ended, outer is innermost
  EXPECT_EQ(spans[3].parent, kNoSpan);
  EXPECT_EQ(tracer.size(), 4u);
}

TEST(TracerTest, EndingParentClosesOpenChildren) {
  Tracer tracer;
  SpanId outer = tracer.Begin("outer");
  SpanId inner = tracer.Begin("inner");
  tracer.End(outer);  // defensively closes `inner` too
  auto spans = tracer.Snapshot();
  EXPECT_GT(spans[inner - 1].end_ns, 0);
  // Both already ended: a second End is a no-op, as is an unknown id.
  tracer.End(inner);
  tracer.End(kNoSpan);
  tracer.End(999);
  EXPECT_EQ(tracer.size(), 2u);
}

TEST(TracerTest, AttrsIgnoreInvalidIds) {
  Tracer tracer;
  SpanId span = tracer.Begin("s");
  tracer.AttrInt(span, "n", 7);
  tracer.AttrStr(span, "txn", "{ins Q(A)}");
  tracer.AttrInt(kNoSpan, "ignored", 1);
  tracer.AttrStr(kNoSpan, "ignored", "x");
  tracer.AttrInt(999, "ignored", 1);
  tracer.AttrStr(999, "ignored", "x");
  tracer.End(span);

  auto spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  ASSERT_EQ(spans[0].attrs.size(), 2u);
  EXPECT_TRUE(spans[0].attrs[0].is_int);
  EXPECT_EQ(spans[0].attrs[0].int_value, 7);
  EXPECT_FALSE(spans[0].attrs[1].is_int);
  EXPECT_EQ(spans[0].attrs[1].str_value, "{ins Q(A)}");
}

TEST(TracerTest, ClearResetsIdCounter) {
  Tracer tracer;
  tracer.End(tracer.Begin("a"));
  tracer.End(tracer.Begin("b"));
  tracer.Clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.Begin("fresh"), 1u);
}

TEST(TracerTest, ToJsonSerializesSpansAndAttrs) {
  Tracer tracer;
  SpanId span = tracer.Begin("eval");
  tracer.AttrInt(span, "rounds", 3);
  tracer.AttrStr(span, "goal", "P(\"x\")");
  tracer.End(span);
  std::string json = tracer.ToJson();
  EXPECT_NE(json.find("\"name\":\"eval\""), std::string::npos);
  EXPECT_NE(json.find("\"rounds\":3"), std::string::npos);
  EXPECT_NE(json.find("\"goal\":\"P(\\\"x\\\")\""), std::string::npos);
  EXPECT_NE(json.find("\"parent\":0"), std::string::npos);
}

TEST(ScopedSpanTest, DisabledModeIsInert) {
  ScopedSpan span(nullptr, "never");
  EXPECT_FALSE(span.enabled());
  span.AttrInt("n", 1);     // all no-ops
  span.AttrStr("s", "x");
}

TEST(ScopedSpanTest, EnabledModeRecords) {
  Tracer tracer;
  {
    ScopedSpan span(&tracer, "work");
    EXPECT_TRUE(span.enabled());
    span.AttrInt("n", 1);
  }
  auto spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "work");
  EXPECT_GT(spans[0].end_ns, 0);
}

// ---- MetricsRegistry -------------------------------------------------------

TEST(MetricsRegistryTest, CountersGaugesHistograms) {
  MetricsRegistry metrics;
  EXPECT_EQ(metrics.counter("missing"), 0u);
  EXPECT_EQ(metrics.gauge("missing"), 0);
  EXPECT_EQ(metrics.histogram("missing").count, 0u);

  metrics.Add("eval.rounds");
  metrics.Add("eval.rounds", 4);
  EXPECT_EQ(metrics.counter("eval.rounds"), 5u);

  metrics.Set("facts", 10);
  metrics.Set("facts", -3);  // gauges overwrite
  EXPECT_EQ(metrics.gauge("facts"), -3);

  metrics.Observe("sizes", 4);
  metrics.Observe("sizes", -1);
  metrics.Observe("sizes", 2);
  auto h = metrics.histogram("sizes");
  EXPECT_EQ(h.count, 3u);
  EXPECT_EQ(h.sum, 5);
  EXPECT_EQ(h.min, -1);
  EXPECT_EQ(h.max, 4);
}

TEST(MetricsRegistryTest, RenderTextIsSortedAndExact) {
  MetricsRegistry metrics;
  metrics.Add("b.count", 2);
  metrics.Add("a.count", 1);
  metrics.Set("g", 7);
  metrics.Observe("h", 3);
  EXPECT_EQ(metrics.RenderText(),
            "counter a.count 1\n"
            "counter b.count 2\n"
            "gauge g 7\n"
            "histogram h count=1 sum=3 min=3 max=3\n");
}

TEST(MetricsRegistryTest, ToJsonIsExact) {
  MetricsRegistry metrics;
  metrics.Add("c", 2);
  metrics.Set("g", -1);
  metrics.Observe("h", 5);
  EXPECT_EQ(metrics.ToJson(),
            "{\"counters\":{\"c\":2},\"gauges\":{\"g\":-1},"
            "\"histograms\":{\"h\":{\"count\":1,\"sum\":5,\"min\":5,"
            "\"max\":5}}}");
  metrics.Clear();
  EXPECT_EQ(metrics.ToJson(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
  EXPECT_EQ(metrics.RenderText(), "");
}

TEST(MetricsRegistryTest, NullablePointerHelpers) {
  MetricsRegistry::Add(nullptr, "x");
  MetricsRegistry::Set(nullptr, "x", 1);
  MetricsRegistry::Observe(nullptr, "x", 1);

  MetricsRegistry metrics;
  MetricsRegistry::Add(&metrics, "x", 3);
  MetricsRegistry::Set(&metrics, "y", 4);
  MetricsRegistry::Observe(&metrics, "z", 5);
  EXPECT_EQ(metrics.counter("x"), 3u);
  EXPECT_EQ(metrics.gauge("y"), 4);
  EXPECT_EQ(metrics.histogram("z").sum, 5);
}

// ---- JsonQuote -------------------------------------------------------------

TEST(JsonQuoteTest, EscapesSpecialCharacters) {
  EXPECT_EQ(JsonQuote(""), "\"\"");
  EXPECT_EQ(JsonQuote("plain"), "\"plain\"");
  EXPECT_EQ(JsonQuote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(JsonQuote("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(JsonQuote("a\nb\rc\td"), "\"a\\nb\\rc\\td\"");
  EXPECT_EQ(JsonQuote(std::string_view("\x01", 1)), "\"\\u0001\"");
  // Bytes >= 0x20 pass through untouched (UTF-8 stays valid).
  EXPECT_EQ(JsonQuote("δP(x)"), "\"δP(x)\"");
}

// ---- Render options --------------------------------------------------------

TEST(RenderSpanTreeTest, OptionsAddIdsAndTimings) {
  Tracer tracer;
  SpanId outer = tracer.Begin("outer");
  SpanId inner = tracer.Begin("inner");
  tracer.AttrInt(inner, "n", 2);
  tracer.AttrStr(inner, "who", "P(A)");
  tracer.End(inner);
  tracer.End(outer);

  EXPECT_EQ(RenderSpanTree(tracer),
            "outer\n"
            "  inner n=2 who=\"P(A)\"\n");

  RenderOptions options;
  options.include_ids = true;
  options.include_timings = true;
  std::string rendered = RenderSpanTree(tracer.Snapshot(), options);
  EXPECT_NE(rendered.find("#1 outer"), std::string::npos);
  EXPECT_NE(rendered.find("#2 inner"), std::string::npos);
  EXPECT_NE(rendered.find("dur_us="), std::string::npos);
}

TEST(ExplainTest, UnknownSpanNamesFallBackToRawRendering) {
  Tracer tracer;
  SpanId span = tracer.Begin("custom.phase");
  tracer.AttrInt(span, "items", 3);
  tracer.End(span);
  std::string out = Explain(tracer);
  EXPECT_NE(out.find("custom.phase"), std::string::npos);
  EXPECT_NE(out.find("items=3"), std::string::npos);
}

}  // namespace
}  // namespace deddb::obs
