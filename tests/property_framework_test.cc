// Property-based tests of the framework's core invariants, swept over
// randomized workloads:
//
//  1. The incremental upward interpretation (event rules) and the
//     full-recompute baseline produce identical induced events — eqs. 1-2
//     applied literally vs. §4.1's procedure.
//  2. Every translation returned by the downward interpretation, applied as
//     a transaction, actually induces the requested events (the two
//     interpretations are two directions of the same equivalence).
//  3. Simplified and unsimplified event compilation agree.
//  4. Incremental materialized-view maintenance leaves the stored extension
//     identical to a from-scratch recomputation.
//  5. Semi-naive and naive bottom-up evaluation agree (including recursive
//     programs).

#include <gtest/gtest.h>

#include "core/deductive_database.h"
#include "eval/bottom_up.h"
#include "problems/view_maintenance.h"
#include "workload/employment.h"
#include "workload/random_programs.h"

namespace deddb {
namespace {

using workload::EmploymentConfig;
using workload::MakeEmploymentDatabase;
using workload::MakeRandomDatabase;
using workload::RandomEmploymentTransaction;
using workload::RandomProgramConfig;
using workload::RandomTransaction;

// ---------------------------------------------------------------------------
// 1 & 3: upward strategies and simplify modes agree (employment workload).

struct UpwardSweepParam {
  size_t people;
  size_t txn_size;
  uint64_t seed;
};

class UpwardAgreementTest
    : public ::testing::TestWithParam<UpwardSweepParam> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, UpwardAgreementTest,
    ::testing::Values(UpwardSweepParam{20, 3, 1}, UpwardSweepParam{20, 8, 2},
                      UpwardSweepParam{100, 5, 3},
                      UpwardSweepParam{100, 20, 4},
                      UpwardSweepParam{300, 10, 5},
                      UpwardSweepParam{300, 40, 6}),
    [](const ::testing::TestParamInfo<UpwardSweepParam>& info) {
      return "people" + std::to_string(info.param.people) + "_txn" +
             std::to_string(info.param.txn_size) + "_seed" +
             std::to_string(info.param.seed);
    });

TEST_P(UpwardAgreementTest, EventRulesMatchRecomputeAcrossSimplifyModes) {
  const UpwardSweepParam& param = GetParam();
  std::vector<std::string> renderings;
  for (bool simplify : {false, true}) {
    EmploymentConfig config;
    config.people = param.people;
    config.seed = param.seed;
    config.consistent = false;  // exercise Ic events too
    config.simplify = simplify;
    auto db = MakeEmploymentDatabase(config);
    ASSERT_TRUE(db.ok()) << db.status();
    auto txn = RandomEmploymentTransaction(db->get(), param.people,
                                           param.txn_size, param.seed * 97);
    ASSERT_TRUE(txn.ok()) << txn.status();

    auto compiled = (*db)->Compiled();
    ASSERT_TRUE(compiled.ok()) << compiled.status();

    for (UpwardStrategy strategy :
         {UpwardStrategy::kEventRules, UpwardStrategy::kRecompute}) {
      UpwardOptions options;
      options.strategy = strategy;
      UpwardInterpreter upward(&(*db)->database(), *compiled, options);
      auto events = upward.InducedEvents(*txn);
      ASSERT_TRUE(events.ok()) << events.status();
      renderings.push_back(events->ToString((*db)->symbols()));
    }
  }
  // All four runs (2 simplify modes × 2 strategies) must agree.
  for (size_t i = 1; i < renderings.size(); ++i) {
    EXPECT_EQ(renderings[0], renderings[i]) << "variant " << i << " differs";
  }
}

// Same agreement on random hierarchical programs (more rule shapes).
class RandomProgramUpwardTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramUpwardTest,
                         ::testing::Range<uint64_t>(1, 13));

TEST_P(RandomProgramUpwardTest, EventRulesMatchRecompute) {
  std::vector<std::string> renderings;
  for (bool simplify : {false, true}) {
    RandomProgramConfig config;
    config.seed = GetParam();
    config.simplify = simplify;
    config.facts_per_base = 40;
    auto db = MakeRandomDatabase(config);
    ASSERT_TRUE(db.ok()) << db.status();
    auto txn = RandomTransaction(db->get(), config, 6, GetParam() * 31);
    ASSERT_TRUE(txn.ok()) << txn.status();
    auto compiled = (*db)->Compiled();
    ASSERT_TRUE(compiled.ok()) << compiled.status();

    for (UpwardStrategy strategy :
         {UpwardStrategy::kEventRules, UpwardStrategy::kRecompute}) {
      UpwardOptions options;
      options.strategy = strategy;
      UpwardInterpreter upward(&(*db)->database(), *compiled, options);
      auto events = upward.InducedEvents(*txn);
      ASSERT_TRUE(events.ok()) << events.status();
      renderings.push_back(events->ToString((*db)->symbols()));
    }
  }
  for (size_t i = 1; i < renderings.size(); ++i) {
    EXPECT_EQ(renderings[0], renderings[i]) << "variant " << i << " differs";
  }
}

// ---------------------------------------------------------------------------
// 2: downward translations, applied, induce the requested events.

class DownwardRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, DownwardRoundTripTest,
                         ::testing::Range<uint64_t>(1, 9));

TEST_P(DownwardRoundTripTest, TranslationsSatisfyRequest) {
  EmploymentConfig config;
  config.people = 30;
  config.seed = GetParam();
  config.consistent = true;
  auto db = MakeEmploymentDatabase(config);
  ASSERT_TRUE(db.ok()) << db.status();

  SymbolId unemp = (*db)->database().FindPredicate("Unemp").value();
  OldStateView old_state(&(*db)->database());

  // Request deletion of each currently-unemployed person (up to 4), and
  // insertion for up to 4 people who are not unemployed.
  std::vector<std::pair<bool, Tuple>> requests;  // (is_insert, tuple)
  {
    auto tuples = old_state.Query(
        Atom(unemp, {Term::MakeVariable(0x70000000)}));
    ASSERT_TRUE(tuples.ok()) << tuples.status();
    for (size_t i = 0; i < tuples->size() && i < 4; ++i) {
      requests.emplace_back(false, (*tuples)[i]);
    }
    for (size_t i = 0; i < config.people && requests.size() < 8; ++i) {
      Tuple t{(*db)->symbols().Intern(workload::PersonName(i))};
      if (!old_state.Contains(unemp, t)) requests.emplace_back(true, t);
    }
  }

  for (const auto& [is_insert, tuple] : requests) {
    RequestedEvent event;
    event.is_insert = is_insert;
    event.predicate = unemp;
    for (SymbolId c : tuple) event.args.push_back(Term::MakeConstant(c));
    UpdateRequest request;
    request.events.push_back(event);

    auto result = (*db)->TranslateViewUpdate(request);
    ASSERT_TRUE(result.ok()) << result.status();
    for (const auto& translation : result->translations) {
      auto events = (*db)->InducedEvents(translation.transaction);
      ASSERT_TRUE(events.ok()) << events.status();
      bool satisfied = is_insert ? events->ContainsInsert(unemp, tuple)
                                 : events->ContainsDelete(unemp, tuple);
      EXPECT_TRUE(satisfied)
          << "translation "
          << translation.ToString((*db)->symbols()) << " does not satisfy "
          << (is_insert ? "ins " : "del ")
          << AtomFromTuple(unemp, tuple).ToString((*db)->symbols());
    }
  }
}

// ---------------------------------------------------------------------------
// 4: incremental view maintenance == recompute.

class ViewMaintenanceAgreementTest
    : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, ViewMaintenanceAgreementTest,
                         ::testing::Range<uint64_t>(1, 9));

TEST_P(ViewMaintenanceAgreementTest, IncrementalMatchesRecompute) {
  EmploymentConfig config;
  config.people = 60;
  config.seed = GetParam();
  config.materialize_unemp = true;
  auto db = MakeEmploymentDatabase(config);
  ASSERT_TRUE(db.ok()) << db.status();
  ASSERT_TRUE((*db)->InitializeMaterializedViews().ok());

  // Run 5 consecutive maintained transactions.
  for (uint64_t step = 0; step < 5; ++step) {
    auto txn = RandomEmploymentTransaction(db->get(), config.people, 10,
                                           GetParam() * 1000 + step);
    ASSERT_TRUE(txn.ok()) << txn.status();
    auto maintained = (*db)->MaintainMaterializedViews(*txn, /*apply=*/true);
    ASSERT_TRUE(maintained.ok()) << maintained.status();
    ASSERT_TRUE((*db)->Apply(*txn).ok());

    // The stored extension must equal a from-scratch recomputation.
    FactStore fresh = (*db)->database().materialized_store();
    auto status = problems::InitializeMaterializedViews(&(*db)->database());
    ASSERT_TRUE(status.ok()) << status;
    EXPECT_EQ(fresh.ToString((*db)->symbols()),
              (*db)->database().materialized_store().ToString(
                  (*db)->symbols()))
        << "divergence after step " << step;
  }
}

// ---------------------------------------------------------------------------
// 5: semi-naive == naive bottom-up evaluation.

class EvaluatorAgreementTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, EvaluatorAgreementTest,
                         ::testing::Range<uint64_t>(1, 11));

TEST_P(EvaluatorAgreementTest, SemiNaiveMatchesNaive) {
  RandomProgramConfig config;
  config.seed = GetParam();
  config.allow_recursion = true;  // exercise fixpoints
  config.derived_predicates = 8;
  auto db = MakeRandomDatabase(config);
  ASSERT_TRUE(db.ok()) << db.status();

  FactStoreProvider edb(&(*db)->database().facts());
  std::vector<std::string> outputs;
  for (bool semi_naive : {true, false}) {
    EvaluationOptions options;
    options.semi_naive = semi_naive;
    BottomUpEvaluator evaluator((*db)->database().program(),
                                (*db)->symbols(), edb, options);
    auto idb = evaluator.Evaluate();
    ASSERT_TRUE(idb.ok()) << idb.status();
    outputs.push_back(idb->ToString((*db)->symbols()));
  }
  EXPECT_EQ(outputs[0], outputs[1]);
}

}  // namespace
}  // namespace deddb
