// The differential plan oracle: for 200 seeded random programs (hierarchical
// and recursive, with negation), the planned join engine and the naive
// nested-loop baseline must produce byte-identical fixpoints AND identical
// EvaluationStats at every parallel thread count. The stats equality is the
// strong half of the oracle: rule_firings counts complete body solutions,
// which no join order or access path may change, so a planner bug that
// duplicates or drops a binding shows up even when the fact set happens to
// converge to the same place.
//
// Sharded 10 ways (one gtest parameter per shard, 20 programs each) like
// server_history_test; the TSan CI job runs the same suite as its race proof
// for plans shared across parallel work items.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/deductive_database.h"
#include "eval/bottom_up.h"
#include "workload/random_programs.h"

namespace deddb {
namespace {

using workload::MakeRandomDatabase;
using workload::RandomProgramConfig;

struct EngineRun {
  std::string facts;  // canonical rendering of the full IDB
  EvaluationStats stats;
};

Result<EngineRun> RunEngine(const DeductiveDatabase& db, JoinStrategy strategy,
                            size_t num_threads) {
  FactStoreProvider edb(&db.database().facts());
  EvaluationOptions options;
  options.join_strategy = strategy;
  options.num_threads = num_threads;
  BottomUpEvaluator evaluator(db.database().program(), db.symbols(), edb,
                              options);
  DEDDB_ASSIGN_OR_RETURN(FactStore idb, evaluator.Evaluate());
  return EngineRun{idb.ToString(db.symbols()), evaluator.stats()};
}

void ExpectStatsEqual(const EvaluationStats& a, const EvaluationStats& b,
                      const std::string& label) {
  EXPECT_EQ(a.rounds, b.rounds) << label;
  EXPECT_EQ(a.strata, b.strata) << label;
  EXPECT_EQ(a.rule_firings, b.rule_firings) << label;
  EXPECT_EQ(a.derived_facts, b.derived_facts) << label;
  EXPECT_EQ(a.interrupted, b.interrupted) << label;
}

// Runs both engines at thread counts {1, 4} and holds all four runs to one
// fixpoint and one stats vector.
void ExpectEnginesAgree(const DeductiveDatabase& db, const std::string& label) {
  auto reference = RunEngine(db, JoinStrategy::kPlanned, 1);
  ASSERT_TRUE(reference.ok()) << label << ": " << reference.status();
  for (JoinStrategy strategy :
       {JoinStrategy::kPlanned, JoinStrategy::kNaiveNestedLoop}) {
    for (size_t threads : {1u, 4u}) {
      auto run = RunEngine(db, strategy, threads);
      std::string where =
          label +
          (strategy == JoinStrategy::kPlanned ? " planned" : " naive") +
          " threads=" + std::to_string(threads);
      ASSERT_TRUE(run.ok()) << where << ": " << run.status();
      EXPECT_EQ(run->facts, reference->facts) << where << ": fixpoint diverged";
      ExpectStatsEqual(run->stats, reference->stats, where);
    }
  }
}

// 10 shards x 20 programs = 200 random programs (100 hierarchical, 100
// recursive), distinct seeds per shard.
class JoinPlannerDifferentialTest : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Shards, JoinPlannerDifferentialTest,
                         ::testing::Range(0, 10));

TEST_P(JoinPlannerDifferentialTest, HierarchicalProgramsAgree) {
  for (uint64_t sub = 0; sub < 10; ++sub) {
    uint64_t seed = 1000 + static_cast<uint64_t>(GetParam()) * 10 + sub;
    RandomProgramConfig config;
    config.seed = seed;
    config.allow_recursion = false;
    config.facts_per_base = 30;
    auto db = MakeRandomDatabase(config);
    ASSERT_TRUE(db.ok()) << db.status();
    ExpectEnginesAgree(**db, "hierarchical seed " + std::to_string(seed));
  }
}

TEST_P(JoinPlannerDifferentialTest, RecursiveProgramsAgree) {
  for (uint64_t sub = 0; sub < 10; ++sub) {
    uint64_t seed = 2000 + static_cast<uint64_t>(GetParam()) * 10 + sub;
    RandomProgramConfig config;
    config.seed = seed;
    config.allow_recursion = true;
    config.derived_predicates = 8;
    config.facts_per_base = 30;
    auto db = MakeRandomDatabase(config);
    ASSERT_TRUE(db.ok()) << db.status();
    ExpectEnginesAgree(**db, "recursive seed " + std::to_string(seed));
  }
}

}  // namespace
}  // namespace deddb
