// Exhaustive semantic verification of the downward interpretation on tiny
// domains: enumerate EVERY valid transaction over the base facts and check
// that it satisfies the downward DNF of a request if and only if it actually
// induces the requested event (decided by brute-force evaluation of the old
// and new states). This checks soundness *and completeness* of §4.2 —
// stronger than the sampled round-trip properties.

#include <gtest/gtest.h>

#include "core/deductive_database.h"
#include "eval/bottom_up.h"
#include "parser/parser.h"
#include "util/rng.h"
#include "util/strings.h"

namespace deddb {
namespace {

struct PossibleEvent {
  bool is_insert;
  SymbolId predicate;
  Tuple tuple;
};

class ExhaustiveDownwardTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    db_ = std::make_unique<DeductiveDatabase>();
    ASSERT_TRUE(LoadProgram(db_.get(), R"(
      base Q/1. base R/1.
      view P/1.
      view W/1.
      P(x) <- Q(x) & not R(x).
      W(x) <- P(x) & Q(x).
    )")
                    .ok());
    q_ = db_->database().FindPredicate("Q").value();
    r_ = db_->database().FindPredicate("R").value();
    p_ = db_->database().FindPredicate("P").value();

    // Random initial facts over constants {C0, C1, C2}.
    Rng rng(GetParam());
    for (const char* name : {"C0", "C1", "C2"}) {
      SymbolId c = db_->symbols().Intern(name);
      constants_.push_back(c);
      if (rng.NextChance(50, 100)) {
        ASSERT_TRUE(db_->AddFact(Atom(q_, {Term::MakeConstant(c)})).ok());
      }
      if (rng.NextChance(50, 100)) {
        ASSERT_TRUE(db_->AddFact(Atom(r_, {Term::MakeConstant(c)})).ok());
      }
    }
    // The 6 possible valid events: per (pred, constant), insertion if the
    // fact is absent, deletion if present.
    for (SymbolId pred : {q_, r_}) {
      for (SymbolId c : constants_) {
        bool present = db_->database().facts().Contains(pred, {c});
        possible_.push_back(PossibleEvent{!present, pred, {c}});
      }
    }
  }

  // Evaluates whether `pred(tuple)` holds in `state` under the program.
  bool Holds(const FactStore& state, SymbolId pred, const Tuple& tuple) {
    FactStoreProvider edb(&state);
    BottomUpEvaluator evaluator(db_->database().program(), db_->symbols(),
                                edb);
    auto idb = evaluator.EvaluateFor({pred});
    EXPECT_TRUE(idb.ok());
    return idb->Contains(pred, tuple);
  }

  // The transaction encoded by `mask` over possible_.
  Transaction TxnFromMask(uint32_t mask) {
    Transaction txn;
    for (size_t i = 0; i < possible_.size(); ++i) {
      if (!(mask & (1u << i))) continue;
      const PossibleEvent& ev = possible_[i];
      Status status = ev.is_insert ? txn.AddInsert(ev.predicate, ev.tuple)
                                   : txn.AddDelete(ev.predicate, ev.tuple);
      EXPECT_TRUE(status.ok());
    }
    return txn;
  }

  // True if `txn` (as a set of performed events) satisfies some disjunct.
  bool SatisfiesDnf(const Dnf& dnf, const Transaction& txn) {
    for (const Conjunct& c : dnf.disjuncts()) {
      bool all = true;
      for (const EventLiteral& lit : c.literals()) {
        bool performed =
            lit.event.is_insert
                ? txn.ContainsInsert(lit.event.predicate, lit.event.tuple)
                : txn.ContainsDelete(lit.event.predicate, lit.event.tuple);
        all &= lit.positive == performed;
      }
      if (all) return true;
    }
    return false;
  }

  void VerifyRequest(SymbolId view, SymbolId constant, bool is_insert) {
    UpdateRequest request;
    RequestedEvent event;
    event.is_insert = is_insert;
    event.predicate = view;
    event.args = {Term::MakeConstant(constant)};
    request.events.push_back(event);

    auto result = db_->TranslateViewUpdate(request);
    ASSERT_TRUE(result.ok()) << result.status();
    ASSERT_FALSE(result->approximate) << "tiny domain must stay exact";

    bool held_before = Holds(db_->database().facts(), view, {constant});
    for (uint32_t mask = 0; mask < (1u << possible_.size()); ++mask) {
      Transaction txn = TxnFromMask(mask);
      FactStore new_state = txn.ApplyTo(db_->database().facts());
      bool holds_after = Holds(new_state, view, {constant});
      bool induces = is_insert ? (!held_before && holds_after)
                               : (held_before && !holds_after);
      EXPECT_EQ(SatisfiesDnf(result->dnf, txn), induces)
          << (is_insert ? "ins " : "del ")
          << AtomFromTuple(view, {constant}).ToString(db_->symbols())
          << " txn " << txn.ToString(db_->symbols()) << " dnf "
          << result->dnf.ToString(db_->symbols());
    }
  }

  std::unique_ptr<DeductiveDatabase> db_;
  SymbolId q_ = 0, r_ = 0, p_ = 0;
  std::vector<SymbolId> constants_;
  std::vector<PossibleEvent> possible_;
};

INSTANTIATE_TEST_SUITE_P(Seeds, ExhaustiveDownwardTest,
                         ::testing::Range<uint64_t>(1, 11));

TEST_P(ExhaustiveDownwardTest, InsertP) {
  for (SymbolId c : constants_) {
    VerifyRequest(p_, c, /*is_insert=*/true);
  }
}

TEST_P(ExhaustiveDownwardTest, DeleteP) {
  for (SymbolId c : constants_) {
    VerifyRequest(p_, c, /*is_insert=*/false);
  }
}

TEST_P(ExhaustiveDownwardTest, InsertNestedW) {
  SymbolId w = db_->database().FindPredicate("W").value();
  for (SymbolId c : constants_) {
    VerifyRequest(w, c, /*is_insert=*/true);
  }
}

TEST_P(ExhaustiveDownwardTest, DeleteNestedW) {
  SymbolId w = db_->database().FindPredicate("W").value();
  for (SymbolId c : constants_) {
    VerifyRequest(w, c, /*is_insert=*/false);
  }
}

}  // namespace
}  // namespace deddb
