// Randomized concurrent-history suite (the snapshot-isolation proof of
// DESIGN.md §9): 100 seeded runs, each driving one writer thread committing
// random transactions while 2-4 reader threads continuously open snapshot
// sessions and read through them. The writer records the canonical image of
// every acknowledged commit prefix; after joining, every reader observation
// must equal exactly one of those prefix images — never a torn mid-apply
// state — with session versions monotone per reader, snapshots immutable
// under later commits, and derived answers equal to a from-scratch
// derivation of the observed base facts.
//
// Seeds split four ways: {Apply, UpdateProcessor} x {in-memory, persistent},
// so the pipelined commit path (log staged under the commit lock, fsync
// awaited outside it) and the processor's multi-store atomic region both run
// against concurrent readers. Run under TSan in CI.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/deductive_database.h"
#include "core/session.h"
#include "core/update_processor.h"
#include "util/rng.h"
#include "util/strings.h"

namespace deddb {
namespace {

constexpr const char* kConstants[] = {"c0", "c1", "c2", "c3", "c4", "c5"};
constexpr const char* kBasePreds[] = {"Q", "R"};

// Canonical image of a base-fact set given as (pred idx, const idx) pairs —
// the writer's mirror, rendered without touching the database.
std::string ImageOfMirror(const std::set<std::pair<size_t, size_t>>& mirror) {
  std::vector<std::string> facts;
  for (const auto& [p, c] : mirror) {
    facts.push_back(StrCat(kBasePreds[p], "(", kConstants[c], ")"));
  }
  std::sort(facts.begin(), facts.end());
  return Join(facts, ";");
}

// Canonical image of a session's pinned base facts, via the shared symbol
// table (same rendering as ImageOfMirror, so the two compare directly).
std::string ImageOfSession(const Session& session) {
  std::vector<std::string> facts;
  const SymbolTable& symbols = session.database().symbols();
  session.database().facts().ForEach([&](SymbolId pred, const Tuple& t) {
    std::string s = StrCat(symbols.NameOf(pred), "(");
    for (size_t i = 0; i < t.size(); ++i) {
      if (i > 0) s += ",";
      s += symbols.NameOf(t[i]);
    }
    facts.push_back(StrCat(s, ")"));
  });
  std::sort(facts.begin(), facts.end());
  return Join(facts, ";");
}

// What P(x) <- Q(x) & not R(x) derives from a canonical base image.
std::string DeriveP(const std::string& image) {
  std::vector<std::string> answers;
  for (const char* c : kConstants) {
    const bool q = image.find(StrCat("Q(", c, ")")) != std::string::npos;
    const bool r = image.find(StrCat("R(", c, ")")) != std::string::npos;
    if (q && !r) answers.push_back(c);
  }
  return Join(answers, ";");
}

void DeclareSchema(DeductiveDatabase* db, bool materialize) {
  ASSERT_TRUE(db->DeclareBase("Q", 1).ok());
  ASSERT_TRUE(db->DeclareBase("R", 1).ok());
  Result<SymbolId> p = db->DeclareView("P", 1);
  ASSERT_TRUE(p.ok());
  Term x = db->Variable("x");
  ASSERT_TRUE(
      db->AddRule(Rule(db->MakeAtom("P", {x}).value(),
                       {Literal::Positive(db->MakeAtom("Q", {x}).value()),
                        Literal::Negative(db->MakeAtom("R", {x}).value())}))
          .ok());
  if (materialize) {
    ASSERT_TRUE(db->MaterializeView(*p).ok());
    ASSERT_TRUE(db->InitializeMaterializedViews().ok());
  }
}

// Everything one reader thread saw, validated only after the join (gtest
// assertions are not thread-safe, so threads record and the test asserts).
struct ReaderLog {
  std::vector<uint64_t> versions;
  std::vector<std::string> images;
  // (observed base image, rendered P answers) for iterations that queried.
  std::vector<std::pair<std::string, std::string>> derived;
  std::vector<std::string> errors;
};

void ReaderLoop(DeductiveDatabase* db, const std::atomic<bool>* done,
                ReaderLog* log) {
  for (int iter = 0; !done->load(std::memory_order_acquire) || iter < 25;
       ++iter) {
    Result<std::unique_ptr<Session>> begun = db->BeginSession();
    if (!begun.ok()) {
      log->errors.push_back(begun.status().ToString());
      return;
    }
    Session& session = **begun;
    log->versions.push_back(session.version());
    std::string image = ImageOfSession(session);
    log->images.push_back(image);
    if (iter % 3 == 0) {
      // Derived query against the pinned state (materialized in processor
      // mode, derived on demand in direct mode — both must answer from the
      // snapshot, not the moving head).
      Result<Atom> pattern =
          session.MakeAtom("P", {session.Variable("x")});
      if (!pattern.ok()) {
        log->errors.push_back(pattern.status().ToString());
        return;
      }
      Result<std::vector<Tuple>> answers = session.Solve(*pattern);
      if (!answers.ok()) {
        log->errors.push_back(answers.status().ToString());
        return;
      }
      std::vector<std::string> names;
      for (const Tuple& t : *answers) {
        names.push_back(std::string(session.database().symbols().NameOf(t[0])));
      }
      std::sort(names.begin(), names.end());
      log->derived.emplace_back(image, Join(names, ";"));
    }
    if (iter % 4 == 0) {
      // Immutability: the same handle re-read after yielding to the writer
      // must produce byte-identical answers.
      std::this_thread::yield();
      std::string again = ImageOfSession(session);
      if (again != image) {
        log->errors.push_back(
            StrCat("snapshot mutated under a live session: '", image,
                   "' became '", again, "'"));
        return;
      }
    }
  }
}

// One run of the suite. Returns through gtest assertions only.
void RunSeed(uint64_t seed) {
  SCOPED_TRACE(StrCat("seed=", seed));
  Rng rng(seed * 0x9E3779B97F4A7C15ull + 1);
  const bool via_processor = rng.NextChance(1, 2);
  const bool persistent = rng.NextChance(1, 2);

  std::string dir;
  std::unique_ptr<DeductiveDatabase> db;
  if (persistent) {
    std::string tmpl = StrCat(::testing::TempDir(), "sessXXXXXX");
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    ASSERT_NE(::mkdtemp(buf.data()), nullptr);
    dir = buf.data();
    auto opened = DeductiveDatabase::OpenPersistent(dir);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    db = std::move(*opened);
  } else {
    db = std::make_unique<DeductiveDatabase>();
  }
  DeclareSchema(db.get(), via_processor);
  if (persistent) ASSERT_TRUE(db->Checkpoint().ok());

  std::set<std::pair<size_t, size_t>> mirror;
  std::set<std::string> prefix_images;
  prefix_images.insert(ImageOfMirror(mirror));

  const size_t num_readers = 2 + seed % 3;
  std::atomic<bool> done{false};
  std::vector<ReaderLog> logs(num_readers);
  std::vector<std::thread> readers;
  readers.reserve(num_readers);
  for (size_t r = 0; r < num_readers; ++r) {
    readers.emplace_back(ReaderLoop, db.get(), &done, &logs[r]);
  }

  // The writer: 24 random valid transactions (validity per eqs. 1-2 is
  // against the pre-state; a fact appears in at most one event), every one
  // of which must be acknowledged — there are no faults in this suite.
  for (int op = 0; op < 24; ++op) {
    std::set<std::pair<size_t, size_t>> cur = mirror;
    std::set<std::pair<size_t, size_t>> touched;
    const size_t num_events = 1 + rng.NextBelow(3);
    Transaction txn;
    for (size_t e = 0; e < num_events; ++e) {
      const size_t p = rng.NextBelow(2);
      const size_t c = rng.NextBelow(6);
      if (!touched.insert({p, c}).second) continue;
      Atom fact = db->GroundAtom(kBasePreds[p], {kConstants[c]}).value();
      if (mirror.count({p, c}) > 0) {
        ASSERT_TRUE(txn.AddDelete(fact).ok());
        cur.erase({p, c});
      } else {
        ASSERT_TRUE(txn.AddInsert(fact).ok());
        cur.insert({p, c});
      }
    }
    if (via_processor) {
      UpdateProcessor processor(db.get());
      auto report = processor.ProcessTransaction(txn);
      ASSERT_TRUE(report.ok()) << report.status().ToString();
      ASSERT_TRUE(report->accepted);
    } else {
      Status applied = db->Apply(txn);
      ASSERT_TRUE(applied.ok()) << applied.ToString();
    }
    mirror = std::move(cur);
    prefix_images.insert(ImageOfMirror(mirror));
    if (rng.NextChance(1, 4)) std::this_thread::yield();
  }
  done.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();

  for (size_t r = 0; r < num_readers; ++r) {
    SCOPED_TRACE(StrCat("reader=", r));
    ASSERT_TRUE(logs[r].errors.empty()) << logs[r].errors.front();
    // Every observation is exactly some acknowledged commit prefix.
    for (const std::string& image : logs[r].images) {
      EXPECT_TRUE(prefix_images.count(image) > 0)
          << "torn or phantom state observed: '" << image << "'";
    }
    // Versions are monotone per reader: a later BeginSession never travels
    // backwards in commit order.
    for (size_t i = 1; i < logs[r].versions.size(); ++i) {
      EXPECT_LE(logs[r].versions[i - 1], logs[r].versions[i]);
    }
    // Derived answers agree with a from-scratch derivation of the observed
    // base image — base and view reads came from the same snapshot.
    for (const auto& [image, answers] : logs[r].derived) {
      EXPECT_EQ(answers, DeriveP(image)) << "against base image '" << image
                                         << "'";
    }
    EXPECT_FALSE(logs[r].images.empty());
  }
  ASSERT_EQ(db->active_sessions(), 0u);
  db->ReclaimSessionEpochs();
  // Only the cached current snapshot (pinned by the facade, not a session)
  // may remain registered.
  EXPECT_LE(db->live_session_versions(), 1u);

  if (persistent) {
    ASSERT_TRUE(db->Close().ok());
    db.reset();
    std::string cmd = StrCat("rm -rf ", dir);
    ASSERT_EQ(std::system(cmd.c_str()), 0);
  }
}

class SessionHistoryTest : public ::testing::TestWithParam<int> {};

TEST_P(SessionHistoryTest, EveryReadIsAnAcknowledgedCommitPrefix) {
  // 10 seeds per shard x 10 shards = the 100-seed suite, sharded so ctest
  // runs shards in parallel and a failure names its seed via SCOPED_TRACE.
  const int shard = GetParam();
  for (int i = 0; i < 10; ++i) {
    RunSeed(static_cast<uint64_t>(shard * 10 + i));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(Matrix, SessionHistoryTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace deddb
