// Sanity tests of the synthetic workload generators used by the benchmarks
// and property tests.

#include <gtest/gtest.h>

#include "workload/employment.h"
#include "workload/random_programs.h"
#include "workload/towers.h"

namespace deddb {
namespace {

TEST(EmploymentWorkloadTest, ConsistentConfigSatisfiesConstraints) {
  workload::EmploymentConfig config;
  config.people = 120;
  config.consistent = true;
  auto db = workload::MakeEmploymentDatabase(config);
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_TRUE((*db)->IsConsistent().value());
  EXPECT_GT((*db)->database().facts().TotalFacts(), 100u);
}

TEST(EmploymentWorkloadTest, DeterministicForSeed) {
  workload::EmploymentConfig config;
  config.people = 50;
  config.seed = 7;
  auto a = workload::MakeEmploymentDatabase(config);
  auto b = workload::MakeEmploymentDatabase(config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ((*a)->database().facts().ToString((*a)->symbols()),
            (*b)->database().facts().ToString((*b)->symbols()));
}

TEST(EmploymentWorkloadTest, RandomTransactionsAreValid) {
  workload::EmploymentConfig config;
  config.people = 80;
  auto db = workload::MakeEmploymentDatabase(config);
  ASSERT_TRUE(db.ok());
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    auto txn =
        workload::RandomEmploymentTransaction(db->get(), 80, 12, seed);
    ASSERT_TRUE(txn.ok());
    EXPECT_EQ(txn->size(), 12u);
    EXPECT_TRUE(txn->Validate((*db)->database().facts(),
                              (*db)->database().predicates())
                    .ok());
  }
}

TEST(TowerWorkloadTest, LayersDeriveAndElementZeroReachesTop) {
  workload::TowerConfig config;
  config.depth = 5;
  config.base_facts = 40;
  auto db = workload::MakeTowerDatabase(config);
  ASSERT_TRUE(db.ok()) << db.status();
  OldStateView view(&(*db)->database());
  SymbolId top =
      (*db)->database().FindPredicate(workload::TowerLayerName(5)).value();
  SymbolId e0 = (*db)->symbols().Intern(workload::TowerElementName(0));
  EXPECT_TRUE(view.Contains(top, {e0}));
}

TEST(TowerWorkloadTest, NegationDoublesRuleCount) {
  workload::TowerConfig with, without;
  with.depth = without.depth = 3;
  with.with_negation = true;
  without.with_negation = false;
  auto a = workload::MakeTowerDatabase(with);
  auto b = workload::MakeTowerDatabase(without);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ((*a)->database().program().size(),
            2 * (*b)->database().program().size());
}

TEST(RandomProgramTest, HierarchicalProgramsCompile) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    workload::RandomProgramConfig config;
    config.seed = seed;
    auto db = workload::MakeRandomDatabase(config);
    ASSERT_TRUE(db.ok()) << db.status();
    auto compiled = (*db)->Compiled();
    EXPECT_TRUE(compiled.ok()) << "seed " << seed << ": "
                               << compiled.status();
  }
}

TEST(RandomProgramTest, RecursiveProgramsEvaluateButDontCompile) {
  workload::RandomProgramConfig config;
  config.seed = 3;
  config.allow_recursion = true;
  config.derived_predicates = 10;
  auto db = workload::MakeRandomDatabase(config);
  ASSERT_TRUE(db.ok()) << db.status();
  FactStoreProvider edb(&(*db)->database().facts());
  BottomUpEvaluator evaluator((*db)->database().program(), (*db)->symbols(),
                              edb);
  EXPECT_TRUE(evaluator.Evaluate().ok());
}

TEST(RandomProgramTest, TransactionsRespectEventDefinitions) {
  workload::RandomProgramConfig config;
  config.seed = 9;
  auto db = workload::MakeRandomDatabase(config);
  ASSERT_TRUE(db.ok());
  auto txn = workload::RandomTransaction(db->get(), config, 8, 17);
  ASSERT_TRUE(txn.ok());
  EXPECT_TRUE(txn->Validate((*db)->database().facts(),
                            (*db)->database().predicates())
                  .ok());
}

}  // namespace
}  // namespace deddb
