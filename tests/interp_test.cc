// Unit tests of the interpretation layer beyond the paper examples: old
// state views, active domains, upward goal restriction and stats, downward
// edge cases (already-satisfied requests, open requests, caps, footnote-1
// semantics) and derived-event providers.

#include <gtest/gtest.h>

#include "core/deductive_database.h"
#include "interp/derived_events.h"
#include "interp/domain.h"
#include "interp/downward.h"
#include "interp/old_state.h"
#include "interp/upward.h"
#include "parser/parser.h"

namespace deddb {
namespace {

std::unique_ptr<DeductiveDatabase> Load(const char* source,
                                        bool simplify = true) {
  auto db = std::make_unique<DeductiveDatabase>(
      EventCompilerOptions{.simplify = simplify, .obs = {}});
  auto loaded = LoadProgram(db.get(), source);
  EXPECT_TRUE(loaded.ok()) << loaded.status();
  return db;
}

const char* kSmall = R"(
  base Q/1. base R/1.
  view P/1.
  P(x) <- Q(x) & not R(x).
  Q(A). Q(B). R(B).
)";

TEST(OldStateViewTest, BaseAndDerivedQueries) {
  auto db = Load(kSmall);
  OldStateView view(&db->database());
  SymbolId p = db->database().FindPredicate("P").value();
  SymbolId q = db->database().FindPredicate("Q").value();
  SymbolId a = db->symbols().Intern("A");
  SymbolId b = db->symbols().Intern("B");

  EXPECT_TRUE(view.Contains(q, {a}));
  EXPECT_TRUE(view.Contains(p, {a}));   // derived: P(A) holds
  EXPECT_FALSE(view.Contains(p, {b}));  // R(B) blocks it

  auto solutions = view.Query(Atom(p, {Term::MakeVariable(0x7000000)}));
  ASSERT_TRUE(solutions.ok());
  EXPECT_EQ(*solutions, (std::vector<Tuple>{{a}}));

  size_t count = 0;
  view.ForEachMatch(p, {std::nullopt}, [&](const Tuple&) { ++count; });
  EXPECT_EQ(count, 1u);
}

TEST(OldStateViewTest, MaterializedViewsServedFromStore) {
  auto db = Load(R"(
    base Q/1.
    materialized view V/1.
    V(x) <- Q(x).
    Q(A).
  )");
  ASSERT_TRUE(db->InitializeMaterializedViews().ok());
  // Corrupt the store to prove the view reads from it, not from the rules.
  SymbolId v = db->database().FindPredicate("V").value();
  SymbolId z = db->symbols().Intern("Z");
  db->database().materialized_store().Add(v, {z});
  OldStateView view(&db->database());
  EXPECT_TRUE(view.Contains(v, {z}));
}

TEST(OldStateViewTest, EventVariantPredicatesAreEmpty) {
  auto db = Load(kSmall);
  ASSERT_TRUE(db->Compiled().ok());
  OldStateView view(&db->database());
  SymbolId q = db->database().FindPredicate("Q").value();
  SymbolId ins_q = db->database()
                       .predicates()
                       .FindVariant(q, PredicateVariant::kInsertEvent)
                       .value();
  SymbolId a = db->symbols().Intern("A");
  EXPECT_FALSE(view.Contains(ins_q, {a}));
  EXPECT_EQ(view.EstimateCount(ins_q), 0u);
}

TEST(ActiveDomainTest, CollectsColumnsRulesAndExtras) {
  auto db = Load(R"(
    base Person/1. base Likes/2.
    derived Fan/1.
    Fan(x) <- Likes(x, Jazz).
    Person(Ann). Likes(Ann, Rock).
  )");
  ActiveDomain domain(db->database(), /*use_global_fallback=*/false);
  SymbolId person = db->database().FindPredicate("Person").value();
  SymbolId likes = db->database().FindPredicate("Likes").value();
  SymbolId ann = db->symbols().Intern("Ann");
  SymbolId rock = db->symbols().Intern("Rock");
  SymbolId jazz = db->symbols().Intern("Jazz");

  EXPECT_EQ(domain.ColumnCandidates(person, 0), (std::vector<SymbolId>{ann}));
  EXPECT_EQ(domain.ColumnCandidates(likes, 1), (std::vector<SymbolId>{rock}));
  // Rule constants land in the global set.
  auto global = domain.GlobalCandidates();
  EXPECT_NE(std::find(global.begin(), global.end(), jazz), global.end());

  SymbolId extra = db->symbols().Intern("Extra");
  domain.AddExtra(extra);
  auto candidates = domain.ColumnCandidates(person, 0);
  EXPECT_NE(std::find(candidates.begin(), candidates.end(), extra),
            candidates.end());
}

TEST(ActiveDomainTest, GlobalFallbackForUnseenColumns) {
  auto db = Load(R"(
    base Seen/1. base Never/1.
    Seen(A).
  )");
  SymbolId never = db->database().FindPredicate("Never").value();
  ActiveDomain with_fallback(db->database(), true);
  EXPECT_FALSE(with_fallback.ColumnCandidates(never, 0).empty());
  ActiveDomain without(db->database(), false);
  EXPECT_TRUE(without.ColumnCandidates(never, 0).empty());
}

TEST(UpwardTest, GoalRestrictionSkipsUnrelatedPredicates) {
  auto db = Load(R"(
    base Q/1. base Z/1.
    view P/1.
    view Unrelated/1.
    P(x) <- Q(x).
    Unrelated(x) <- Z(x).
    Q(A). Z(A).
  )");
  auto compiled = db->Compiled();
  ASSERT_TRUE(compiled.ok());
  SymbolId p = db->database().FindPredicate("P").value();
  SymbolId unrelated = db->database().FindPredicate("Unrelated").value();
  auto txn = ParseTransaction(db.get(), "del Q(A), del Z(A)");
  ASSERT_TRUE(txn.ok());
  UpwardInterpreter upward(&db->database(), *compiled, UpwardOptions{});
  auto events = upward.InducedEventsFor(*txn, {p});
  ASSERT_TRUE(events.ok());
  SymbolId a = db->symbols().Intern("A");
  EXPECT_TRUE(events->ContainsDelete(p, {a}));
  EXPECT_FALSE(events->ContainsDelete(unrelated, {a}))
      << "unrelated predicate should not have been computed";
}

TEST(UpwardTest, InvalidEventsInduceNothing) {
  auto db = Load(kSmall);
  // ins Q(A) is not a valid event (Q(A) already holds): per eqs. 1-2 it is
  // simply not an event, so nothing is induced.
  SymbolId q = db->database().FindPredicate("Q").value();
  SymbolId a = db->symbols().Intern("A");
  Transaction txn;
  ASSERT_TRUE(txn.AddInsert(q, {a}).ok());
  auto events = db->InducedEvents(txn);
  ASSERT_TRUE(events.ok());
  EXPECT_TRUE(events->empty());
}

TEST(UpwardTest, CascadedEventsThroughTwoLevels) {
  auto db = Load(R"(
    base B/1.
    view Mid/1.
    view Top/1.
    Mid(x) <- B(x).
    Top(x) <- Mid(x).
    B(A).
  )");
  auto txn = ParseTransaction(db.get(), "del B(A)");
  ASSERT_TRUE(txn.ok());
  auto events = db->InducedEvents(*txn);
  ASSERT_TRUE(events.ok());
  EXPECT_EQ(events->ToString(db->symbols()), "{del Mid(A), del Top(A)}");
}

TEST(UpwardTest, EmptyTransactionInducesNothing) {
  auto db = Load(kSmall);
  Transaction txn;
  auto events = db->InducedEvents(txn);
  ASSERT_TRUE(events.ok());
  EXPECT_TRUE(events->empty());
}

TEST(DerivedEventsProviderTest, ServesComputedEvents) {
  auto db = Load(kSmall);
  ASSERT_TRUE(db->Compiled().ok());
  SymbolId p = db->database().FindPredicate("P").value();
  SymbolId b = db->symbols().Intern("B");
  DerivedEvents events;
  events.inserts.Add(p, {b});
  DerivedEventsProvider provider(&events, &db->database().predicates());
  SymbolId ins_p = db->database()
                       .predicates()
                       .FindVariant(p, PredicateVariant::kInsertEvent)
                       .value();
  EXPECT_TRUE(provider.Contains(ins_p, {b}));
  EXPECT_EQ(provider.EstimateCount(ins_p), 1u);
  // kOld symbols are not served.
  EXPECT_FALSE(provider.Contains(p, {b}));
}

class DownwardEdgeCases : public ::testing::Test {
 protected:
  void SetUp() override { db_ = Load(kSmall); }

  Result<Dnf> Down(const RequestedEvent& event) {
    auto compiled = db_->Compiled();
    EXPECT_TRUE(compiled.ok());
    auto domain = db_->Domain();
    EXPECT_TRUE(domain.ok());
    DownwardInterpreter downward(&db_->database(), *compiled, *domain);
    return downward.InterpretEvent(event);
  }

  RequestedEvent Event(bool is_insert, const char* pred,
                       std::vector<Term> args, bool positive = true) {
    RequestedEvent event;
    event.positive = positive;
    event.is_insert = is_insert;
    event.predicate = db_->database().FindPredicate(pred).value();
    event.args = std::move(args);
    return event;
  }

  std::unique_ptr<DeductiveDatabase> db_;
};

TEST_F(DownwardEdgeCases, InsertAlreadySatisfiedIsFalse) {
  // P(A) already holds: ιP(A) is not satisfiable (footnote 1).
  auto dnf = Down(Event(true, "P", {db_->Constant("A")}));
  ASSERT_TRUE(dnf.ok());
  EXPECT_TRUE(dnf->IsFalse());
}

TEST_F(DownwardEdgeCases, DeleteOfAbsentFactIsFalse) {
  auto dnf = Down(Event(false, "P", {db_->Constant("B")}));
  ASSERT_TRUE(dnf.ok());
  EXPECT_TRUE(dnf->IsFalse());
}

TEST_F(DownwardEdgeCases, NegativeOfImpossibleEventIsTrue) {
  // ¬ιP(A): ιP(A) cannot be induced (P(A) holds), so nothing is required.
  auto dnf = Down(Event(true, "P", {db_->Constant("A")}, /*positive=*/false));
  ASSERT_TRUE(dnf.ok());
  EXPECT_TRUE(dnf->IsTrue());
}

TEST_F(DownwardEdgeCases, BaseEventRequestPassesThrough) {
  auto dnf = Down(Event(false, "R", {db_->Constant("B")}));
  ASSERT_TRUE(dnf.ok());
  EXPECT_EQ(dnf->ToString(db_->symbols()), "(del R(B))");
  // Invalid base event: ins of an existing fact.
  auto invalid = Down(Event(true, "Q", {db_->Constant("A")}));
  ASSERT_TRUE(invalid.ok());
  EXPECT_TRUE(invalid->IsFalse());
}

TEST_F(DownwardEdgeCases, OpenRequestEnumeratesAlternatives) {
  // ιP(x): x=B via del R(B); x=A impossible (already holds); fresh
  // constants possible via domain for Q-insertions.
  auto dnf = Down(Event(true, "P", {db_->Variable("x")}));
  ASSERT_TRUE(dnf.ok()) << dnf.status();
  EXPECT_FALSE(dnf->IsFalse());
  // The del R(B) route must be among the alternatives.
  bool found = false;
  for (const Conjunct& c : dnf->disjuncts()) {
    for (const EventLiteral& lit : c.literals()) {
      found |= lit.positive && !lit.event.is_insert &&
               db_->symbols().NameOf(lit.event.predicate) == "R";
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(DownwardEdgeCases, OpenDeleteRangesOverExistingInstances) {
  auto dnf = Down(Event(false, "P", {db_->Variable("x")}));
  ASSERT_TRUE(dnf.ok());
  // Only P(A) exists; deleting it requires δQ(A) or ιR(A).
  EXPECT_EQ(dnf->ToString(db_->symbols()), "(del Q(A)) | (ins R(A))");
}

TEST_F(DownwardEdgeCases, StatsAreTracked) {
  auto compiled = db_->Compiled();
  auto domain = db_->Domain();
  DownwardInterpreter downward(&db_->database(), *compiled, *domain);
  ASSERT_TRUE(
      downward.InterpretEvent(Event(false, "P", {db_->Constant("A")})).ok());
  EXPECT_GT(downward.stats().branches_explored, 0u);
  EXPECT_GT(downward.stats().old_state_queries, 0u);
  EXPECT_GT(downward.stats().negations, 0u);
}

TEST_F(DownwardEdgeCases, InstantiationCapIsEnforced) {
  auto compiled = db_->Compiled();
  // Give R's column a candidate that is not already an R fact, so a valid
  // instantiation exists to trip the zero budget.
  ASSERT_TRUE(db_->AddDomainConstant("Fresh").ok());
  auto domain = db_->Domain();
  DownwardOptions options;
  options.max_instantiations = 0;
  DownwardInterpreter downward(&db_->database(), *compiled, *domain, options);
  // Open base insertion over R with a zero budget: the first valid
  // candidate instantiation (ins R(A)) already exceeds it.
  RequestedEvent event = Event(true, "R", {db_->Variable("x")});
  auto result = downward.InterpretEvent(event);
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace deddb
