// Differential tests of the parallel bottom-up evaluator against the serial
// oracle. For ~200 seeded random programs (hierarchical and recursive, with
// negation) the parallel evaluator at 1, 2 and 8 threads must produce exactly
// the same fact set and stratum count as the serial loop, and — because the
// round merge happens in a fixed work-item order — identical stats for every
// thread count >= 1. A subset of programs additionally compares query answers
// through a QueryEngine running on top of each evaluator mode. Handwritten
// programs cover negation, rule-less (empty) strata and empty results.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/deductive_database.h"
#include "eval/bottom_up.h"
#include "eval/query_engine.h"
#include "parser/parser.h"
#include "workload/random_programs.h"

namespace deddb {
namespace {

using workload::MakeRandomDatabase;
using workload::RandomProgramConfig;

struct EvalRun {
  std::string facts;  // canonical rendering of the full IDB
  EvaluationStats stats;
};

// Evaluates the whole program with the given thread count (0 = serial oracle)
// on a fresh evaluator and returns the canonical fact rendering plus stats.
Result<EvalRun> RunEval(const DeductiveDatabase& db, size_t num_threads) {
  FactStoreProvider edb(&db.database().facts());
  EvaluationOptions options;
  options.num_threads = num_threads;
  BottomUpEvaluator evaluator(db.database().program(), db.symbols(), edb,
                              options);
  DEDDB_ASSIGN_OR_RETURN(FactStore idb, evaluator.Evaluate());
  return EvalRun{idb.ToString(db.symbols()), evaluator.stats()};
}

// Asserts that every parallel thread count agrees with the serial oracle on
// the fact set and stratum count, and that all parallel runs have identical
// stats (the determinism guarantee).
void ExpectParallelMatchesSerial(const DeductiveDatabase& db,
                                 const std::string& label) {
  auto serial = RunEval(db, 0);
  ASSERT_TRUE(serial.ok()) << label << ": " << serial.status();
  std::vector<EvalRun> parallel;
  for (size_t threads : {1u, 2u, 8u}) {
    auto run = RunEval(db, threads);
    ASSERT_TRUE(run.ok()) << label << " threads=" << threads << ": "
                          << run.status();
    EXPECT_EQ(run->facts, serial->facts)
        << label << ": fact set diverged at threads=" << threads;
    EXPECT_EQ(run->stats.strata, serial->stats.strata)
        << label << ": stratum count diverged at threads=" << threads;
    EXPECT_EQ(run->stats.derived_facts, serial->stats.derived_facts)
        << label << ": derived_facts diverged at threads=" << threads;
    parallel.push_back(std::move(*run));
  }
  // Snapshot rounds are partition-invariant: every thread count >= 1 must
  // report byte-identical stats, not just the same fact set.
  for (size_t i = 1; i < parallel.size(); ++i) {
    EXPECT_EQ(parallel[i].stats.rounds, parallel[0].stats.rounds) << label;
    EXPECT_EQ(parallel[i].stats.rule_firings, parallel[0].stats.rule_firings)
        << label;
    EXPECT_EQ(parallel[i].stats.derived_facts, parallel[0].stats.derived_facts)
        << label;
  }
}

// ---------------------------------------------------------------------------
// Random-program sweep: 100 seeds × {hierarchical, recursive} = 200 programs.

class ParallelDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelDifferentialTest,
                         ::testing::Range<uint64_t>(1, 21));

TEST_P(ParallelDifferentialTest, HierarchicalProgramsAgree) {
  // 5 seeds per gtest parameter keeps the discovered-test count reasonable
  // while still sweeping 100 distinct programs per suite.
  for (uint64_t sub = 0; sub < 5; ++sub) {
    uint64_t seed = GetParam() * 5 + sub;
    RandomProgramConfig config;
    config.seed = seed;
    config.allow_recursion = false;
    config.facts_per_base = 25;
    auto db = MakeRandomDatabase(config);
    ASSERT_TRUE(db.ok()) << db.status();
    ExpectParallelMatchesSerial(**db, "hierarchical seed " +
                                          std::to_string(seed));
  }
}

TEST_P(ParallelDifferentialTest, RecursiveProgramsAgree) {
  for (uint64_t sub = 0; sub < 5; ++sub) {
    uint64_t seed = GetParam() * 5 + sub;
    RandomProgramConfig config;
    config.seed = seed;
    config.allow_recursion = true;
    config.derived_predicates = 8;
    config.facts_per_base = 25;
    auto db = MakeRandomDatabase(config);
    ASSERT_TRUE(db.ok()) << db.status();
    ExpectParallelMatchesSerial(**db,
                                "recursive seed " + std::to_string(seed));
  }
}

// Query answers through the engine must be independent of the evaluator
// mode: a materializing query over each derived predicate returns the same
// tuple set whether the engine's evaluator runs serially or with 8 threads.
TEST_P(ParallelDifferentialTest, QueryAnswersAgree) {
  RandomProgramConfig config;
  config.seed = GetParam();
  config.allow_recursion = true;
  config.facts_per_base = 25;
  auto db = MakeRandomDatabase(config);
  ASSERT_TRUE(db.ok()) << db.status();
  FactStoreProvider edb(&(*db)->database().facts());
  EvaluationOptions parallel_options;
  parallel_options.num_threads = 8;
  QueryEngine serial_engine((*db)->database().program(), (*db)->symbols(),
                            edb);
  QueryEngine parallel_engine((*db)->database().program(), (*db)->symbols(),
                              edb, parallel_options);
  for (size_t i = 0; i < config.derived_predicates; ++i) {
    std::string name = "D" + std::to_string(i);
    auto pred = (*db)->database().FindPredicate(name);
    ASSERT_TRUE(pred.ok()) << pred.status();
    auto info = (*db)->database().predicates().Get(*pred);
    ASSERT_TRUE(info.ok());
    std::vector<Term> args;
    for (size_t a = 0; a < info->arity; ++a) {
      args.push_back((*db)->Variable("q" + std::to_string(a)));
    }
    Atom pattern = (*db)->MakeAtom(name, std::move(args)).value();
    auto serial = serial_engine.SolveMaterialized(pattern);
    auto parallel = parallel_engine.SolveMaterialized(pattern);
    ASSERT_TRUE(serial.ok()) << serial.status();
    ASSERT_TRUE(parallel.ok()) << parallel.status();
    std::sort(serial->begin(), serial->end());
    std::sort(parallel->begin(), parallel->end());
    EXPECT_EQ(*serial, *parallel) << name << " seed " << GetParam();
  }
}

// ---------------------------------------------------------------------------
// Handwritten edge programs.

std::unique_ptr<DeductiveDatabase> Load(const char* source) {
  auto db = std::make_unique<DeductiveDatabase>();
  auto loaded = LoadProgram(db.get(), source);
  EXPECT_TRUE(loaded.ok()) << loaded.status();
  return db;
}

TEST(ParallelHandwrittenTest, NegationOverRulelessPredicate) {
  // Orphan has no rules: its stratum is empty, and Lonely's negative literal
  // must still see the (empty) whole relation — never a slice of it.
  auto db = Load(R"(
    base B/1.
    derived Orphan/1.
    derived Lonely/1.
    Lonely(x) <- B(x) & not Orphan(x).
    B(A). B(C). B(E).
  )");
  ExpectParallelMatchesSerial(*db, "ruleless-negation");
  auto run = RunEval(*db, 2);
  ASSERT_TRUE(run.ok());
  // A rule-less predicate yields no stratum: only Lonely's is evaluated.
  EXPECT_EQ(run->stats.strata, 1u);
  SymbolId lonely = db->database().FindPredicate("Lonely").value();
  FactStoreProvider edb(&db->database().facts());
  EvaluationOptions options;
  options.num_threads = 2;
  BottomUpEvaluator evaluator(db->database().program(), db->symbols(), edb,
                              options);
  auto idb = evaluator.Evaluate();
  ASSERT_TRUE(idb.ok());
  EXPECT_EQ(idb->Find(lonely)->size(), 3u);
}

TEST(ParallelHandwrittenTest, StratifiedNegationWithRecursion) {
  auto db = Load(R"(
    base Node/1.
    base Edge/2.
    derived Reaches/2.
    derived Isolated/1.
    Reaches(x, y) <- Edge(x, y).
    Reaches(x, y) <- Reaches(x, z) & Edge(z, y).
    Isolated(x) <- Node(x) & not Reaches(x, x).
    Node(A). Node(B). Node(C). Node(D).
    Edge(A, B). Edge(B, A). Edge(B, C). Edge(C, D).
  )");
  ExpectParallelMatchesSerial(*db, "negation-over-recursion");
}

TEST(ParallelHandwrittenTest, EmptyResultProgram) {
  // No base facts at all: every stratum fixpoints immediately on an empty
  // delta and the IDB stays empty in both modes.
  auto db = Load(R"(
    base B/1.
    derived D/1.
    derived E/1.
    D(x) <- B(x).
    E(x) <- D(x) & not B(x).
  )");
  ExpectParallelMatchesSerial(*db, "empty-result");
  auto run = RunEval(*db, 8);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->stats.derived_facts, 0u);
}

TEST(ParallelHandwrittenTest, ZeroArityPredicates) {
  auto db = Load(R"(
    base Switch/0.
    base Anything/0.
    derived Lamp/0.
    derived Dark/0.
    Lamp <- Switch.
    Dark <- not Lamp, Anything.
    Anything. Switch.
  )");
  ExpectParallelMatchesSerial(*db, "zero-arity");
}

TEST(ParallelHandwrittenTest, MutualRecursionStratum) {
  // Even/Odd over a successor chain: one stratum with two mutually
  // recursive rules, so every semi-naive round carries two delta slices.
  auto db = Load(R"(
    base Zero/1.
    base Succ/2.
    derived Even/1.
    derived Odd/1.
    Even(x) <- Zero(x).
    Odd(y) <- Even(x) & Succ(x, y).
    Even(y) <- Odd(x) & Succ(x, y).
    Zero(N0).
    Succ(N0, N1). Succ(N1, N2). Succ(N2, N3). Succ(N3, N4). Succ(N4, N5).
  )");
  ExpectParallelMatchesSerial(*db, "mutual-recursion");
  FactStoreProvider edb(&db->database().facts());
  EvaluationOptions options;
  options.num_threads = 4;
  BottomUpEvaluator evaluator(db->database().program(), db->symbols(), edb,
                              options);
  auto idb = evaluator.Evaluate();
  ASSERT_TRUE(idb.ok());
  SymbolId even = db->database().FindPredicate("Even").value();
  SymbolId odd = db->database().FindPredicate("Odd").value();
  EXPECT_EQ(idb->Find(even)->size(), 3u);  // N0 N2 N4
  EXPECT_EQ(idb->Find(odd)->size(), 3u);   // N1 N3 N5
}

// The naive-evaluation ablation must also be deterministic in parallel mode.
TEST(ParallelHandwrittenTest, NaiveModeAgreesToo) {
  auto db = Load(R"(
    base Edge/2.
    derived Path/2.
    Path(x, y) <- Edge(x, y).
    Path(x, y) <- Path(x, z) & Edge(z, y).
    Edge(A, B). Edge(B, C). Edge(C, D). Edge(D, E).
  )");
  FactStoreProvider edb(&db->database().facts());
  std::vector<std::string> renderings;
  for (size_t threads : {0u, 1u, 2u, 8u}) {
    EvaluationOptions options;
    options.semi_naive = false;
    options.num_threads = threads;
    BottomUpEvaluator evaluator(db->database().program(), db->symbols(), edb,
                                options);
    auto idb = evaluator.Evaluate();
    ASSERT_TRUE(idb.ok()) << "threads=" << threads << ": " << idb.status();
    renderings.push_back(idb->ToString(db->symbols()));
  }
  for (size_t i = 1; i < renderings.size(); ++i) {
    EXPECT_EQ(renderings[i], renderings[0]);
  }
}

}  // namespace
}  // namespace deddb
