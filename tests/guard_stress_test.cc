// Differential stress test of guarded evaluation: for ~100 seeded random
// programs, an evaluation that is interrupted mid-flight by a tight
// resource budget must leave no trace — an unguarded re-run over the same
// database produces exactly the fact set a fresh same-seed oracle computes,
// in serial and parallel mode alike.

#include <gtest/gtest.h>

#include <string>

#include "core/deductive_database.h"
#include "eval/bottom_up.h"
#include "util/resource_guard.h"
#include "workload/random_programs.h"

namespace deddb {
namespace {

using workload::MakeRandomDatabase;
using workload::RandomProgramConfig;

Result<FactStore> Evaluate(const DeductiveDatabase& db,
                           const ResourceGuard* guard, size_t num_threads) {
  FactStoreProvider edb(&db.database().facts());
  EvaluationOptions options;
  options.guard = guard;
  options.num_threads = num_threads;
  BottomUpEvaluator evaluator(db.database().program(), db.symbols(), edb,
                              options);
  return evaluator.Evaluate();
}

RandomProgramConfig ConfigFor(uint64_t seed, bool recursive) {
  RandomProgramConfig config;
  config.seed = seed;
  config.allow_recursion = recursive;
  config.derived_predicates = recursive ? 8 : 6;
  config.facts_per_base = 20;
  return config;
}

TEST(GuardStressTest, InterruptedRunsLeaveNoState) {
  size_t tripped = 0;
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    for (bool recursive : {false, true}) {
      RandomProgramConfig config = ConfigFor(seed, recursive);
      std::string label = (recursive ? "recursive" : "hierarchical");
      label += " seed " + std::to_string(seed);

      // Fresh-seed oracle: unguarded serial evaluation on its own instance.
      auto oracle_db = MakeRandomDatabase(config);
      ASSERT_TRUE(oracle_db.ok()) << label << ": " << oracle_db.status();
      auto oracle = Evaluate(**oracle_db, nullptr, 0);
      ASSERT_TRUE(oracle.ok()) << label << ": " << oracle.status();
      std::string expected = oracle->ToString((*oracle_db)->symbols());

      // Same-seed instance, interrupted by a tight derived-fact budget in
      // serial and parallel mode, then re-run unguarded.
      auto db = MakeRandomDatabase(config);
      ASSERT_TRUE(db.ok()) << label << ": " << db.status();
      std::string edb_before = (*db)->database().facts().ToString(
          (*db)->symbols());
      bool this_seed_tripped = false;
      for (size_t threads : {0u, 2u}) {
        ResourceLimits limits;
        limits.max_derived_facts = 3;
        ResourceGuard guard(limits);
        auto guarded = Evaluate(**db, &guard, threads);
        if (!guarded.ok()) {
          EXPECT_EQ(guarded.status().code(), StatusCode::kBudgetExceeded)
              << label;
          this_seed_tripped = true;
        }
        // Interrupted or not, the EDB is untouched...
        EXPECT_EQ((*db)->database().facts().ToString((*db)->symbols()),
                  edb_before)
            << label << " threads=" << threads;
        // ...and an unguarded re-run matches the fresh-seed oracle exactly.
        auto rerun = Evaluate(**db, nullptr, threads);
        ASSERT_TRUE(rerun.ok()) << label << ": " << rerun.status();
        EXPECT_EQ(rerun->ToString((*db)->symbols()), expected)
            << label << ": state leaked from interrupted run at threads="
            << threads;
      }
      if (this_seed_tripped) ++tripped;
    }
  }
  // The budget is tight enough that the sweep genuinely exercises the
  // interrupted path on most programs, not just the happy path.
  EXPECT_GE(tripped, 60u) << "budget never tripped; stress test is vacuous";
}

}  // namespace
}  // namespace deddb
