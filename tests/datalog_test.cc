// Unit tests of the datalog layer: symbols, terms, atoms, literals, rules,
// substitutions and unification.

#include <gtest/gtest.h>

#include "datalog/atom.h"
#include "util/strings.h"
#include "datalog/rule.h"
#include "datalog/substitution.h"
#include "datalog/symbol_table.h"
#include "datalog/term.h"
#include "datalog/unify.h"

namespace deddb {
namespace {

TEST(SymbolTableTest, InternIsIdempotent) {
  SymbolTable symbols;
  SymbolId a = symbols.Intern("Works");
  SymbolId b = symbols.Intern("Works");
  EXPECT_EQ(a, b);
  EXPECT_EQ(symbols.NameOf(a), "Works");
  EXPECT_EQ(symbols.size(), 1u);
}

TEST(SymbolTableTest, FindReturnsNoSymbolForUnknown) {
  SymbolTable symbols;
  EXPECT_EQ(symbols.Find("Nope"), SymbolTable::kNoSymbol);
  symbols.Intern("Yes");
  EXPECT_NE(symbols.Find("Yes"), SymbolTable::kNoSymbol);
}

TEST(SymbolTableTest, NameReferencesSurviveGrowth) {
  SymbolTable symbols;
  SymbolId first = symbols.Intern("First");
  const std::string& name = symbols.NameOf(first);
  for (int i = 0; i < 1000; ++i) symbols.Intern(StrCat("S", i));
  EXPECT_EQ(name, "First");  // deque storage keeps references valid
}

TEST(SymbolTableTest, VariablesHaveSeparateSpace) {
  SymbolTable symbols;
  SymbolId constant = symbols.Intern("x_as_constant");
  VarId var = symbols.InternVar("x_as_constant");
  EXPECT_EQ(symbols.NameOf(constant), symbols.VarNameOf(var));
  EXPECT_EQ(symbols.var_count(), 1u);
}

TEST(SymbolTableTest, FreshVarsAreDistinct) {
  SymbolTable symbols;
  VarId a = symbols.FreshVar();
  VarId b = symbols.FreshVar();
  EXPECT_NE(a, b);
  EXPECT_EQ(symbols.VarNameOf(a)[0], '_');
}

TEST(TermTest, VariableVsConstant) {
  Term v = Term::MakeVariable(3);
  Term c = Term::MakeConstant(3);
  EXPECT_TRUE(v.is_variable());
  EXPECT_TRUE(c.is_constant());
  EXPECT_NE(v, c);
  EXPECT_EQ(v.variable(), 3u);
  EXPECT_EQ(c.constant(), 3u);
  EXPECT_NE(v.Hash(), c.Hash());
}

TEST(TermTest, OrderingPutsVariablesFirst) {
  EXPECT_LT(Term::MakeVariable(9), Term::MakeConstant(0));
  EXPECT_LT(Term::MakeVariable(1), Term::MakeVariable(2));
  EXPECT_LT(Term::MakeConstant(1), Term::MakeConstant(2));
}

class AtomFixture : public ::testing::Test {
 protected:
  SymbolTable symbols_;
  SymbolId p_ = symbols_.Intern("P");
  SymbolId a_ = symbols_.Intern("A");
  SymbolId b_ = symbols_.Intern("B");
  VarId x_ = symbols_.InternVar("x");
  VarId y_ = symbols_.InternVar("y");

  Atom PA() { return Atom(p_, {Term::MakeConstant(a_)}); }
  Atom Px() { return Atom(p_, {Term::MakeVariable(x_)}); }
};

TEST_F(AtomFixture, GroundDetection) {
  EXPECT_TRUE(PA().IsGround());
  EXPECT_FALSE(Px().IsGround());
  EXPECT_TRUE(Atom(p_, {}).IsGround());  // 0-ary
}

TEST_F(AtomFixture, CollectVariables) {
  Atom atom(p_, {Term::MakeVariable(x_), Term::MakeConstant(a_),
                 Term::MakeVariable(x_)});
  std::vector<VarId> vars;
  atom.CollectVariables(&vars);
  EXPECT_EQ(vars, (std::vector<VarId>{x_, x_}));
}

TEST_F(AtomFixture, ToStringFormats) {
  EXPECT_EQ(PA().ToString(symbols_), "P(A)");
  EXPECT_EQ(Px().ToString(symbols_), "P(x)");
  EXPECT_EQ(Atom(p_, {}).ToString(symbols_), "P");
}

TEST_F(AtomFixture, EqualityAndHash) {
  EXPECT_EQ(PA(), PA());
  EXPECT_NE(PA(), Px());
  EXPECT_EQ(PA().Hash(), PA().Hash());
}

TEST_F(AtomFixture, LiteralPolarity) {
  Literal pos = Literal::Positive(PA());
  Literal neg = Literal::Negative(PA());
  EXPECT_TRUE(pos.positive());
  EXPECT_TRUE(neg.negative());
  EXPECT_EQ(pos.Negated(), neg);
  EXPECT_EQ(neg.Negated(), pos);
  EXPECT_EQ(pos.ToString(symbols_), "P(A)");
  EXPECT_EQ(neg.ToString(symbols_), "not P(A)");
  EXPECT_NE(pos.Hash(), neg.Hash());
}

class RuleFixture : public ::testing::Test {
 protected:
  SymbolTable symbols_;
  SymbolId p_ = symbols_.Intern("P");
  SymbolId q_ = symbols_.Intern("Q");
  SymbolId r_ = symbols_.Intern("R");
  VarId x_ = symbols_.InternVar("x");
  VarId y_ = symbols_.InternVar("y");

  // P(x) <- Q(x) & not R(x)
  Rule PaperRule() {
    Term x = Term::MakeVariable(x_);
    return Rule(Atom(p_, {x}), {Literal::Positive(Atom(q_, {x})),
                                Literal::Negative(Atom(r_, {x}))});
  }
};

TEST_F(RuleFixture, ToStringMatchesSyntax) {
  EXPECT_EQ(PaperRule().ToString(symbols_), "P(x) <- Q(x) & not R(x)");
}

TEST_F(RuleFixture, AllowedRulePasses) {
  EXPECT_TRUE(PaperRule().CheckAllowed(symbols_).ok());
}

TEST_F(RuleFixture, HeadVariableWithoutPositiveOccurrenceIsRejected) {
  // P(y) <- Q(x): y occurs only in the head.
  Rule bad(Atom(p_, {Term::MakeVariable(y_)}),
           {Literal::Positive(Atom(q_, {Term::MakeVariable(x_)}))});
  Status status = bad.CheckAllowed(symbols_);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST_F(RuleFixture, NegativeOnlyVariableIsRejected) {
  // P(x) <- Q(x) & not R(y): y occurs only negatively.
  Rule bad(Atom(p_, {Term::MakeVariable(x_)}),
           {Literal::Positive(Atom(q_, {Term::MakeVariable(x_)})),
            Literal::Negative(Atom(r_, {Term::MakeVariable(y_)}))});
  EXPECT_FALSE(bad.CheckAllowed(symbols_).ok());
}

TEST_F(RuleFixture, DistinctVariablesInOrder) {
  Term x = Term::MakeVariable(x_);
  Term y = Term::MakeVariable(y_);
  Rule rule(Atom(p_, {x}), {Literal::Positive(Atom(q_, {y})),
                            Literal::Positive(Atom(r_, {x}))});
  EXPECT_EQ(rule.DistinctVariables(), (std::vector<VarId>{x_, y_}));
}

TEST(SubstitutionTest, ApplyFollowsChains) {
  Substitution subst;
  subst.Bind(0, Term::MakeVariable(1));
  subst.Bind(1, Term::MakeConstant(7));
  EXPECT_EQ(subst.Apply(Term::MakeVariable(0)), Term::MakeConstant(7));
  EXPECT_EQ(subst.Apply(Term::MakeVariable(2)), Term::MakeVariable(2));
}

TEST(SubstitutionTest, UnbindRestores) {
  Substitution subst;
  subst.Bind(0, Term::MakeConstant(1));
  EXPECT_TRUE(subst.IsBound(0));
  subst.Unbind(0);
  EXPECT_FALSE(subst.IsBound(0));
  EXPECT_EQ(subst.Apply(Term::MakeVariable(0)), Term::MakeVariable(0));
}

TEST(SubstitutionTest, ApplyToAtomAndRule) {
  SymbolTable symbols;
  SymbolId p = symbols.Intern("P");
  SymbolId q = symbols.Intern("Q");
  SymbolId a = symbols.Intern("A");
  VarId x = symbols.InternVar("x");
  Substitution subst;
  subst.Bind(x, Term::MakeConstant(a));
  Rule rule(Atom(p, {Term::MakeVariable(x)}),
            {Literal::Positive(Atom(q, {Term::MakeVariable(x)}))});
  Rule applied = subst.Apply(rule);
  EXPECT_EQ(applied.ToString(symbols), "P(A) <- Q(A)");
}

TEST(UnifyTest, UnifiesVariableWithConstant) {
  SymbolTable symbols;
  SymbolId p = symbols.Intern("P");
  SymbolId a = symbols.Intern("A");
  VarId x = symbols.InternVar("x");
  Substitution subst;
  EXPECT_TRUE(UnifyAtoms(Atom(p, {Term::MakeVariable(x)}),
                         Atom(p, {Term::MakeConstant(a)}), &subst));
  EXPECT_EQ(subst.Apply(Term::MakeVariable(x)), Term::MakeConstant(a));
}

TEST(UnifyTest, FailsOnDistinctConstants) {
  SymbolTable symbols;
  SymbolId p = symbols.Intern("P");
  Substitution subst;
  EXPECT_FALSE(UnifyAtoms(
      Atom(p, {Term::MakeConstant(symbols.Intern("A"))}),
      Atom(p, {Term::MakeConstant(symbols.Intern("B"))}), &subst));
}

TEST(UnifyTest, FailsOnDifferentPredicatesOrArity) {
  SymbolTable symbols;
  SymbolId p = symbols.Intern("P");
  SymbolId q = symbols.Intern("Q");
  Substitution subst;
  EXPECT_FALSE(UnifyAtoms(Atom(p, {}), Atom(q, {}), &subst));
  EXPECT_FALSE(UnifyAtoms(Atom(p, {Term::MakeConstant(0)}), Atom(p, {}),
                          &subst));
}

TEST(UnifyTest, RepeatedVariablesUnifyConsistently) {
  SymbolTable symbols;
  SymbolId p = symbols.Intern("P");
  SymbolId a = symbols.Intern("A");
  SymbolId b = symbols.Intern("B");
  VarId x = symbols.InternVar("x");
  // P(x, x) with P(A, B) must fail; with P(A, A) must succeed.
  Substitution s1;
  EXPECT_FALSE(UnifyAtoms(
      Atom(p, {Term::MakeVariable(x), Term::MakeVariable(x)}),
      Atom(p, {Term::MakeConstant(a), Term::MakeConstant(b)}), &s1));
  Substitution s2;
  EXPECT_TRUE(UnifyAtoms(
      Atom(p, {Term::MakeVariable(x), Term::MakeVariable(x)}),
      Atom(p, {Term::MakeConstant(a), Term::MakeConstant(a)}), &s2));
}

TEST(UnifyTest, VariableToVariableBinding) {
  SymbolTable symbols;
  SymbolId p = symbols.Intern("P");
  SymbolId a = symbols.Intern("A");
  VarId x = symbols.InternVar("x");
  VarId y = symbols.InternVar("y");
  Substitution subst;
  EXPECT_TRUE(UnifyAtoms(Atom(p, {Term::MakeVariable(x)}),
                         Atom(p, {Term::MakeVariable(y)}), &subst));
  // Binding either one grounds both.
  subst.Bind(y, Term::MakeConstant(a));
  EXPECT_EQ(subst.Apply(Term::MakeVariable(x)), Term::MakeConstant(a));
}

TEST(MatchTest, MatchAtomAgainstTuple) {
  SymbolTable symbols;
  SymbolId p = symbols.Intern("P");
  SymbolId a = symbols.Intern("A");
  SymbolId b = symbols.Intern("B");
  VarId x = symbols.InternVar("x");
  Atom pattern(p, {Term::MakeVariable(x), Term::MakeConstant(b)});
  Substitution subst;
  EXPECT_TRUE(MatchAtomAgainstTuple(pattern, {a, b}, &subst));
  EXPECT_EQ(subst.Apply(Term::MakeVariable(x)), Term::MakeConstant(a));
  Substitution subst2;
  EXPECT_FALSE(MatchAtomAgainstTuple(pattern, {a, a}, &subst2));
}

}  // namespace
}  // namespace deddb
