// The standing-query proof (DESIGN.md §11): 100 seeded runs, each starting
// a Server behind a FaultyNetwork and driving it with 1-2 tokened writers
// and 2-4 subscribers holding client-side materialized views. Subscribers
// pick wildcard base patterns, a bound-argument filter, or the derived
// predicate; every ~5 applied deltas they force-drop their connection and
// resubscribe with resume_from_version, falling back to a fresh snapshot
// when the server cannot resume.
//
// The oracle is offline full re-derivation. Writers own disjoint constant
// sets, so with exactly-once tokens every acknowledged write commits at a
// unique version and the acked set replays deterministically: a second
// facade with the identical program applies the acked transactions in
// version order, and at every version where some subscriber checkpointed
// its view, a snapshot session re-derives the subscribed pattern and the
// renderings must agree byte-for-byte (canonicalized line order — symbol
// ids are client-local, names are not). SubView::Apply doubles as the
// ordering tripwire: a duplicated, reordered, or divergent delta fails the
// apply and with it the seed. The suite also asserts the machinery engaged
// per shard: deltas flowed, connections were force-dropped, and resumes
// were confirmed by the server.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "core/deductive_database.h"
#include "history_harness.h"
#include "parser/parser.h"
#include "server/chaos.h"
#include "server/client.h"
#include "server/server.h"
#include "server/transport.h"
#include "sub/cdc.h"
#include "sub/view.h"
#include "util/rng.h"
#include "util/strings.h"

namespace deddb::server {
namespace {

namespace hh = harness;

constexpr const char* kProgram =
    "base Q/1. base R/1. view P/1. P(x) <- Q(x) & not R(x).";
constexpr const char* kBasePreds[] = {"Q", "R"};
/// Writer 0 always exists, so this constant is a valid bound filter target.
constexpr const char* kBoundConstant = "w0c0";
constexpr size_t kConstantsPerWriter = 4;
constexpr int kOpsPerWriter = 20;
constexpr int kPatternKinds = 4;  // Q(x), R(x), P(x), Q(w0c0)

/// Table-independent rendering: SubView::ToString orders lines by
/// client-local SymbolId, so two tables that interned the same names in a
/// different order disagree on line order but not on the line set.
std::string CanonLines(const std::string& rendering) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < rendering.size()) {
    size_t end = rendering.find('\n', start);
    if (end == std::string::npos) end = rendering.size();
    if (end > start) lines.push_back(rendering.substr(start, end - start));
    start = end + 1;
  }
  std::sort(lines.begin(), lines.end());
  return Join(lines, "\n");
}

Atom ClientPattern(Client* client, int kind) {
  switch (kind) {
    case 0:
      return client->MakeAtom("Q", {client->Variable("x")});
    case 1:
      return client->MakeAtom("R", {client->Variable("x")});
    case 2:
      return client->MakeAtom("P", {client->Variable("x")});
    default:
      return client->GroundAtom("Q", {kBoundConstant});
  }
}

Result<Atom> OraclePattern(DeductiveDatabase* db, int kind) {
  switch (kind) {
    case 0:
      return db->MakeAtom("Q", {db->Variable("x")});
    case 1:
      return db->MakeAtom("R", {db->Variable("x")});
    case 2:
      return db->MakeAtom("P", {db->Variable("x")});
    default:
      return db->GroundAtom("Q", {kBoundConstant});
  }
}

/// The acked-write log and the chaos-client plumbing come from
/// tests/history_harness.h; hh::AckedWrite's name-based events are exactly
/// what the offline facade needs to rebuild transactions against its own
/// symbol table.
struct WriterLog {
  std::vector<hh::AckedWrite> writes;
  std::vector<std::string> errors;
};

/// One tokened writer over its own disjoint constant set. Because nobody
/// else touches those constants, the locally tracked presence set is exact
/// and every submitted transaction is valid: any error — including a
/// validity rejection — fails the seed.
void WriterLoop(LoopbackNetwork* network, FaultyNetwork* chaos,
                uint64_t client_id, uint64_t seed, size_t writer_index,
                const std::atomic<size_t>* subscribers_ready, size_t num_subs,
                WriterLog* log) {
  // Commit nothing until every subscriber issued its first Subscribe, so
  // the delta stream and the writers genuinely overlap.
  while (subscribers_ready->load() < num_subs) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  Rng rng(seed);
  Client client(hh::DialThrough(network, chaos),
                hh::RetryOptions(client_id, seed));

  std::set<std::pair<size_t, size_t>> present;  // (pred index, const index)
  for (int op = 0; op < kOpsPerWriter; ++op) {
    Transaction txn;
    hh::AckedWrite write;
    std::set<std::pair<size_t, size_t>> touched;
    const size_t num_events = 1 + rng.NextBelow(2);
    for (size_t e = 0; e < num_events; ++e) {
      const size_t p = rng.NextBelow(2);
      const size_t c = rng.NextBelow(kConstantsPerWriter);
      if (!touched.insert({p, c}).second) continue;
      const std::string cname = StrCat("w", writer_index, "c", c);
      Atom fact = client.GroundAtom(kBasePreds[p], {cname});
      const bool is_present = present.count({p, c}) > 0;
      Status added = is_present ? txn.AddDelete(fact) : txn.AddInsert(fact);
      if (!added.ok()) {
        log->errors.push_back(added.ToString());
        return;
      }
      write.events.emplace_back(kBasePreds[p], cname, !is_present);
    }
    Result<ApplyReply> reply = client.Apply(txn);
    if (!reply.ok()) {
      log->errors.push_back(
          StrCat("write gave up: ", reply.status().ToString()));
      break;
    }
    write.version = reply->version;
    for (const auto& pc : touched) {
      if (present.count(pc) > 0) {
        present.erase(pc);
      } else {
        present.insert(pc);
      }
    }
    log->writes.push_back(std::move(write));
  }
  client.Close();
}

struct Checkpoint {
  uint64_t version = 0;
  std::string lines;  // CanonLines of the view rendering at `version`
};

struct SubLog {
  std::vector<Checkpoint> checkpoints;
  std::vector<std::string> errors;
  std::vector<std::string> trace;  // diagnostics: every stream event
  uint64_t deltas_applied = 0;
  uint64_t reconnects = 0;
  uint64_t resumes_confirmed = 0;
  uint64_t snapshot_restarts = 0;
  uint64_t gaps = 0;
};

/// One subscriber holding a SubView. Every applied delta (and every fresh
/// snapshot) records a checkpoint; SubView::Apply failing is the ordering/
/// divergence tripwire and fails the seed. After ~5 applied deltas the
/// connection is force-dropped to exercise mid-stream reconnect with
/// resume-from-version.
void SubscriberLoop(LoopbackNetwork* network, FaultyNetwork* chaos, int kind,
                    uint64_t seed, const std::atomic<bool>* done,
                    std::atomic<size_t>* subscribers_ready, SubLog* log) {
  Client client(hh::DialThrough(network, chaos), hh::RetryOptions(0, seed));
  Atom pattern = ClientPattern(&client, kind);
  sub::SubView view;
  uint64_t sub_id = 0;
  const uint64_t drop_every = 4 + seed % 3;

  auto establish = [&](bool try_resume) -> bool {
    Client::SubscribeOptions options;
    options.max_queued = 64;
    if (try_resume && view.version() != 0) {
      options.resume_from_version = view.version();
    }
    Result<SubscribeReply> reply = client.Subscribe(pattern, options);
    if (!reply.ok()) {
      if (!done->load()) {
        log->errors.push_back(
            StrCat("subscribe: ", reply.status().ToString()));
      }
      return false;
    }
    sub_id = reply->sub_id;
    log->trace.push_back(StrCat("sub#", sub_id, " resumed=", reply->resumed,
                                " at v", reply->version, " snap=",
                                reply->snapshot.size()));
    if (reply->resumed) {
      // The retained window replays (view.version, now] as ordinary pushes;
      // the view carries over.
      ++log->resumes_confirmed;
    } else {
      ++log->snapshot_restarts;
      view.Reset(reply->version, std::move(reply->snapshot));
      log->checkpoints.push_back(
          {view.version(), CanonLines(view.ToString(client.symbols()))});
    }
    return true;
  };

  const bool started = establish(false);
  subscribers_ready->fetch_add(1);
  if (!started) {
    client.Close();
    return;
  }

  uint64_t applied_since_drop = 0;
  while (true) {
    Result<Client::PushEvent> push = client.AwaitPush();
    if (!push.ok()) {
      log->trace.push_back(StrCat("await failed: ", push.status().ToString()));
      if (done->load()) break;
      ++log->reconnects;
      if (!establish(true)) break;
      continue;
    }
    if (push->is_gap) {
      // A gap for a previous incarnation's subscription is stale noise.
      log->trace.push_back(StrCat("gap sub#", push->gap.sub_id, " v",
                                  push->gap.version));
      if (push->gap.sub_id != sub_id) continue;
      ++log->gaps;
      if (!establish(true)) break;
      continue;
    }
    {
      std::string line = StrCat("delta sub#", push->delta.sub_id, " v",
                                push->delta.version);
      for (const Tuple& t : push->delta.inserts) {
        line += StrCat(" +", client.symbols().NameOf(t[0]));
      }
      for (const Tuple& t : push->delta.deletes) {
        line += StrCat(" -", client.symbols().NameOf(t[0]));
      }
      if (push->delta.sub_id != sub_id) line += " SKIP";
      log->trace.push_back(std::move(line));
    }
    if (push->delta.sub_id != sub_id) continue;

    sub::DeltaBatch batch;
    batch.version = push->delta.version;
    batch.inserts = std::move(push->delta.inserts);
    batch.deletes = std::move(push->delta.deletes);
    Status applied = view.Apply(batch);
    if (!applied.ok()) {
      std::string history;
      for (const Checkpoint& cp : log->checkpoints) {
        history += StrCat(" v", cp.version);
      }
      log->errors.push_back(StrCat(
          "apply at v", batch.version, " onto view at v", view.version(),
          " (", batch.inserts.size(), " ins / ", batch.deletes.size(),
          " del; reconnects=", log->reconnects,
          " resumes=", log->resumes_confirmed,
          " restarts=", log->snapshot_restarts, "; checkpoints:", history,
          "): ", applied.ToString()));
      break;
    }
    ++log->deltas_applied;
    log->checkpoints.push_back(
        {view.version(), CanonLines(view.ToString(client.symbols()))});
    if (++applied_since_drop >= drop_every) {
      applied_since_drop = 0;
      client.Close();  // next AwaitPush fails -> reconnect with resume
    }
  }
  client.Close();
}

struct ShardTotals {
  uint64_t faults = 0;
  uint64_t deltas = 0;
  uint64_t reconnects = 0;
  uint64_t resumes = 0;
  uint64_t checkpoints_verified = 0;
};

void RunSeed(uint64_t seed, ShardTotals* totals) {
  SCOPED_TRACE(StrCat("seed=", seed));

  auto db = std::make_unique<DeductiveDatabase>();
  Result<size_t> loaded = LoadProgram(db.get(), kProgram);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const uint64_t base_version = db->version();

  FaultyNetwork::Options faults;
  faults.seed = seed * 131 + 7;
  faults.reset_read_per_mille = 10;
  faults.truncate_write_per_mille = 10;
  faults.delay_per_mille = 30;
  faults.max_delay_us = 300;
  FaultyNetwork chaos(faults);

  LoopbackNetwork network;
  Server server(db.get());
  ASSERT_TRUE(server.Serve(chaos.WrapListener(network.TakeListener())).ok());

  const size_t num_writers = 1 + seed % 2;
  const size_t num_subs = 2 + seed % 3;
  std::atomic<bool> done{false};
  std::atomic<size_t> subscribers_ready{0};

  std::vector<int> kinds(num_subs);
  for (size_t i = 0; i < num_subs; ++i) {
    kinds[i] = static_cast<int>((i + seed) % kPatternKinds);
  }

  std::vector<SubLog> sub_logs(num_subs);
  std::vector<WriterLog> writer_logs(num_writers);
  std::vector<std::thread> subscribers;
  subscribers.reserve(num_subs);
  for (size_t i = 0; i < num_subs; ++i) {
    subscribers.emplace_back(SubscriberLoop, &network, &chaos, kinds[i],
                             seed * 977 + i, &done, &subscribers_ready,
                             &sub_logs[i]);
  }
  std::vector<std::thread> writers;
  writers.reserve(num_writers);
  for (size_t i = 0; i < num_writers; ++i) {
    writers.emplace_back(WriterLoop, &network, &chaos, /*client_id=*/i + 1,
                         seed * 1000 + i, i, &subscribers_ready, num_subs,
                         &writer_logs[i]);
  }
  for (std::thread& thread : writers) thread.join();
  done.store(true);
  server.Stop();  // closes connections; blocked AwaitPush calls fail out
  for (std::thread& thread : subscribers) thread.join();

  for (size_t i = 0; i < num_writers; ++i) {
    SCOPED_TRACE(StrCat("writer=", i));
    ASSERT_TRUE(writer_logs[i].errors.empty()) << writer_logs[i].errors.front();
  }
  for (size_t i = 0; i < num_subs; ++i) {
    SCOPED_TRACE(StrCat("subscriber=", i));
    if (!sub_logs[i].errors.empty()) {
      std::string dump = sub_logs[i].errors.front();
      dump += "\n--- stream trace ---";
      for (const std::string& line : sub_logs[i].trace) {
        dump += "\n" + line;
      }
      dump += "\n--- acked writes ---";
      for (const WriterLog& wlog : writer_logs) {
        for (const hh::AckedWrite& w : wlog.writes) {
          dump += StrCat("\nv", w.version, ":");
          for (const auto& [pred, cname, ins] : w.events) {
            dump += StrCat(" ", ins ? "+" : "-", pred, "(", cname, ")");
          }
        }
      }
      FAIL() << dump;
    }
    ASSERT_GE(sub_logs[i].checkpoints.size(), 1u);
    totals->deltas += sub_logs[i].deltas_applied;
    totals->reconnects += sub_logs[i].reconnects;
    totals->resumes += sub_logs[i].resumes_confirmed;
  }
  totals->faults += chaos.resets_injected() + chaos.truncations_injected();

  // ---- Offline replay against full re-derivation ----------------------------
  // Writers' constant sets are disjoint and their tokens exactly-once, so
  // the acked writes at their acked versions are the complete, densely
  // numbered commit history of the run.
  std::map<uint64_t, const hh::AckedWrite*> acked;
  for (const WriterLog& log : writer_logs) {
    for (const hh::AckedWrite& write : log.writes) {
      ASSERT_TRUE(acked.emplace(write.version, &write).second)
          << "two writes acknowledged commit version " << write.version;
    }
  }
  uint64_t expect = base_version;
  for (const auto& [version, write] : acked) {
    (void)write;
    ASSERT_EQ(version, expect + 1)
        << "acked commit versions are not dense — a commit was lost";
    expect = version;
  }

  DeductiveDatabase oracle_db;
  Result<size_t> reloaded = LoadProgram(&oracle_db, kProgram);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  ASSERT_EQ(oracle_db.version(), base_version);

  std::multimap<uint64_t, std::pair<int, const std::string*>> checks;
  for (size_t i = 0; i < num_subs; ++i) {
    for (const Checkpoint& cp : sub_logs[i].checkpoints) {
      ASSERT_TRUE(cp.version == base_version || acked.count(cp.version) > 0)
          << "checkpoint at unacknowledged version " << cp.version;
      checks.emplace(cp.version, std::make_pair(kinds[i], &cp.lines));
    }
  }

  auto verify_at = [&](uint64_t version) {
    auto range = checks.equal_range(version);
    if (range.first == range.second) return;
    Result<std::unique_ptr<Session>> session = oracle_db.BeginSession();
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    ASSERT_EQ((*session)->version(), version);
    for (auto it = range.first; it != range.second; ++it) {
      Result<Atom> pattern = OraclePattern(&oracle_db, it->second.first);
      ASSERT_TRUE(pattern.ok()) << pattern.status().ToString();
      Result<std::vector<Tuple>> answers = (*session)->Solve(*pattern);
      ASSERT_TRUE(answers.ok()) << answers.status().ToString();
      sub::SubView rederived;
      rederived.Reset(version, std::move(*answers));
      EXPECT_EQ(*it->second.second,
                CanonLines(rederived.ToString(oracle_db.symbols())))
          << "subscriber view diverged from full re-derivation at version "
          << version << " (pattern kind " << it->second.first << ")";
      ++totals->checkpoints_verified;
    }
  };

  verify_at(base_version);
  if (::testing::Test::HasFatalFailure()) return;
  for (const auto& [version, write] : acked) {
    std::vector<std::pair<DeductiveDatabase::Op, Atom>> events;
    events.reserve(write->events.size());
    for (const auto& [pred, cname, ins] : write->events) {
      Result<Atom> atom = oracle_db.GroundAtom(pred, {cname});
      ASSERT_TRUE(atom.ok()) << atom.status().ToString();
      events.emplace_back(ins ? DeductiveDatabase::Op::kInsert
                              : DeductiveDatabase::Op::kDelete,
                          *atom);
    }
    Result<Transaction> txn = oracle_db.MakeTransaction(std::move(events));
    ASSERT_TRUE(txn.ok()) << txn.status().ToString();
    Status applied = oracle_db.Apply(*txn);
    ASSERT_TRUE(applied.ok()) << applied.ToString();
    ASSERT_EQ(oracle_db.version(), version);
    verify_at(version);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

class SubHistoryTest : public ::testing::TestWithParam<int> {};

TEST_P(SubHistoryTest, SubscriberViewsMatchRederivationUnderChaos) {
  // 10 seeds per shard x 10 shards = the 100-seed suite. The
  // machinery-engaged assertions hold per shard, not per seed: every shard
  // delivers deltas, forces mid-stream reconnects, and confirms resumes.
  const int shard = GetParam();
  ShardTotals totals;
  for (int i = 0; i < 10; ++i) {
    RunSeed(static_cast<uint64_t>(shard * 10 + i), &totals);
    if (::testing::Test::HasFatalFailure()) return;
  }
  EXPECT_GT(totals.faults, 0u) << "the chaos transport injected nothing";
  EXPECT_GT(totals.deltas, 0u) << "no subscriber ever applied a delta";
  EXPECT_GT(totals.reconnects, 0u) << "no subscriber ever reconnected";
  EXPECT_GT(totals.resumes, 0u) << "no resume-from-version was confirmed";
  EXPECT_GT(totals.checkpoints_verified, 0u);
}

INSTANTIATE_TEST_SUITE_P(Matrix, SubHistoryTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace deddb::server
