// Parameterized sweep over derivation towers: deep cascades exercised in
// both compilation modes and both upward strategies, and downward requests
// pushed through every depth. Complements the randomized property suite
// with a structured, worst-case-ish shape (events must traverse every
// layer).

#include <gtest/gtest.h>

#include "core/deductive_database.h"
#include "workload/towers.h"

namespace deddb {
namespace {

struct TowerParam {
  size_t depth;
  bool with_negation;
  bool simplify;
};

class TowerSweepTest : public ::testing::TestWithParam<TowerParam> {
 protected:
  void SetUp() override {
    workload::TowerConfig config;
    config.depth = GetParam().depth;
    config.with_negation = GetParam().with_negation;
    config.simplify = GetParam().simplify;
    config.base_facts = 30;
    auto db = workload::MakeTowerDatabase(config);
    ASSERT_TRUE(db.ok()) << db.status();
    db_ = std::move(*db);
    top_ = db_->database()
               .FindPredicate(workload::TowerLayerName(GetParam().depth))
               .value();
    b0_ = db_->database().FindPredicate("B0").value();
    e0_ = db_->symbols().Intern(workload::TowerElementName(0));
  }

  std::unique_ptr<DeductiveDatabase> db_;
  SymbolId top_ = 0;
  SymbolId b0_ = 0;
  SymbolId e0_ = 0;
};

INSTANTIATE_TEST_SUITE_P(
    Shapes, TowerSweepTest,
    ::testing::Values(TowerParam{1, false, false}, TowerParam{1, true, true},
                      TowerParam{3, false, true}, TowerParam{3, true, false},
                      TowerParam{6, false, false}, TowerParam{6, true, true},
                      TowerParam{9, true, true},
                      TowerParam{9, false, true}),
    [](const ::testing::TestParamInfo<TowerParam>& info) {
      return "d" + std::to_string(info.param.depth) +
             (info.param.with_negation ? "_neg" : "_pos") +
             (info.param.simplify ? "_simp" : "_raw");
    });

TEST_P(TowerSweepTest, DeletionAtBottomCascadesToTop) {
  Transaction txn;
  ASSERT_TRUE(txn.AddDelete(b0_, {e0_}).ok());
  auto events = db_->InducedEvents(txn);
  ASSERT_TRUE(events.ok()) << events.status();
  // Element 0 passes every gate, so its deletion reaches every layer.
  for (size_t layer = 1; layer <= GetParam().depth; ++layer) {
    SymbolId pred = db_->database()
                        .FindPredicate(workload::TowerLayerName(layer))
                        .value();
    EXPECT_TRUE(events->ContainsDelete(pred, {e0_})) << "layer " << layer;
  }
}

TEST_P(TowerSweepTest, StrategiesAgreeOnCascade) {
  Transaction txn;
  ASSERT_TRUE(txn.AddDelete(b0_, {e0_}).ok());
  auto compiled = db_->Compiled();
  ASSERT_TRUE(compiled.ok());

  std::vector<std::string> renderings;
  for (UpwardStrategy strategy :
       {UpwardStrategy::kEventRules, UpwardStrategy::kRecompute}) {
    UpwardOptions options;
    options.strategy = strategy;
    UpwardInterpreter upward(&db_->database(), *compiled, options);
    auto events = upward.InducedEvents(txn);
    ASSERT_TRUE(events.ok()) << events.status();
    renderings.push_back(events->ToString(db_->symbols()));
  }
  EXPECT_EQ(renderings[0], renderings[1]);
}

TEST_P(TowerSweepTest, DownwardInsertAtTopIsSatisfiableAndVerified) {
  UpdateRequest request;
  RequestedEvent event;
  event.is_insert = true;
  event.predicate = top_;
  event.args = {db_->Constant("Fresh")};
  request.events.push_back(event);
  auto result = db_->TranslateViewUpdate(request);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(result->Satisfiable());
  // Verify the first translation through the upward interpretation.
  auto events = db_->InducedEvents(result->translations[0].transaction);
  ASSERT_TRUE(events.ok()) << events.status();
  SymbolId fresh = db_->symbols().Intern("Fresh");
  EXPECT_TRUE(events->ContainsInsert(top_, {fresh}))
      << result->translations[0].ToString(db_->symbols());
}

TEST_P(TowerSweepTest, DownwardDeleteAtTopIsSatisfiableAndVerified) {
  UpdateRequest request;
  RequestedEvent event;
  event.is_insert = false;
  event.predicate = top_;
  event.args = {Term::MakeConstant(e0_)};
  request.events.push_back(event);
  auto result = db_->TranslateViewUpdate(request);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(result->Satisfiable());
  auto events = db_->InducedEvents(result->translations[0].transaction);
  ASSERT_TRUE(events.ok()) << events.status();
  EXPECT_TRUE(events->ContainsDelete(top_, {e0_}))
      << result->translations[0].ToString(db_->symbols());
}

}  // namespace
}  // namespace deddb
