// The index-invariant property suite: after randomized sequences of
// Apply / rejected-Apply (rollback) / Checkpoint / session-pin operations,
// every composite and column index's postings must exactly cover the
// relation's tuples — Relation::ValidateIndexes proves the bijection (slot
// table, posting sums, bucket keys) and FactStore::ValidateIndexes sweeps
// every relation, including the ones snapshot sessions still pin. The
// ConcurrentReaders test runs the same validation from reader threads while
// the writer commits; the TSan CI job is its race proof.

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/deductive_database.h"
#include "parser/parser.h"
#include "util/strings.h"
#include "workload/random_programs.h"

namespace deddb {
namespace {

// A schema whose join shape makes the advisor declare a composite index on
// E's first two columns (see index_advisor.h), so every Apply below
// exercises incremental composite maintenance through the COW commit path.
constexpr char kTernaryProgram[] = R"(
  base B/2.
  base E/3.
  derived D/1.
  D(z) <- B(x, y) & E(x, y, z).
)";

constexpr size_t kConstants = 6;

std::string ConstName(size_t i) { return StrCat("K", i); }

// Tracks the EDB contents alongside the facade so the test can build
// transactions that are valid (ins of absent, del of present) or invalid on
// purpose.
class OpDriver {
 public:
  explicit OpDriver(DeductiveDatabase* db, uint64_t seed)
      : db_(db), rng_(seed) {}

  std::array<size_t, 3> RandomTriple() {
    return {rng_() % kConstants, rng_() % kConstants, rng_() % kConstants};
  }

  Result<Atom> EAtom(const std::array<size_t, 3>& t) {
    return db_->GroundAtom(
        "E", {ConstName(t[0]), ConstName(t[1]), ConstName(t[2])});
  }

  // Applies one random valid transaction (a mix of inserts of absent facts
  // and deletes of present ones).
  void ApplyValid() {
    std::vector<std::pair<DeductiveDatabase::Op, Atom>> events;
    size_t size = 1 + rng_() % 4;
    std::set<std::array<size_t, 3>> pending_ins;
    std::set<std::array<size_t, 3>> pending_del;
    for (size_t i = 0; i < size; ++i) {
      bool del = !facts_.empty() && rng_() % 2 == 0;
      if (del) {
        auto it = facts_.begin();
        std::advance(it, rng_() % facts_.size());
        if (!pending_del.insert(*it).second) continue;
        PushEvent(DeductiveDatabase::Op::kDelete, *it, &events);
      } else {
        std::array<size_t, 3> t = RandomTriple();
        if (facts_.count(t) != 0 || !pending_ins.insert(t).second) continue;
        PushEvent(DeductiveDatabase::Op::kInsert, t, &events);
      }
    }
    if (events.empty()) return;
    auto txn = db_->MakeTransaction(std::move(events));
    ASSERT_TRUE(txn.ok()) << txn.status();
    Status applied = db_->Apply(*txn);
    ASSERT_TRUE(applied.ok()) << applied;
    for (const auto& t : pending_ins) facts_.insert(t);
    for (const auto& t : pending_del) facts_.erase(t);
  }

  // Applies a transaction that must be rejected (deleting an absent fact);
  // the store must be left exactly as it was.
  void ApplyInvalid() {
    std::array<size_t, 3> t;
    do {
      t = RandomTriple();
    } while (facts_.count(t) != 0);
    std::vector<std::pair<DeductiveDatabase::Op, Atom>> events;
    PushEvent(DeductiveDatabase::Op::kDelete, t, &events);
    auto txn = db_->MakeTransaction(std::move(events));
    ASSERT_TRUE(txn.ok()) << txn.status();
    EXPECT_FALSE(db_->Apply(*txn).ok()) << "rejection expected";
  }

  size_t fact_count() const { return facts_.size(); }
  std::mt19937_64& rng() { return rng_; }

 private:
  // gtest's ASSERT_* macros need a void-returning context.
  void PushEvent(
      DeductiveDatabase::Op op, const std::array<size_t, 3>& t,
      std::vector<std::pair<DeductiveDatabase::Op, Atom>>* events) {
    auto atom = EAtom(t);
    ASSERT_TRUE(atom.ok()) << atom.status();
    events->emplace_back(op, *atom);
  }

  DeductiveDatabase* db_;
  std::mt19937_64 rng_;
  std::set<std::array<size_t, 3>> facts_;
};

void ExpectIndexesValid(const DeductiveDatabase& db, const std::string& at) {
  Status status = db.database().facts().ValidateIndexes(db.symbols());
  ASSERT_TRUE(status.ok()) << at << ": " << status;
}

class IndexInvariantTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, IndexInvariantTest,
                         ::testing::Range<uint64_t>(0, 10));

// In-memory: random Apply / rejected-Apply / session-pin sequences, with the
// full index invariant checked after every single operation — on the
// writer's store and on every pinned snapshot.
TEST_P(IndexInvariantTest, RandomApplyRollbackSessionSequences) {
  DeductiveDatabase db;
  ASSERT_TRUE(LoadProgram(&db, kTernaryProgram).ok());
  OpDriver driver(&db, /*seed=*/100 + GetParam());
  std::vector<std::unique_ptr<Session>> sessions;

  for (size_t op = 0; op < 60; ++op) {
    switch (driver.rng()() % 5) {
      case 0:
      case 1:
      case 2:
        driver.ApplyValid();
        break;
      case 3:
        driver.ApplyInvalid();
        break;
      case 4:
        if (sessions.size() < 4 && (driver.rng()() % 2 == 0)) {
          auto session = db.BeginSession();
          ASSERT_TRUE(session.ok()) << session.status();
          sessions.push_back(std::move(*session));
        } else if (!sessions.empty()) {
          sessions.erase(sessions.begin() + driver.rng()() % sessions.size());
          db.ReclaimSessionEpochs();
        }
        break;
    }
    if (::testing::Test::HasFatalFailure()) return;
    ExpectIndexesValid(db, "op " + std::to_string(op));
    for (const auto& session : sessions) {
      Status pinned =
          session->database().facts().ValidateIndexes(db.symbols());
      ASSERT_TRUE(pinned.ok()) << "pinned snapshot at op " << op << ": "
                               << pinned;
    }
  }
}

// Persistent: Checkpoint interleaves with commits; a reopen at the end must
// restore a store whose advised indexes are declared and valid (recovery
// re-derives declarations from the restored program).
TEST_P(IndexInvariantTest, CheckpointAndRecoveryKeepIndexesValid) {
  std::string tmpl = StrCat(::testing::TempDir(), "idxinvXXXXXX");
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  ASSERT_NE(::mkdtemp(buf.data()), nullptr);
  std::string dir(buf.data());

  {
    auto db = DeductiveDatabase::OpenPersistent(dir);
    ASSERT_TRUE(db.ok()) << db.status();
    ASSERT_TRUE(LoadProgram(db->get(), kTernaryProgram).ok());
    ASSERT_TRUE((*db)->Checkpoint().ok());  // make the schema durable
    OpDriver driver(db->get(), /*seed=*/200 + GetParam());
    for (size_t op = 0; op < 40; ++op) {
      switch (driver.rng()() % 5) {
        case 0:
        case 1:
        case 2:
          driver.ApplyValid();
          break;
        case 3:
          driver.ApplyInvalid();
          break;
        case 4: {
          Status checkpointed = (*db)->Checkpoint();
          ASSERT_TRUE(checkpointed.ok()) << checkpointed;
          break;
        }
      }
      if (::testing::Test::HasFatalFailure()) return;
      ExpectIndexesValid(**db, "op " + std::to_string(op));
    }
    ASSERT_TRUE((*db)->Close().ok());
  }

  auto reopened = DeductiveDatabase::OpenPersistent(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  ExpectIndexesValid(**reopened, "after recovery");
  SymbolId e = (*reopened)->database().FindPredicate("E").value();
  EXPECT_EQ((*reopened)->database().facts().DeclaredIndexes(e),
            std::vector<Relation::Mask>{0b011});
}

// Readers validate pinned snapshots (and run full scans over them) while the
// writer keeps committing. Run under TSan in CI.
TEST_P(IndexInvariantTest, ConcurrentReadersSeeValidIndexes) {
  DeductiveDatabase db;
  ASSERT_TRUE(LoadProgram(&db, kTernaryProgram).ok());
  OpDriver driver(&db, /*seed=*/300 + GetParam());
  for (size_t i = 0; i < 10; ++i) driver.ApplyValid();
  if (::testing::Test::HasFatalFailure()) return;

  std::atomic<bool> stop{false};
  std::atomic<size_t> reader_failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&, t] {
      std::mt19937_64 rng(900 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        auto session = db.BeginSession();
        if (!session.ok()) {
          ++reader_failures;
          return;
        }
        const FactStore& pinned = (*session)->database().facts();
        if (!pinned.ValidateIndexes(db.symbols()).ok()) ++reader_failures;
        size_t count = 0;
        pinned.ForEach([&](SymbolId, const Tuple&) { ++count; });
        (void)count;
      }
    });
  }
  for (size_t op = 0; op < 30; ++op) {
    driver.ApplyValid();
    if (::testing::Test::HasFatalFailure()) break;
    ExpectIndexesValid(db, "concurrent op " + std::to_string(op));
  }
  stop.store(true);
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(reader_failures.load(), 0u);
  db.ReclaimSessionEpochs();
  ExpectIndexesValid(db, "after readers joined");
}

// The random-program workload (binary predicates, negation) through the same
// invariant: transactions from the workload generator, validated after each.
TEST_P(IndexInvariantTest, RandomWorkloadTransactionsKeepIndexesValid) {
  workload::RandomProgramConfig config;
  config.seed = 400 + GetParam();
  auto db = workload::MakeRandomDatabase(config);
  ASSERT_TRUE(db.ok()) << db.status();
  ExpectIndexesValid(**db, "initial");
  for (size_t op = 0; op < 10; ++op) {
    auto txn =
        workload::RandomTransaction(db->get(), config, /*size=*/4,
                                    /*seed=*/500 + GetParam() * 16 + op);
    ASSERT_TRUE(txn.ok()) << txn.status();
    Status applied = (*db)->Apply(*txn);
    ASSERT_TRUE(applied.ok()) << applied;
    ExpectIndexesValid(**db, "workload op " + std::to_string(op));
  }
}

}  // namespace
}  // namespace deddb
