// Unit tests of the evaluation layer: dependency graphs, stratification,
// body planning/joins, bottom-up fixpoints (incl. recursion and negation)
// and the query engine's strategies.

#include <gtest/gtest.h>

#include "core/deductive_database.h"
#include "eval/body_eval.h"
#include "eval/bottom_up.h"
#include "eval/dependency_graph.h"
#include "eval/query_engine.h"
#include "eval/stratification.h"
#include "parser/parser.h"

namespace deddb {
namespace {

// Helper: loads a program into a facade and returns it.
std::unique_ptr<DeductiveDatabase> Load(const char* source) {
  auto db = std::make_unique<DeductiveDatabase>();
  auto loaded = LoadProgram(db.get(), source);
  EXPECT_TRUE(loaded.ok()) << loaded.status();
  return db;
}

TEST(DependencyGraphTest, EdgesAndPolarity) {
  auto db = Load(R"(
    base B/1.
    derived D/1.
    derived E/1.
    D(x) <- B(x) & not E(x).
    E(x) <- B(x).
  )");
  DependencyGraph graph(db->database().program());
  SymbolId d = db->database().FindPredicate("D").value();
  SymbolId e = db->database().FindPredicate("E").value();
  EXPECT_TRUE(graph.IsDefined(d));
  EXPECT_TRUE(graph.IsDefined(e));
  // D depends negatively on E; B is extensional (not a node).
  const auto& edges = graph.EdgesOf(d);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].target, e);
  EXPECT_TRUE(edges[0].negative);
  EXPECT_TRUE(graph.EdgesOf(e).empty());
}

TEST(DependencyGraphTest, SccOrderIsBottomUp) {
  auto db = Load(R"(
    base B/2.
    derived T/2.
    derived Top/2.
    T(x, y) <- B(x, y).
    T(x, y) <- T(x, z) & B(z, y).
    Top(x, y) <- T(x, y).
  )");
  DependencyGraph graph(db->database().program());
  auto sccs = graph.SccsBottomUp();
  SymbolId t = db->database().FindPredicate("T").value();
  SymbolId top = db->database().FindPredicate("Top").value();
  // T must come before Top.
  size_t t_pos = 99, top_pos = 99;
  for (size_t i = 0; i < sccs.size(); ++i) {
    for (SymbolId s : sccs[i]) {
      if (s == t) t_pos = i;
      if (s == top) top_pos = i;
    }
  }
  EXPECT_LT(t_pos, top_pos);
}

TEST(DependencyGraphTest, ReachableAndRelevantSubprogram) {
  auto db = Load(R"(
    base B/1.
    derived D1/1.
    derived D2/1.
    derived Unrelated/1.
    D1(x) <- D2(x).
    D2(x) <- B(x).
    Unrelated(x) <- B(x).
  )");
  SymbolId d1 = db->database().FindPredicate("D1").value();
  SymbolId unrelated = db->database().FindPredicate("Unrelated").value();
  Program relevant = RelevantSubprogram(db->database().program(), {d1});
  EXPECT_EQ(relevant.size(), 2u);
  EXPECT_FALSE(relevant.Defines(unrelated));
}

TEST(StratificationTest, AcceptsStratifiedNegation) {
  auto db = Load(R"(
    base B/1.
    derived Lower/1.
    derived Upper/1.
    Lower(x) <- B(x).
    Upper(x) <- B(x) & not Lower(x).
  )");
  auto strat = Stratify(db->database().program(), db->symbols());
  ASSERT_TRUE(strat.ok()) << strat.status();
  SymbolId lower = db->database().FindPredicate("Lower").value();
  SymbolId upper = db->database().FindPredicate("Upper").value();
  EXPECT_LT(strat->stratum_of.at(lower), strat->stratum_of.at(upper));
}

TEST(StratificationTest, RejectsNegationThroughRecursion) {
  auto db = Load(R"(
    base B/1.
    derived P/1.
    derived Q/1.
    P(x) <- B(x) & not Q(x).
    Q(x) <- P(x).
  )");
  auto strat = Stratify(db->database().program(), db->symbols());
  EXPECT_EQ(strat.status().code(), StatusCode::kInvalidArgument);
}

TEST(BodyPlanTest, NegativesAfterBindingPositives) {
  auto db = Load(R"(
    base B/1.
    base C/1.
    derived D/1.
    D(x) <- not C(x) & B(x).
  )");
  const Rule& rule = db->database().program().rules()[0];
  auto order = PlanBodyOrder(rule, {});
  ASSERT_TRUE(order.ok());
  // The positive B(x) (index 1) must be evaluated before not C(x) (index 0).
  EXPECT_EQ(*order, (std::vector<size_t>{1, 0}));
}

TEST(BodyPlanTest, ForcedFirstRespected) {
  auto db = Load(R"(
    base B/1.
    base C/1.
    derived D/1.
    D(x) <- B(x) & C(x).
  )");
  const Rule& rule = db->database().program().rules()[0];
  auto order = PlanBodyOrder(rule, {}, /*forced_first=*/1);
  ASSERT_TRUE(order.ok());
  EXPECT_EQ((*order)[0], 1u);
}

TEST(BodyPlanTest, CardinalityBreaksTies) {
  auto db = Load(R"(
    base Big/1.
    base Small/1.
    derived D/2.
    D(x, y) <- Big(x) & Small(y).
  )");
  const Rule& rule = db->database().program().rules()[0];
  auto card = [](size_t i) -> size_t { return i == 0 ? 1000 : 2; };
  auto order = PlanBodyOrder(rule, {}, std::nullopt, card);
  ASSERT_TRUE(order.ok());
  EXPECT_EQ((*order)[0], 1u) << "the smaller relation must lead";
}

TEST(BottomUpTest, TransitiveClosure) {
  auto db = Load(R"(
    base Edge/2.
    derived Path/2.
    Path(x, y) <- Edge(x, y).
    Path(x, y) <- Path(x, z) & Edge(z, y).
    Edge(A, B). Edge(B, C). Edge(C, D).
  )");
  FactStoreProvider edb(&db->database().facts());
  BottomUpEvaluator evaluator(db->database().program(), db->symbols(), edb);
  auto idb = evaluator.Evaluate();
  ASSERT_TRUE(idb.ok()) << idb.status();
  SymbolId path = db->database().FindPredicate("Path").value();
  EXPECT_EQ(idb->Find(path)->size(), 6u);  // AB AC AD BC BD CD
  SymbolId a = db->symbols().Intern("A");
  SymbolId d = db->symbols().Intern("D");
  EXPECT_TRUE(idb->Contains(path, {a, d}));
}

TEST(BottomUpTest, StratifiedNegationSemantics) {
  auto db = Load(R"(
    base Node/1.
    base Edge/2.
    derived Reaches/2.
    derived Isolated/1.
    Reaches(x, y) <- Edge(x, y).
    Reaches(x, y) <- Reaches(x, z) & Edge(z, y).
    Isolated(x) <- Node(x) & not Reaches(x, x).
    Node(A). Node(B). Node(C).
    Edge(A, B). Edge(B, A). Edge(B, C).
  )");
  FactStoreProvider edb(&db->database().facts());
  BottomUpEvaluator evaluator(db->database().program(), db->symbols(), edb);
  auto idb = evaluator.Evaluate();
  ASSERT_TRUE(idb.ok()) << idb.status();
  SymbolId isolated = db->database().FindPredicate("Isolated").value();
  SymbolId c = db->symbols().Intern("C");
  // A and B are on a cycle; C is not.
  EXPECT_EQ(idb->Find(isolated)->size(), 1u);
  EXPECT_TRUE(idb->Contains(isolated, {c}));
}

TEST(BottomUpTest, EvaluateForRestrictsWork) {
  auto db = Load(R"(
    base B/1.
    derived Wanted/1.
    derived Huge/2.
    Wanted(x) <- B(x).
    Huge(x, y) <- B(x) & B(y).
    B(A). B(C). B(D).
  )");
  FactStoreProvider edb(&db->database().facts());
  BottomUpEvaluator evaluator(db->database().program(), db->symbols(), edb);
  SymbolId wanted = db->database().FindPredicate("Wanted").value();
  SymbolId huge = db->database().FindPredicate("Huge").value();
  auto idb = evaluator.EvaluateFor({wanted});
  ASSERT_TRUE(idb.ok());
  EXPECT_EQ(idb->Find(huge), nullptr) << "unrelated predicate was computed";
  EXPECT_EQ(idb->Find(wanted)->size(), 3u);
}

TEST(BottomUpTest, StatsAreMeaningful) {
  auto db = Load(R"(
    base Edge/2.
    derived Path/2.
    Path(x, y) <- Edge(x, y).
    Path(x, y) <- Path(x, z) & Edge(z, y).
    Edge(A, B). Edge(B, C).
  )");
  FactStoreProvider edb(&db->database().facts());
  BottomUpEvaluator evaluator(db->database().program(), db->symbols(), edb);
  ASSERT_TRUE(evaluator.Evaluate().ok());
  EXPECT_EQ(evaluator.stats().derived_facts, 3u);  // AB BC AC
  EXPECT_GE(evaluator.stats().rounds, 2u);
}

class QueryEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = Load(R"(
      base Parent/2.
      derived Grandparent/2.
      derived Ancestor/2.
      Grandparent(x, z) <- Parent(x, y) & Parent(y, z).
      Ancestor(x, y) <- Parent(x, y).
      Ancestor(x, z) <- Ancestor(x, y) & Parent(y, z).
      Parent(Ann, Bea). Parent(Bea, Cal). Parent(Cal, Dee).
    )");
    edb_ = std::make_unique<FactStoreProvider>(&db_->database().facts());
    engine_ = std::make_unique<QueryEngine>(db_->database().program(),
                                            db_->symbols(), *edb_);
  }

  Atom Make(const char* pred, std::vector<Term> args) {
    return db_->MakeAtom(pred, std::move(args)).value();
  }

  std::unique_ptr<DeductiveDatabase> db_;
  std::unique_ptr<FactStoreProvider> edb_;
  std::unique_ptr<QueryEngine> engine_;
};

TEST_F(QueryEngineTest, GroundHoldsNonRecursive) {
  auto holds = engine_->Holds(
      Make("Grandparent", {db_->Constant("Ann"), db_->Constant("Cal")}));
  ASSERT_TRUE(holds.ok()) << holds.status();
  EXPECT_TRUE(*holds);
  auto not_holds = engine_->Holds(
      Make("Grandparent", {db_->Constant("Ann"), db_->Constant("Dee")}));
  ASSERT_TRUE(not_holds.ok());
  EXPECT_FALSE(*not_holds);
}

TEST_F(QueryEngineTest, RecursivePredicateFallsBackToMaterialization) {
  auto holds = engine_->Holds(
      Make("Ancestor", {db_->Constant("Ann"), db_->Constant("Dee")}));
  ASSERT_TRUE(holds.ok()) << holds.status();
  EXPECT_TRUE(*holds);
}

TEST_F(QueryEngineTest, TopDownAndMaterializedAgree) {
  Atom pattern = Make("Grandparent", {db_->Constant("Ann"),
                                      db_->Variable("who")});
  auto top_down = engine_->SolveTopDown(pattern);
  auto materialized = engine_->SolveMaterialized(pattern);
  ASSERT_TRUE(top_down.ok()) << top_down.status();
  ASSERT_TRUE(materialized.ok()) << materialized.status();
  EXPECT_EQ(*top_down, *materialized);
  ASSERT_EQ(top_down->size(), 1u);
}

TEST_F(QueryEngineTest, OpenPatternOverBase) {
  Atom pattern = Make("Parent", {db_->Variable("p"), db_->Variable("c")});
  auto all = engine_->SolvePattern(pattern);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 3u);
}

TEST_F(QueryEngineTest, RepeatedVariablePattern) {
  // Parent(x, x) has no solutions.
  Term x = db_->Variable("x");
  auto none = engine_->SolvePattern(Make("Parent", {x, x}));
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

TEST_F(QueryEngineTest, ExistsStopsEarly) {
  auto exists = engine_->Exists(
      Make("Grandparent", {db_->Variable("a"), db_->Variable("b")}));
  ASSERT_TRUE(exists.ok());
  EXPECT_TRUE(*exists);
}

TEST_F(QueryEngineTest, LazyPatternStreams) {
  size_t seen = 0;
  auto stopped = engine_->SolveLazyPattern(
      Make("Parent", {db_->Variable("p"), db_->Variable("c")}),
      [&](const Tuple&) { return ++seen < 2; });
  ASSERT_TRUE(stopped.ok());
  EXPECT_TRUE(*stopped);
  EXPECT_EQ(seen, 2u);
}

// Regression test for the bottom_up_stats() contract: the engine
// *accumulates* materialization work across Solve*/Holds calls (it used to
// overwrite the totals with each call's delta); ResetStats() zeroes, and
// InvalidateCache() deliberately does not.
TEST_F(QueryEngineTest, BottomUpStatsAccumulateAcrossSolves) {
  // First materialization: the recursive Ancestor reachable set.
  auto first = engine_->SolveMaterialized(
      Make("Ancestor", {db_->Variable("a"), db_->Variable("b")}));
  ASSERT_TRUE(first.ok()) << first.status();
  const EvaluationStats after_first = engine_->bottom_up_stats();
  EXPECT_GT(after_first.derived_facts, 0u);
  EXPECT_GT(after_first.rounds, 0u);

  // Invalidate, then materialize again: the same work is re-done and must
  // ADD to the totals, not replace them.
  engine_->InvalidateCache();
  const EvaluationStats before_second = engine_->bottom_up_stats();
  EXPECT_EQ(before_second.derived_facts, after_first.derived_facts)
      << "InvalidateCache must not reset stats";
  auto second = engine_->SolveMaterialized(
      Make("Ancestor", {db_->Variable("a"), db_->Variable("b")}));
  ASSERT_TRUE(second.ok()) << second.status();
  const EvaluationStats after_second = engine_->bottom_up_stats();
  EXPECT_EQ(after_second.derived_facts, 2 * after_first.derived_facts);
  EXPECT_EQ(after_second.rounds, 2 * after_first.rounds);
  EXPECT_EQ(after_second.rule_firings, 2 * after_first.rule_firings);

  // A cached answer does no new bottom-up work.
  auto third = engine_->SolveMaterialized(
      Make("Ancestor", {db_->Variable("a"), db_->Variable("b")}));
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(engine_->bottom_up_stats().derived_facts,
            after_second.derived_facts);

  // ResetStats() restores a zero baseline for per-query measurement.
  engine_->ResetStats();
  EXPECT_EQ(engine_->bottom_up_stats().derived_facts, 0u);
  EXPECT_EQ(engine_->bottom_up_stats().rounds, 0u);
}

TEST_F(QueryEngineTest, InvalidateCacheReflectsEdbChanges) {
  Atom goal = Make("Grandparent", {db_->Constant("Ann"),
                                   db_->Constant("Cal")});
  ASSERT_TRUE(engine_->Holds(goal).value());
  ASSERT_TRUE(db_->RemoveFact(
                    Make("Parent", {db_->Constant("Ann"),
                                    db_->Constant("Bea")}))
                  .ok());
  // Stale until invalidated.
  engine_->InvalidateCache();
  EXPECT_FALSE(engine_->Holds(goal).value());
}

}  // namespace
}  // namespace deddb
