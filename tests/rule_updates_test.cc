// Tests of the §5.3 extension: updates of deductive rules. "The
// specification of the upward and the downward problems is the same when
// considering other kinds of updates like insertions or deletions of
// deductive rules."

#include <gtest/gtest.h>

#include "core/deductive_database.h"
#include "parser/parser.h"

namespace deddb {
namespace {

std::unique_ptr<DeductiveDatabase> Load() {
  auto db = std::make_unique<DeductiveDatabase>();
  auto loaded = LoadProgram(db.get(), R"(
    base La/1. base Works/1. base Retired/1.
    view Unemp/1.
    Unemp(x) <- La(x) & not Works(x).
    La(Dolors). La(Joan). Works(Joan). Retired(Pere).
  )");
  EXPECT_TRUE(loaded.ok()) << loaded.status();
  return db;
}

// Builds "Unemp(x) <- Retired(x)".
problems::RuleUpdate AddRetiredRule(DeductiveDatabase* db) {
  problems::RuleUpdate update;
  Term x = db->Variable("x");
  update.add.push_back(
      Rule(db->MakeAtom("Unemp", {x}).value(),
           {Literal::Positive(db->MakeAtom("Retired", {x}).value())}));
  return update;
}

TEST(RuleUpdateTest, SimulateRuleInsertion) {
  auto db = Load();
  auto events = db->SimulateRuleUpdate(AddRetiredRule(db.get()));
  ASSERT_TRUE(events.ok()) << events.status();
  // The new rule adds Unemp(Pere); Dolors was already unemployed.
  EXPECT_EQ(events->ToString(db->symbols()), "{ins Unemp(Pere)}");
  // Simulation does not change the database.
  EXPECT_EQ(db->database().program().size(), 1u);
}

TEST(RuleUpdateTest, SimulateRuleDeletion) {
  auto db = Load();
  problems::RuleUpdate update;
  update.remove.push_back(db->database().program().rules()[0]);
  auto events = db->SimulateRuleUpdate(update);
  ASSERT_TRUE(events.ok()) << events.status();
  EXPECT_EQ(events->ToString(db->symbols()), "{del Unemp(Dolors)}");
}

TEST(RuleUpdateTest, ApplyUpdatesProgramAndRecompiles) {
  auto db = Load();
  ASSERT_TRUE(db->Compiled().ok());
  ASSERT_TRUE(db->ApplyRuleUpdate(AddRetiredRule(db.get())).ok());
  EXPECT_EQ(db->database().program().size(), 2u);
  // The event machinery reflects the new rule: deleting Retired(Pere) now
  // induces del Unemp(Pere).
  auto txn = ParseTransaction(db.get(), "del Retired(Pere)");
  ASSERT_TRUE(txn.ok());
  auto events = db->InducedEvents(*txn);
  ASSERT_TRUE(events.ok()) << events.status();
  EXPECT_EQ(events->ToString(db->symbols()), "{del Unemp(Pere)}");
}

TEST(RuleUpdateTest, SimulationMatchesApplyThenDiff) {
  auto db = Load();
  auto simulated = db->SimulateRuleUpdate(AddRetiredRule(db.get()));
  ASSERT_TRUE(simulated.ok());
  // Apply for real, recompute, compare extensions.
  OldStateView before(&db->database());
  SymbolId unemp = db->database().FindPredicate("Unemp").value();
  auto old_tuples =
      before.Query(Atom(unemp, {Term::MakeVariable(0x7100000)}));
  ASSERT_TRUE(old_tuples.ok());

  ASSERT_TRUE(db->ApplyRuleUpdate(AddRetiredRule(db.get())).ok());
  OldStateView after(&db->database());
  auto new_tuples =
      after.Query(Atom(unemp, {Term::MakeVariable(0x7100001)}));
  ASSERT_TRUE(new_tuples.ok());
  for (const Tuple& t : *new_tuples) {
    bool was_there = std::find(old_tuples->begin(), old_tuples->end(), t) !=
                     old_tuples->end();
    EXPECT_EQ(!was_there, simulated->ContainsInsert(unemp, t));
  }
}

TEST(RuleUpdateTest, RemovingUnknownRuleFails) {
  auto db = Load();
  problems::RuleUpdate update;
  Term x = db->Variable("x");
  update.remove.push_back(
      Rule(db->MakeAtom("Unemp", {x}).value(),
           {Literal::Positive(db->MakeAtom("Works", {x}).value())}));
  EXPECT_EQ(db->SimulateRuleUpdate(update).status().code(),
            StatusCode::kNotFound);
}

TEST(RuleUpdateTest, InvalidAdditionFails) {
  auto db = Load();
  problems::RuleUpdate update;
  // Unsafe rule: head variable not bound by a positive literal.
  Term x = db->Variable("x");
  Term y = db->Variable("y");
  update.add.push_back(
      Rule(db->MakeAtom("Unemp", {y}).value(),
           {Literal::Positive(db->MakeAtom("La", {x}).value())}));
  EXPECT_FALSE(db->SimulateRuleUpdate(update).ok());
}

}  // namespace
}  // namespace deddb
