// Randomized multi-client protocol history suite (the service-layer analogue
// of session_history_test, DESIGN.md §10): 100 seeded runs, each starting a
// Server on the in-process loopback transport and driving it with 2-4
// concurrent protocol clients issuing mixed reads and writes. Every client
// records what the server *acknowledged*; after the join, the acknowledged
// writes replay into the serial oracle (tests/history_harness.h) and every
// read must equal the oracle's image at the largest acknowledged version at
// or below the read's pinned version. That makes three properties one check:
// writes are serialized (acked versions are distinct and totally ordered),
// reads are snapshots (no torn state between two commits), and the protocol
// reports versions truthfully (a reply claiming version v really carries v's
// facts).
//
// Seeds split four ways: {Apply, Process} x {in-memory, persistent}, so the
// durable group-commit path and the processor's multi-store atomic region
// both run under concurrent protocol traffic. The TSan CI job runs the full
// suite; 100/100 seeds passing under TSan is this PR's acceptance bar.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/deductive_database.h"
#include "history_harness.h"
#include "server/client.h"
#include "server/server.h"
#include "server/transport.h"
#include "util/rng.h"
#include "util/strings.h"

namespace deddb::server {
namespace {

namespace hh = harness;

// Everything one client thread did, validated after the join.
struct ClientLog {
  std::vector<hh::AckedWrite> writes;
  std::vector<hh::AckedRead> reads;
  std::vector<std::string> errors;  // statuses that fail the run
};

// One client: `ops` random operations, ~2/3 reads, over its own connection.
// The client tracks what it believes the facts are only to generate valid
// transactions; the server is free to reject them (another client may have
// invalidated the guess) — rejected writes are simply not acknowledged.
void ClientLoop(LoopbackNetwork* network, bool via_processor, uint64_t seed,
                ClientLog* log) {
  Rng rng(seed);
  Result<std::unique_ptr<Connection>> conn = network->Connect();
  if (!conn.ok()) {
    log->errors.push_back(conn.status().ToString());
    return;
  }
  Client client(std::move(*conn));

  // Tracked guess of the current facts, refreshed from every read.
  hh::FactSet guess;
  std::string error;

  for (int op = 0; op < 30; ++op) {
    if (rng.NextChance(2, 3)) {
      // Batched read of the full state: base predicates + the view, all
      // answered against one pinned snapshot (the oracle depends on the
      // batch being mutually consistent).
      std::vector<Atom> patterns = {
          client.MakeAtom("Q", {client.Variable("x")}),
          client.MakeAtom("R", {client.Variable("x")}),
          client.MakeAtom("P", {client.Variable("x")})};
      Result<QueryReply> reply = client.Query(std::move(patterns));
      if (!reply.ok()) {
        log->errors.push_back(reply.status().ToString());
        return;
      }
      hh::AckedRead read;
      if (!hh::DecodeBaseRead(&client, *reply, &guess, &read, &error)) {
        log->errors.push_back(error);
        return;
      }
      log->reads.push_back(std::move(read));
      continue;
    }

    // A write: 1-3 events against the guessed state. Validity (eqs. 1-2) is
    // judged by the server against the *actual* state, so a stale guess
    // yields a typed rejection — recorded as unacked, never as an error.
    Transaction txn;
    hh::AckedWrite write;
    if (!hh::BuildGuessedWrite(&rng, &client, guess, 3, &txn, &write,
                               &error)) {
      log->errors.push_back(error);
      return;
    }
    Result<uint64_t> version = hh::CommitWrite(&client, txn, via_processor);
    if (version.ok()) {
      write.version = *version;
      // Maintain the guess so later writes stay mostly valid.
      hh::FoldWriteIntoGuess(write, &guess);
      log->writes.push_back(std::move(write));
    } else if (!hh::IsDefinitiveRejection(version.status())) {
      // Anything other than a validity/integrity rejection is a real
      // failure (transport error, internal error, overload in this
      // unsaturated suite).
      log->errors.push_back(version.status().ToString());
      return;
    }
  }
  client.Close();
}

void RunSeed(uint64_t seed) {
  SCOPED_TRACE(StrCat("seed=", seed));
  Rng rng(seed * 0x9E3779B97F4A7C15ull + 1);
  const bool via_processor = rng.NextChance(1, 2);
  const bool persistent = rng.NextChance(1, 2);

  hh::SeededDb seeded;
  hh::OpenSeededDb("srvhist", persistent, &seeded);
  if (::testing::Test::HasFatalFailure()) return;
  DeductiveDatabase* db = seeded.db.get();
  hh::DeclareQRSchema(db, /*with_view=*/true, /*materialize=*/via_processor);
  if (persistent) {
    ASSERT_TRUE(db->Checkpoint().ok());
  }
  const uint64_t base_version = db->version();

  LoopbackNetwork network;
  Server server(db);
  ASSERT_TRUE(server.Serve(network.TakeListener()).ok());

  const size_t num_clients = 2 + seed % 3;
  std::vector<ClientLog> logs(num_clients);
  std::vector<std::thread> clients;
  clients.reserve(num_clients);
  for (size_t i = 0; i < num_clients; ++i) {
    clients.emplace_back(ClientLoop, &network, via_processor,
                         seed * 1000 + i, &logs[i]);
  }
  for (std::thread& thread : clients) thread.join();
  server.Stop();

  for (size_t i = 0; i < num_clients; ++i) {
    SCOPED_TRACE(StrCat("client=", i));
    ASSERT_TRUE(logs[i].errors.empty()) << logs[i].errors.front();
  }

  // The serial oracle: acked writes replay into version→image; every read
  // matches the acknowledged commit prefix at its pinned version, and the
  // derived view answers come from the same snapshot as the base facts.
  std::vector<const hh::AckedWrite*> acked;
  for (const ClientLog& log : logs) {
    for (const hh::AckedWrite& write : log.writes) acked.push_back(&write);
  }
  hh::AckedPrefixOracle oracle;
  oracle.Build(std::move(acked), base_version, "replay diverged");
  if (::testing::Test::HasFatalFailure()) return;

  for (size_t i = 0; i < num_clients; ++i) {
    SCOPED_TRACE(StrCat("client=", i));
    uint64_t last_version = 0;
    for (const hh::AckedRead& read : logs[i].reads) {
      oracle.ExpectReadMatches(read, /*check_derived=*/true);
      // Reads on one connection never travel backwards.
      EXPECT_GE(read.version, last_version);
      last_version = read.version;
    }
  }

  // The server released every session it pinned.
  ASSERT_EQ(db->active_sessions(), 0u);

  hh::CloseSeededDb(&seeded);
}

class ServerHistoryTest : public ::testing::TestWithParam<int> {};

TEST_P(ServerHistoryTest, EveryReadMatchesAnAcknowledgedCommitPrefix) {
  // 10 seeds per shard x 10 shards = the 100-seed suite, sharded so ctest
  // runs shards in parallel and a failure names its seed via SCOPED_TRACE.
  const int shard = GetParam();
  for (int i = 0; i < 10; ++i) {
    RunSeed(static_cast<uint64_t>(shard * 10 + i));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(Matrix, ServerHistoryTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace deddb::server
