// Randomized multi-client protocol history suite (the service-layer analogue
// of session_history_test, DESIGN.md §10): 100 seeded runs, each starting a
// Server on the in-process loopback transport and driving it with 2-4
// concurrent protocol clients issuing mixed reads and writes. Every client
// records what the server *acknowledged*; after the join, the acknowledged
// writes replay into a serial oracle — a version→image map — and every read
// must equal the oracle's image at the largest acknowledged version at or
// below the read's pinned version. That makes three properties one check:
// writes are serialized (acked versions are distinct and totally ordered),
// reads are snapshots (no torn state between two commits), and the protocol
// reports versions truthfully (a reply claiming version v really carries v's
// facts).
//
// Seeds split four ways: {Apply, Process} x {in-memory, persistent}, so the
// durable group-commit path and the processor's multi-store atomic region
// both run under concurrent protocol traffic. The TSan CI job runs the full
// suite; 100/100 seeds passing under TSan is this PR's acceptance bar.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "core/deductive_database.h"
#include "server/client.h"
#include "server/server.h"
#include "server/transport.h"
#include "util/rng.h"
#include "util/strings.h"

namespace deddb::server {
namespace {

constexpr const char* kConstants[] = {"c0", "c1", "c2", "c3", "c4", "c5"};
constexpr const char* kBasePreds[] = {"Q", "R"};

// Canonical image of a base-fact set given as (pred idx, const idx) pairs.
std::string ImageOf(const std::set<std::pair<size_t, size_t>>& facts) {
  std::vector<std::string> rendered;
  for (const auto& [p, c] : facts) {
    rendered.push_back(StrCat(kBasePreds[p], "(", kConstants[c], ")"));
  }
  std::sort(rendered.begin(), rendered.end());
  return Join(rendered, ";");
}

// What P(x) <- Q(x) & not R(x) derives from a canonical base image.
std::string DeriveP(const std::string& image) {
  std::vector<std::string> answers;
  for (const char* c : kConstants) {
    const bool q = image.find(StrCat("Q(", c, ")")) != std::string::npos;
    const bool r = image.find(StrCat("R(", c, ")")) != std::string::npos;
    if (q && !r) answers.push_back(c);
  }
  return Join(answers, ";");
}

void DeclareSchema(DeductiveDatabase* db, bool materialize) {
  ASSERT_TRUE(db->DeclareBase("Q", 1).ok());
  ASSERT_TRUE(db->DeclareBase("R", 1).ok());
  Result<SymbolId> p = db->DeclareView("P", 1);
  ASSERT_TRUE(p.ok());
  Term x = db->Variable("x");
  ASSERT_TRUE(
      db->AddRule(Rule(db->MakeAtom("P", {x}).value(),
                       {Literal::Positive(db->MakeAtom("Q", {x}).value()),
                        Literal::Negative(db->MakeAtom("R", {x}).value())}))
          .ok());
  if (materialize) {
    ASSERT_TRUE(db->MaterializeView(*p).ok());
    ASSERT_TRUE(db->InitializeMaterializedViews().ok());
  }
}

// One acknowledged write: the server said this transaction committed and
// left the database at `version`.
struct AckedWrite {
  uint64_t version = 0;
  // The (pred idx, const idx, is_insert) events of the transaction.
  std::vector<std::tuple<size_t, size_t, bool>> events;
};

// One acknowledged read: the batched Query {Q(x), R(x), P(x)} answered at
// `version`, flattened to canonical base image + derived answers.
struct AckedRead {
  uint64_t version = 0;
  std::string base_image;
  std::string derived;
};

// Everything one client thread did, validated after the join.
struct ClientLog {
  std::vector<AckedWrite> writes;
  std::vector<AckedRead> reads;
  std::vector<std::string> errors;  // statuses that fail the run
};

// One client: `ops` random operations, ~2/3 reads, over its own connection.
// The client tracks what it believes the facts are only to generate valid
// transactions; the server is free to reject them (another client may have
// invalidated the guess) — rejected writes are simply not acknowledged.
void ClientLoop(LoopbackNetwork* network, bool via_processor, uint64_t seed,
                ClientLog* log) {
  Rng rng(seed);
  Result<std::unique_ptr<Connection>> conn = network->Connect();
  if (!conn.ok()) {
    log->errors.push_back(conn.status().ToString());
    return;
  }
  Client client(std::move(*conn));

  // Tracked guess of the current facts, refreshed from every read.
  std::set<std::pair<size_t, size_t>> guess;

  for (int op = 0; op < 30; ++op) {
    if (rng.NextChance(2, 3)) {
      // Batched read of the full state: base predicates + the view, all
      // answered against one pinned snapshot (the oracle depends on the
      // batch being mutually consistent).
      std::vector<Atom> patterns = {
          client.MakeAtom("Q", {client.Variable("x")}),
          client.MakeAtom("R", {client.Variable("x")}),
          client.MakeAtom("P", {client.Variable("x")})};
      Result<QueryReply> reply = client.Query(std::move(patterns));
      if (!reply.ok()) {
        log->errors.push_back(reply.status().ToString());
        return;
      }
      AckedRead read;
      read.version = reply->version;
      std::vector<std::string> base;
      guess.clear();
      for (size_t p = 0; p < 2; ++p) {
        for (const Tuple& t : reply->answers[p]) {
          if (t.size() != 1) {
            log->errors.push_back("non-unary answer tuple");
            return;
          }
          const std::string& name = client.symbols().NameOf(t[0]);
          base.push_back(StrCat(kBasePreds[p], "(", name, ")"));
          for (size_t c = 0; c < 6; ++c) {
            if (name == kConstants[c]) guess.insert({p, c});
          }
        }
      }
      std::sort(base.begin(), base.end());
      read.base_image = Join(base, ";");
      std::vector<std::string> derived;
      for (const Tuple& t : reply->answers[2]) {
        derived.push_back(std::string(client.symbols().NameOf(t[0])));
      }
      std::sort(derived.begin(), derived.end());
      read.derived = Join(derived, ";");
      log->reads.push_back(std::move(read));
      continue;
    }

    // A write: 1-3 events against the guessed state. Validity (eqs. 1-2) is
    // judged by the server against the *actual* state, so a stale guess
    // yields a typed rejection — recorded as unacked, never as an error.
    Transaction txn;
    AckedWrite write;
    std::set<std::pair<size_t, size_t>> touched;
    const size_t num_events = 1 + rng.NextBelow(3);
    for (size_t e = 0; e < num_events; ++e) {
      const size_t p = rng.NextBelow(2);
      const size_t c = rng.NextBelow(6);
      if (!touched.insert({p, c}).second) continue;
      Atom fact = client.GroundAtom(kBasePreds[p], {kConstants[c]});
      const bool present = guess.count({p, c}) > 0;
      Status added = present ? txn.AddDelete(fact) : txn.AddInsert(fact);
      if (!added.ok()) {
        log->errors.push_back(added.ToString());
        return;
      }
      write.events.emplace_back(p, c, !present);
    }
    Result<uint64_t> version =
        via_processor
            ? [&]() -> Result<uint64_t> {
                Result<ProcessReply> reply = client.Process(txn);
                if (!reply.ok()) return reply.status();
                if (!reply->accepted) {
                  // Integrity rejection: nothing applied, not an ack.
                  return FailedPreconditionError("rejected");
                }
                return reply->version;
              }()
            : [&]() -> Result<uint64_t> {
                Result<ApplyReply> reply = client.Apply(txn);
                if (!reply.ok()) return reply.status();
                return reply->version;
              }();
    if (version.ok()) {
      write.version = *version;
      // Maintain the guess so later writes stay mostly valid.
      for (const auto& [p, c, ins] : write.events) {
        if (ins) {
          guess.insert({p, c});
        } else {
          guess.erase({p, c});
        }
      }
      log->writes.push_back(std::move(write));
    } else if (version.status().code() != StatusCode::kInvalidArgument &&
               version.status().code() != StatusCode::kFailedPrecondition) {
      // Anything other than a validity/integrity rejection is a real
      // failure (transport error, internal error, overload in this
      // unsaturated suite).
      log->errors.push_back(version.status().ToString());
      return;
    }
  }
  client.Close();
}

void RunSeed(uint64_t seed) {
  SCOPED_TRACE(StrCat("seed=", seed));
  Rng rng(seed * 0x9E3779B97F4A7C15ull + 1);
  const bool via_processor = rng.NextChance(1, 2);
  const bool persistent = rng.NextChance(1, 2);

  std::string dir;
  std::unique_ptr<DeductiveDatabase> db;
  if (persistent) {
    std::string tmpl = StrCat(::testing::TempDir(), "srvhistXXXXXX");
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    ASSERT_NE(::mkdtemp(buf.data()), nullptr);
    dir = buf.data();
    auto opened = DeductiveDatabase::OpenPersistent(dir);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    db = std::move(*opened);
  } else {
    db = std::make_unique<DeductiveDatabase>();
  }
  DeclareSchema(db.get(), via_processor);
  if (persistent) {
    ASSERT_TRUE(db->Checkpoint().ok());
  }
  const uint64_t base_version = db->version();

  LoopbackNetwork network;
  Server server(db.get());
  ASSERT_TRUE(server.Serve(network.TakeListener()).ok());

  const size_t num_clients = 2 + seed % 3;
  std::vector<ClientLog> logs(num_clients);
  std::vector<std::thread> clients;
  clients.reserve(num_clients);
  for (size_t i = 0; i < num_clients; ++i) {
    clients.emplace_back(ClientLoop, &network, via_processor,
                         seed * 1000 + i, &logs[i]);
  }
  for (std::thread& thread : clients) thread.join();
  server.Stop();

  for (size_t i = 0; i < num_clients; ++i) {
    SCOPED_TRACE(StrCat("client=", i));
    ASSERT_TRUE(logs[i].errors.empty()) << logs[i].errors.front();
  }

  // ---- The serial oracle ----------------------------------------------------
  // Acked writes, sorted by acknowledged version, replay into version→image.
  // Distinct versions prove the writes serialized; replaying them from the
  // empty initial state proves the acks describe what really committed.
  std::vector<const AckedWrite*> acked;
  for (const ClientLog& log : logs) {
    for (const AckedWrite& write : log.writes) acked.push_back(&write);
  }
  std::sort(acked.begin(), acked.end(),
            [](const AckedWrite* a, const AckedWrite* b) {
              return a->version < b->version;
            });
  for (size_t i = 1; i < acked.size(); ++i) {
    ASSERT_NE(acked[i - 1]->version, acked[i]->version)
        << "two writes acknowledged the same commit version";
  }

  std::map<uint64_t, std::string> image_at;  // version -> canonical image
  std::set<std::pair<size_t, size_t>> facts;
  image_at[base_version] = ImageOf(facts);
  for (const AckedWrite* write : acked) {
    ASSERT_GT(write->version, base_version);
    for (const auto& [p, c, ins] : write->events) {
      if (ins) {
        ASSERT_TRUE(facts.insert({p, c}).second)
            << "acked insert of a present fact — replay diverged";
      } else {
        ASSERT_EQ(facts.erase({p, c}), 1u)
            << "acked delete of an absent fact — replay diverged";
      }
    }
    image_at[write->version] = ImageOf(facts);
  }

  // Every read equals the oracle image at floor(acked version <= read
  // version). Versions between acks exist (the processor bumps once per
  // store it touches), but they all carry the image of the last ack.
  for (size_t i = 0; i < num_clients; ++i) {
    SCOPED_TRACE(StrCat("client=", i));
    uint64_t last_version = 0;
    for (const AckedRead& read : logs[i].reads) {
      auto it = image_at.upper_bound(read.version);
      ASSERT_NE(it, image_at.begin())
          << "read at version " << read.version << " precedes the seed state";
      --it;
      EXPECT_EQ(read.base_image, it->second)
          << "read at version " << read.version
          << " does not match the acknowledged commit prefix at version "
          << it->first;
      // The derived view answered from the same snapshot as the base facts.
      EXPECT_EQ(read.derived, DeriveP(read.base_image))
          << "view answers inconsistent with base facts at version "
          << read.version;
      // Reads on one connection never travel backwards.
      EXPECT_GE(read.version, last_version);
      last_version = read.version;
    }
  }

  // The server released every session it pinned.
  ASSERT_EQ(db->active_sessions(), 0u);

  if (persistent) {
    ASSERT_TRUE(db->Close().ok());
    db.reset();
    std::string cmd = StrCat("rm -rf ", dir);
    ASSERT_EQ(std::system(cmd.c_str()), 0);
  }
}

class ServerHistoryTest : public ::testing::TestWithParam<int> {};

TEST_P(ServerHistoryTest, EveryReadMatchesAnAcknowledgedCommitPrefix) {
  // 10 seeds per shard x 10 shards = the 100-seed suite, sharded so ctest
  // runs shards in parallel and a failure names its seed via SCOPED_TRACE.
  const int shard = GetParam();
  for (int i = 0; i < 10; ++i) {
    RunSeed(static_cast<uint64_t>(shard * 10 + i));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(Matrix, ServerHistoryTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace deddb::server
