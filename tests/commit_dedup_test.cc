// CommitDedup: the bounded exactly-once memory behind the server's
// idempotency tokens. Fresh/duplicate/too-old classification, the per-client
// ring-window eviction (a seq is retained until a later commit reuses its
// slot), and wholesale LRU eviction of the least recently used client.

#include "core/commit_dedup.h"

#include <gtest/gtest.h>

#include "util/strings.h"

namespace deddb {
namespace {

persist::CommitToken Token(uint64_t client, uint64_t seq) {
  persist::CommitToken token;
  token.client_id = client;
  token.request_seq = seq;
  return token;
}

TEST(CommitDedupTest, FreshThenDuplicateWithRecordedVersion) {
  CommitDedup dedup;
  EXPECT_EQ(dedup.Lookup(Token(1, 1)).verdict, DedupVerdict::kFresh);
  dedup.Record(Token(1, 1), 41);
  DedupResult hit = dedup.Lookup(Token(1, 1));
  EXPECT_EQ(hit.verdict, DedupVerdict::kDuplicate);
  EXPECT_EQ(hit.version, 41u);
  // A different seq of the same client, and the same seq of a different
  // client, are both fresh.
  EXPECT_EQ(dedup.Lookup(Token(1, 2)).verdict, DedupVerdict::kFresh);
  EXPECT_EQ(dedup.Lookup(Token(2, 1)).verdict, DedupVerdict::kFresh);
}

TEST(CommitDedupTest, RerecordingIsIdempotent) {
  CommitDedup dedup;
  dedup.Record(Token(1, 1), 41);
  dedup.Record(Token(1, 1), 41);  // WAL replay records each token once more
  DedupResult hit = dedup.Lookup(Token(1, 1));
  EXPECT_EQ(hit.verdict, DedupVerdict::kDuplicate);
  EXPECT_EQ(hit.version, 41u);
}

TEST(CommitDedupTest, UncommittedSeqBelowHighWaterIsTooOld) {
  // Seq 2 was never recorded (say it was rejected), but seq 3 committed:
  // a later retry of 2 is ambiguous only once it leaves the window — while
  // the window still covers it, the miss proves it never committed... except
  // the table cannot distinguish "rejected" from "evicted", so anything at
  // or below the high-water mark that misses reports kTooOld.
  CommitDedup dedup;
  dedup.Record(Token(1, 1), 10);
  dedup.Record(Token(1, 3), 11);
  EXPECT_EQ(dedup.Lookup(Token(1, 2)).verdict, DedupVerdict::kTooOld);
  EXPECT_EQ(dedup.Lookup(Token(1, 4)).verdict, DedupVerdict::kFresh);
}

TEST(CommitDedupTest, WindowEvictsTheSeqWhoseSlotIsReused) {
  CommitDedup::Options options;
  options.window_per_client = 8;
  CommitDedup dedup(options);
  for (uint64_t seq = 1; seq <= 8; ++seq) dedup.Record(Token(1, seq), seq);
  // Seq 9 lands on seq 1's slot (9 mod 8 == 1 mod 8): 1 is evicted, 2..8
  // stay.
  dedup.Record(Token(1, 9), 9);
  EXPECT_EQ(dedup.Lookup(Token(1, 1)).verdict, DedupVerdict::kTooOld);
  for (uint64_t seq = 2; seq <= 9; ++seq) {
    DedupResult hit = dedup.Lookup(Token(1, seq));
    EXPECT_EQ(hit.verdict, DedupVerdict::kDuplicate) << "seq " << seq;
    EXPECT_EQ(hit.version, seq);
  }
}

TEST(CommitDedupTest, DenselyNumberedClientRetainsExactlyTheWindow) {
  CommitDedup::Options options;
  options.window_per_client = 16;
  CommitDedup dedup(options);
  for (uint64_t seq = 1; seq <= 100; ++seq) dedup.Record(Token(1, seq), seq);
  for (uint64_t seq = 1; seq <= 84; ++seq) {
    EXPECT_EQ(dedup.Lookup(Token(1, seq)).verdict, DedupVerdict::kTooOld)
        << "seq " << seq;
  }
  for (uint64_t seq = 85; seq <= 100; ++seq) {
    EXPECT_EQ(dedup.Lookup(Token(1, seq)).verdict, DedupVerdict::kDuplicate)
        << "seq " << seq;
  }
}

TEST(CommitDedupTest, LeastRecentlyUsedClientIsEvictedWholesale) {
  CommitDedup::Options options;
  options.max_clients = 2;
  CommitDedup dedup(options);
  dedup.Record(Token(1, 1), 10);
  dedup.Record(Token(2, 1), 20);
  dedup.Lookup(Token(1, 1));  // touch client 1, making client 2 the LRU
  dedup.Record(Token(3, 1), 30);
  EXPECT_EQ(dedup.client_count(), 2u);
  EXPECT_EQ(dedup.Lookup(Token(1, 1)).verdict, DedupVerdict::kDuplicate);
  EXPECT_EQ(dedup.Lookup(Token(3, 1)).verdict, DedupVerdict::kDuplicate);
  // Client 2 lost its whole window *including* the high-water mark, so its
  // old seq reads as fresh — the documented cost of client-cap eviction.
  EXPECT_EQ(dedup.Lookup(Token(2, 1)).verdict, DedupVerdict::kFresh);
}

}  // namespace
}  // namespace deddb
