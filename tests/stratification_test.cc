// Unit tests for stratification: SCC-per-stratum structure, bottom-up
// ordering constraints (weak for positive dependencies, strict for negative
// ones), rejection of negation through a cycle, and degenerate inputs.

#include <gtest/gtest.h>

#include "core/deductive_database.h"
#include "eval/stratification.h"
#include "parser/parser.h"

namespace deddb {
namespace {

std::unique_ptr<DeductiveDatabase> Load(const char* source) {
  auto db = std::make_unique<DeductiveDatabase>();
  auto loaded = LoadProgram(db.get(), source);
  EXPECT_TRUE(loaded.ok()) << loaded.status();
  return db;
}

SymbolId Pred(const DeductiveDatabase& db, const char* name) {
  return db.database().FindPredicate(name).value();
}

TEST(StratificationTest, EmptyProgram) {
  Program program;
  SymbolTable symbols;
  auto strat = Stratify(program, symbols);
  ASSERT_TRUE(strat.ok()) << strat.status();
  EXPECT_TRUE(strat->strata.empty());
  EXPECT_TRUE(strat->stratum_of.empty());
}

TEST(StratificationTest, HierarchicalProgramOrdersStrata) {
  auto db = Load(R"(
    base Q/1.
    derived S/1. derived T/1. derived U/1.
    S(x) <- Q(x).
    T(x) <- S(x).
    U(x) <- T(x) & not S(x).
  )");
  auto strat = Stratify(db->database().program(), db->symbols());
  ASSERT_TRUE(strat.ok()) << strat.status();
  ASSERT_EQ(strat->strata.size(), 3u);
  // Positive dependency: body stratum <= head stratum; negative: strictly <.
  EXPECT_LT(strat->stratum_of.at(Pred(*db, "S")),
            strat->stratum_of.at(Pred(*db, "T")));
  EXPECT_LT(strat->stratum_of.at(Pred(*db, "S")),
            strat->stratum_of.at(Pred(*db, "U")));
  // stratum_of is consistent with the strata vector.
  for (size_t i = 0; i < strat->strata.size(); ++i) {
    for (SymbolId p : strat->strata[i]) {
      EXPECT_EQ(strat->stratum_of.at(p), i);
    }
  }
}

// A recursive SCC is one stratum; negation into it from above is fine.
TEST(StratificationTest, RecursiveSccIsOneStratum) {
  auto db = Load(R"(
    base Edge/2.
    derived Path/2. derived Unreachable/2.
    Path(x, y) <- Edge(x, y).
    Path(x, z) <- Path(x, y) & Edge(y, z).
    Unreachable(x, y) <- Edge(x, x) & Edge(y, y) & not Path(x, y).
  )");
  auto strat = Stratify(db->database().program(), db->symbols());
  ASSERT_TRUE(strat.ok()) << strat.status();
  ASSERT_EQ(strat->strata.size(), 2u);
  EXPECT_EQ(strat->strata[0], std::vector<SymbolId>{Pred(*db, "Path")});
  EXPECT_LT(strat->stratum_of.at(Pred(*db, "Path")),
            strat->stratum_of.at(Pred(*db, "Unreachable")));
}

// Negation on a self-loop: P depends negatively on its own SCC.
TEST(StratificationTest, RejectsNegativeSelfLoop) {
  auto db = Load(R"(
    base Q/1.
    derived P/1.
    P(x) <- Q(x) & not P(x).
  )");
  auto strat = Stratify(db->database().program(), db->symbols());
  EXPECT_FALSE(strat.ok());
}

// Negation through a two-node cycle (even number of negations — still not
// stratified: the negative edge is inside the SCC).
TEST(StratificationTest, RejectsNegationThroughCycle) {
  auto db = Load(R"(
    base Q/1.
    derived A/1. derived B/1.
    A(x) <- Q(x) & not B(x).
    B(x) <- Q(x) & not A(x).
  )");
  auto strat = Stratify(db->database().program(), db->symbols());
  EXPECT_FALSE(strat.ok());
}

// Interlocking positive cycles with an internal negative edge: {A, B, C} is
// one SCC and B <- not C makes it unstratifiable.
TEST(StratificationTest, RejectsNegativeEdgeInsideCollapsedScc) {
  auto db = Load(R"(
    base Q/1.
    derived A/1. derived B/1. derived C/1.
    A(x) <- B(x).
    B(x) <- A(x).
    C(x) <- B(x).
    B(x) <- Q(x) & not C(x).
  )");
  auto strat = Stratify(db->database().program(), db->symbols());
  EXPECT_FALSE(strat.ok());
}

// The same shape with the negative edge leaving the SCC is accepted.
TEST(StratificationTest, AcceptsNegationLeavingScc) {
  auto db = Load(R"(
    base Q/1.
    derived S/1.
    derived A/1. derived B/1.
    S(x) <- Q(x).
    A(x) <- B(x).
    B(x) <- A(x).
    B(x) <- Q(x) & not S(x).
  )");
  auto strat = Stratify(db->database().program(), db->symbols());
  ASSERT_TRUE(strat.ok()) << strat.status();
  EXPECT_LT(strat->stratum_of.at(Pred(*db, "S")),
            strat->stratum_of.at(Pred(*db, "A")));
}

}  // namespace
}  // namespace deddb
