// Deterministic scenarios for the fault-tolerance contract (DESIGN.md §10):
// exactly-once idempotency tokens (a retried committed write is answered
// from the dedup table with its original reply), the client's
// teardown-and-redial discipline after a transport failure (the regression
// for the half-consumed-frame bug), the retryable-hint extension on error
// frames, graceful read-only degradation when commit durability poisons,
// and recovery of the dedup table from WAL token extensions at reopen.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/deductive_database.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "server/transport.h"
#include "util/resource_guard.h"
#include "util/strings.h"

namespace deddb::server {
namespace {

uint64_t JsonCounter(const std::string& json, const std::string& key) {
  const std::string needle = StrCat("\"", key, "\":");
  size_t at = json.find(needle);
  if (at == std::string::npos) return 0;
  return std::strtoull(json.c_str() + at + needle.size(), nullptr, 10);
}

/// Delegating connection whose Read fails (and kills the stream) while the
/// shared countdown is positive — the deterministic stand-in for a peer
/// reset that arrives mid-reply.
class FailingReads : public Connection {
 public:
  FailingReads(std::unique_ptr<Connection> inner,
               std::shared_ptr<std::atomic<int>> remaining)
      : inner_(std::move(inner)), remaining_(std::move(remaining)) {}

  Result<size_t> Read(char* buf, size_t len) override {
    if (remaining_->fetch_sub(1, std::memory_order_relaxed) > 0) {
      inner_->Close();
      return InternalError("injected fault: reset during read");
    }
    remaining_->fetch_add(1, std::memory_order_relaxed);
    return inner_->Read(buf, len);
  }
  Status Write(const char* buf, size_t len) override {
    return inner_->Write(buf, len);
  }
  void Close() override { inner_->Close(); }

 private:
  std::unique_ptr<Connection> inner_;
  std::shared_ptr<std::atomic<int>> remaining_;
};

Transaction InsertOf(Client* client, const char* pred, const char* constant) {
  Transaction txn;
  EXPECT_TRUE(txn.AddInsert(client->GroundAtom(pred, {constant})).ok());
  return txn;
}

TEST(ServerRetryTest, RetriedCommittedApplyReturnsOriginalReply) {
  DeductiveDatabase db;
  ASSERT_TRUE(db.DeclareBase("Q", 1).ok());
  LoopbackNetwork network;
  Server server(&db);
  ASSERT_TRUE(server.Serve(network.TakeListener()).ok());

  auto conn = network.Connect();
  ASSERT_TRUE(conn.ok());
  Client raw(std::move(*conn));

  // One tokened Apply, sent twice byte-identically — exactly what a client
  // that lost the first reply re-sends.
  ApplyRequest request;
  ASSERT_TRUE(
      request.transaction.AddInsert(raw.GroundAtom("Q", {"a"})).ok());
  request.token.client_id = 42;
  request.token.request_seq = 1;
  const std::string payload = EncodeApplyRequest(request, raw.symbols());

  auto roundtrip = [&]() -> Result<ApplyReply> {
    Result<uint64_t> id = raw.SendRaw(FrameType::kApply, payload);
    if (!id.ok()) return id.status();
    Result<OwnedFrame> frame = raw.ReceiveRaw();
    if (!frame.ok()) return frame.status();
    EXPECT_EQ(frame->type, FrameType::kApplyOk);
    return DecodeApplyReply(frame->payload);
  };

  Result<ApplyReply> first = roundtrip();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  const uint64_t committed_version = db.version();
  EXPECT_EQ(first->version, committed_version);

  Result<ApplyReply> second = roundtrip();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->version, first->version) << "not the original reply";
  EXPECT_EQ(db.version(), committed_version) << "the retry applied again";
  EXPECT_EQ(JsonCounter(server.StatsJson(), "dedup_hits"), 1u);
  EXPECT_EQ(JsonCounter(server.StatsJson(), "writes_applied"), 1u);

  server.Stop();
}

TEST(ServerRetryTest, RetriedCommittedProcessReturnsOriginalReply) {
  DeductiveDatabase db;
  ASSERT_TRUE(db.DeclareBase("Q", 1).ok());
  LoopbackNetwork network;
  Server server(&db);
  ASSERT_TRUE(server.Serve(network.TakeListener()).ok());

  auto conn = network.Connect();
  ASSERT_TRUE(conn.ok());
  Client raw(std::move(*conn));

  ProcessRequest request;
  ASSERT_TRUE(
      request.transaction.AddInsert(raw.GroundAtom("Q", {"a"})).ok());
  request.token.client_id = 7;
  request.token.request_seq = 3;
  const std::string payload = EncodeProcessRequest(request, raw.symbols());

  auto roundtrip = [&]() -> Result<ProcessReply> {
    Result<uint64_t> id = raw.SendRaw(FrameType::kProcess, payload);
    if (!id.ok()) return id.status();
    Result<OwnedFrame> frame = raw.ReceiveRaw();
    if (!frame.ok()) return frame.status();
    EXPECT_EQ(frame->type, FrameType::kProcessOk);
    return DecodeProcessReply(frame->payload);
  };

  Result<ProcessReply> first = roundtrip();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(first->accepted);
  Result<ProcessReply> second = roundtrip();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_TRUE(second->accepted);
  EXPECT_EQ(second->version, first->version);
  EXPECT_EQ(JsonCounter(server.StatsJson(), "dedup_hits"), 1u);

  server.Stop();
}

TEST(ServerRetryTest, MidReplyDisconnectTearsDownRedialsAndDeduplicates) {
  // The satellite regression: a reply that dies mid-frame must not leave
  // the client re-reading a half-consumed stream. The retrying client
  // tears the connection down, re-dials, re-sends the same token, and is
  // answered from the dedup table — the write applies exactly once.
  DeductiveDatabase db;
  ASSERT_TRUE(db.DeclareBase("Q", 1).ok());
  LoopbackNetwork network;
  Server server(&db);
  ASSERT_TRUE(server.Serve(network.TakeListener()).ok());

  auto fail_reads = std::make_shared<std::atomic<int>>(0);
  ClientOptions options;
  options.client_id = 9;
  options.max_attempts = 5;
  options.backoff.base = std::chrono::microseconds(50);
  options.backoff.cap = std::chrono::microseconds(500);
  Client client(
      [&network, fail_reads]() -> Result<std::unique_ptr<Connection>> {
        Result<std::unique_ptr<Connection>> conn = network.Connect();
        if (!conn.ok()) return conn.status();
        std::unique_ptr<Connection> wrapped =
            std::make_unique<FailingReads>(std::move(*conn), fail_reads);
        return wrapped;
      },
      options);

  // Warm apply over a healthy connection.
  Result<ApplyReply> warm = client.Apply(InsertOf(&client, "Q", "warm"));
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  const uint64_t before = db.version();

  // The next read on the live connection — the reply to this Apply — dies.
  fail_reads->store(1);
  Result<ApplyReply> reply = client.Apply(InsertOf(&client, "Q", "a"));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(db.version(), before + 1) << "the retry applied again";
  EXPECT_EQ(client.retries(), 1u);
  EXPECT_EQ(client.dials(), 2u) << "the client reused the broken connection";
  EXPECT_EQ(JsonCounter(server.StatsJson(), "dedup_hits"), 1u);

  server.Stop();
}

TEST(ServerRetryTest, SingleConnectionClientFailsFastAfterTransportFailure) {
  // Without a dialer the client cannot recover — but it must fail *fast*
  // on later requests instead of reading the previous request's
  // half-consumed reply (the latent PR 6 bug this PR fixes).
  DeductiveDatabase db;
  ASSERT_TRUE(db.DeclareBase("Q", 1).ok());
  LoopbackNetwork network;
  Server server(&db);
  ASSERT_TRUE(server.Serve(network.TakeListener()).ok());

  auto conn = network.Connect();
  ASSERT_TRUE(conn.ok());
  auto fail_reads = std::make_shared<std::atomic<int>>(1);
  Client client(
      std::make_unique<FailingReads>(std::move(*conn), fail_reads));

  Result<ApplyReply> failed = client.Apply(InsertOf(&client, "Q", "a"));
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(client.connection(), nullptr)
      << "a connection that failed mid-request must not be reused";
  Result<ApplyReply> next = client.Apply(InsertOf(&client, "Q", "b"));
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kFailedPrecondition);

  server.Stop();
}

TEST(ServerRetryTest, ErrorRepliesCarryHintsOnlyForTokenedRequests) {
  DeductiveDatabase db;
  ASSERT_TRUE(db.DeclareBase("Q", 1).ok());
  LoopbackNetwork network;
  Server server(&db);
  ASSERT_TRUE(server.Serve(network.TakeListener()).ok());

  auto conn = network.Connect();
  ASSERT_TRUE(conn.ok());
  Client raw(std::move(*conn));

  // Deleting an absent fact fails validation either way; only the tokened
  // (v2) request gets the trailing hint byte back.
  ApplyRequest request;
  ASSERT_TRUE(
      request.transaction.AddDelete(raw.GroundAtom("Q", {"absent"})).ok());

  auto error_of = [&](const std::string& payload) -> ErrorReply {
    Result<uint64_t> id = raw.SendRaw(FrameType::kApply, payload);
    EXPECT_TRUE(id.ok());
    Result<OwnedFrame> frame = raw.ReceiveRaw();
    EXPECT_TRUE(frame.ok());
    EXPECT_EQ(frame->type, FrameType::kError);
    Result<ErrorReply> error = DecodeErrorReply(frame->payload);
    EXPECT_TRUE(error.ok());
    return error.ok() ? *error : ErrorReply{};
  };

  ErrorReply v1 = error_of(EncodeApplyRequest(request, raw.symbols()));
  EXPECT_EQ(v1.code, StatusCode::kFailedPrecondition);
  EXPECT_FALSE(v1.has_retry_hint()) << "v1 reply grew trailing bytes";

  request.token.client_id = 5;
  request.token.request_seq = 1;
  ErrorReply v2 = error_of(EncodeApplyRequest(request, raw.symbols()));
  EXPECT_EQ(v2.code, StatusCode::kFailedPrecondition);
  ASSERT_TRUE(v2.has_retry_hint());
  EXPECT_FALSE(v2.retryable()) << "a validation failure is not transient";

  server.Stop();
}

TEST(ServerRetryTest, OverloadRejectionIsHintedRetryable) {
  // Stall the writer and overfill the one-deep queue: the spilled tokened
  // write must come back kResourceExhausted with retryable=true — the hint
  // that lets a client distinguish "try again shortly" from the
  // not-retryable degraded rejection below.
  DeductiveDatabase db;
  ASSERT_TRUE(db.DeclareBase("Q", 1).ok());
  std::promise<void> release;
  std::shared_future<void> released(release.get_future());
  std::atomic<bool> stalled{false};
  ServerOptions options;
  options.write_queue_depth = 1;
  options.writer_stall_for_test = [&] {
    stalled.store(true);
    released.wait();
  };
  LoopbackNetwork network;
  Server server(&db, options);
  ASSERT_TRUE(server.Serve(network.TakeListener()).ok());

  auto conn = network.Connect();
  ASSERT_TRUE(conn.ok());
  Client raw(std::move(*conn));

  auto tokened_apply = [&](const char* constant, uint64_t seq) {
    ApplyRequest request;
    EXPECT_TRUE(
        request.transaction.AddInsert(raw.GroundAtom("Q", {constant})).ok());
    request.token.client_id = 3;
    request.token.request_seq = seq;
    Result<uint64_t> id = raw.SendRaw(
        FrameType::kApply, EncodeApplyRequest(request, raw.symbols()));
    EXPECT_TRUE(id.ok());
    return id.ok() ? *id : 0;
  };

  // #1 dequeues and parks on the stall; #2 fills the queue; #3 spills.
  tokened_apply("a", 1);
  while (!stalled.load()) std::this_thread::yield();
  tokened_apply("b", 2);
  const uint64_t spilled = tokened_apply("c", 3);

  // The rejection is written from the admitting thread, so it arrives
  // while the writer is still parked.
  Result<OwnedFrame> frame = raw.ReceiveRaw();
  ASSERT_TRUE(frame.ok());
  ASSERT_EQ(frame->type, FrameType::kError);
  ASSERT_EQ(frame->request_id, spilled);
  Result<ErrorReply> error = DecodeErrorReply(frame->payload);
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(error->code, StatusCode::kResourceExhausted);
  ASSERT_TRUE(error->has_retry_hint());
  EXPECT_TRUE(error->retryable());

  release.set_value();
  for (int i = 0; i < 2; ++i) {
    Result<OwnedFrame> ok = raw.ReceiveRaw();
    ASSERT_TRUE(ok.ok());
    EXPECT_EQ(ok->type, FrameType::kApplyOk);
  }
  server.Stop();
}

TEST(ServerRetryTest, DegradedServerServesReadsAndRejectsWritesTyped) {
  // Poison commit durability via the persist fault point that fails the
  // WAL fsync *after* the in-memory apply (memory ahead of the log — the
  // unrecoverable-without-reopen case), then prove the contract: reads
  // keep serving, Health says degraded, writes come back kUnavailable with
  // retryable=false, and the stats surface flips.
  std::string tmpl = StrCat(::testing::TempDir(), "srvdegradeXXXXXX");
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  ASSERT_NE(::mkdtemp(buf.data()), nullptr);
  const std::string dir = buf.data();

  auto opened = DeductiveDatabase::OpenPersistent(dir);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<DeductiveDatabase> db = std::move(*opened);
  ASSERT_TRUE(db->DeclareBase("Q", 1).ok());

  LoopbackNetwork network;
  Server server(db.get());
  ASSERT_TRUE(server.Serve(network.TakeListener()).ok());

  ClientOptions options;
  options.client_id = 11;
  options.max_attempts = 5;
  Client client(
      [&network]() -> Result<std::unique_ptr<Connection>> {
        return network.Connect();
      },
      options);

  ASSERT_TRUE(client.Apply(InsertOf(&client, "Q", "healthy")).ok());
  Result<HealthReply> health = client.Health();
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health->state, ServerState::kServing);
  EXPECT_GT(health->last_durable_seq, 0u);

  FaultInjector::Instance().Arm(FaultPoint::kWalFsync, 1,
                                InternalError("injected fsync failure"));
  Result<ApplyReply> poisoned = client.Apply(InsertOf(&client, "Q", "lost"));
  FaultInjector::Instance().Disarm();
  ASSERT_FALSE(poisoned.ok());
  EXPECT_EQ(client.retries(), 0u)
      << "a not-retryable durability failure must not be retried";

  // Reads keep serving — off the in-memory state, which is *ahead* of the
  // log (both facts visible); that is exactly why writes must stop.
  Result<QueryReply> read =
      client.Query({client.MakeAtom("Q", {client.Variable("x")})});
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->answers[0].size(), 2u);

  health = client.Health();
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->state, ServerState::kDegraded);

  Result<ApplyReply> rejected = client.Apply(InsertOf(&client, "Q", "next"));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(client.retries(), 0u)
      << "the degraded rejection is hinted not-retryable";

  const std::string stats = server.StatsJson();
  EXPECT_EQ(JsonCounter(stats, "degraded"), 1u);
  EXPECT_EQ(JsonCounter(stats, "rejected_degraded"), 1u);

  server.Stop();
  EXPECT_FALSE(db->Close().ok()) << "the poison must stay sticky to Close";
  db.reset();
  std::string cmd = StrCat("rm -rf ", dir);
  ASSERT_EQ(std::system(cmd.c_str()), 0);
}

TEST(ServerRetryTest, ReopenRecoversTheDedupTableFromTheWal) {
  // The WAL commit records carry the tokens, so a restarted server keeps
  // answering retries of pre-crash commits with their original replies.
  std::string tmpl = StrCat(::testing::TempDir(), "srvdedupXXXXXX");
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  ASSERT_NE(::mkdtemp(buf.data()), nullptr);
  const std::string dir = buf.data();

  uint64_t committed_version = 0;
  std::string replay_payload;
  SymbolTable replay_symbols;
  {
    auto opened = DeductiveDatabase::OpenPersistent(dir);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    std::unique_ptr<DeductiveDatabase> db = std::move(*opened);
    ASSERT_TRUE(db->DeclareBase("Q", 1).ok());

    LoopbackNetwork network;
    Server server(db.get());
    ASSERT_TRUE(server.Serve(network.TakeListener()).ok());
    auto conn = network.Connect();
    ASSERT_TRUE(conn.ok());
    Client raw(std::move(*conn));

    ApplyRequest request;
    ASSERT_TRUE(
        request.transaction.AddInsert(raw.GroundAtom("Q", {"a"})).ok());
    request.token.client_id = 5;
    request.token.request_seq = 1;
    replay_payload = EncodeApplyRequest(request, raw.symbols());
    ASSERT_TRUE(raw.SendRaw(FrameType::kApply, replay_payload).ok());
    Result<OwnedFrame> frame = raw.ReceiveRaw();
    ASSERT_TRUE(frame.ok());
    ASSERT_EQ(frame->type, FrameType::kApplyOk);
    Result<ApplyReply> reply = DecodeApplyReply(frame->payload);
    ASSERT_TRUE(reply.ok());
    committed_version = reply->version;
    EXPECT_GT(committed_version, 0u);

    server.Stop();
    // No final checkpoint: Close would fold the WAL into the snapshot, and
    // recovery must find the token in the *log* records it replays.
    db.reset();
  }

  auto reopened = DeductiveDatabase::OpenPersistent(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  std::unique_ptr<DeductiveDatabase> db = std::move(*reopened);

  // Version numbers restart with replay (schema declarations bump the
  // version but persist via the snapshot, not WAL records), so the dedup
  // entry carries the commit's version in the *reopened* numbering — the
  // one consistent with what this process's sessions observe.
  persist::CommitToken token;
  token.client_id = 5;
  token.request_seq = 1;
  DedupResult lookup = db->LookupCommitToken(token);
  EXPECT_EQ(lookup.verdict, DedupVerdict::kDuplicate);
  EXPECT_EQ(lookup.version, db->version());
  const uint64_t replayed_version = db->version();

  // End to end: a post-restart retry of the pre-restart commit is a dedup
  // hit, not a second apply.
  LoopbackNetwork network;
  Server server(db.get());
  ASSERT_TRUE(server.Serve(network.TakeListener()).ok());
  auto conn = network.Connect();
  ASSERT_TRUE(conn.ok());
  Client raw(std::move(*conn));
  ApplyRequest request;
  ASSERT_TRUE(
      request.transaction.AddInsert(raw.GroundAtom("Q", {"a"})).ok());
  request.token.client_id = 5;
  request.token.request_seq = 1;
  ASSERT_TRUE(
      raw.SendRaw(FrameType::kApply,
                  EncodeApplyRequest(request, raw.symbols()))
          .ok());
  Result<OwnedFrame> frame = raw.ReceiveRaw();
  ASSERT_TRUE(frame.ok());
  ASSERT_EQ(frame->type, FrameType::kApplyOk);
  Result<ApplyReply> retry = DecodeApplyReply(frame->payload);
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(retry->version, replayed_version);
  EXPECT_EQ(db->version(), replayed_version) << "the retry applied again";
  EXPECT_EQ(JsonCounter(server.StatsJson(), "dedup_hits"), 1u);

  server.Stop();
  ASSERT_TRUE(db->Close().ok());
  db.reset();
  std::string cmd = StrCat("rm -rf ", dir);
  ASSERT_EQ(std::system(cmd.c_str()), 0);
}

TEST(ServerRetryTest, HealthProbeOnAHealthyServer) {
  DeductiveDatabase db;
  ASSERT_TRUE(db.DeclareBase("Q", 1).ok());
  LoopbackNetwork network;
  Server server(&db);
  ASSERT_TRUE(server.Serve(network.TakeListener()).ok());

  auto conn = network.Connect();
  ASSERT_TRUE(conn.ok());
  Client client(std::move(*conn));
  Result<HealthReply> health = client.Health();
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health->state, ServerState::kServing);
  EXPECT_EQ(health->version, db.version());
  EXPECT_EQ(health->last_durable_seq, 0u);  // in-memory database
  EXPECT_EQ(health->queue_depth, 0u);

  server.Stop();
}

}  // namespace
}  // namespace deddb::server
