// Unit tests for the predicate dependency graph: edge construction and
// polarity, Tarjan SCC computation (self-loops, interlocking cycles, the
// empty program), bottom-up condensation order, reachability and the
// relevant-subprogram slice.

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>

#include "core/deductive_database.h"
#include "eval/dependency_graph.h"
#include "parser/parser.h"

namespace deddb {
namespace {

std::unique_ptr<DeductiveDatabase> Load(const char* source) {
  auto db = std::make_unique<DeductiveDatabase>();
  auto loaded = LoadProgram(db.get(), source);
  EXPECT_TRUE(loaded.ok()) << loaded.status();
  return db;
}

SymbolId Pred(const DeductiveDatabase& db, const char* name) {
  return db.database().FindPredicate(name).value();
}

// Index of each SCC in the bottom-up order, keyed by member predicate.
std::unordered_map<SymbolId, size_t> SccIndex(
    const std::vector<std::vector<SymbolId>>& sccs) {
  std::unordered_map<SymbolId, size_t> index;
  for (size_t i = 0; i < sccs.size(); ++i) {
    for (SymbolId p : sccs[i]) index[p] = i;
  }
  return index;
}

TEST(DependencyGraphTest, EmptyProgram) {
  Program program;
  DependencyGraph graph(program);
  EXPECT_TRUE(graph.nodes().empty());
  EXPECT_TRUE(graph.SccsBottomUp().empty());
  EXPECT_TRUE(graph.ReachableFrom({}).empty());
}

TEST(DependencyGraphTest, EdgesAndPolarity) {
  auto db = Load(R"(
    base Q/1. base R/1.
    derived S/1. derived T/1.
    derived P/1.
    S(x) <- Q(x).
    T(x) <- R(x).
    P(x) <- S(x) & not T(x) & Q(x).
  )");
  DependencyGraph graph(db->database().program());
  SymbolId p = Pred(*db, "P");
  ASSERT_TRUE(graph.IsDefined(p));
  EXPECT_FALSE(graph.IsDefined(Pred(*db, "Q")));  // extensional: a leaf

  // Edges only point at defined predicates; the extensional Q occurrence in
  // P's body is not tracked.
  const auto& edges = graph.EdgesOf(p);
  ASSERT_EQ(edges.size(), 2u);
  bool saw_positive_s = false, saw_negative_t = false;
  for (const auto& edge : edges) {
    if (edge.target == Pred(*db, "S") && !edge.negative) saw_positive_s = true;
    if (edge.target == Pred(*db, "T") && edge.negative) saw_negative_t = true;
  }
  EXPECT_TRUE(saw_positive_s);
  EXPECT_TRUE(saw_negative_t);
}

// A predicate occurring both positively and negatively in bodies of the same
// head yields one edge per polarity (deduplicated per (target, sign) pair),
// so stratification still sees the negative dependency.
TEST(DependencyGraphTest, MixedPolarityYieldsBothEdges) {
  auto db = Load(R"(
    base Q/1.
    derived S/1.
    derived P/1.
    S(x) <- Q(x).
    P(x) <- S(x) & Q(x).
    P(x) <- Q(x) & not S(x).
  )");
  DependencyGraph graph(db->database().program());
  const auto& edges = graph.EdgesOf(Pred(*db, "P"));
  ASSERT_EQ(edges.size(), 2u);
  bool saw_positive = false, saw_negative = false;
  for (const auto& edge : edges) {
    EXPECT_EQ(edge.target, Pred(*db, "S"));
    (edge.negative ? saw_negative : saw_positive) = true;
  }
  EXPECT_TRUE(saw_positive);
  EXPECT_TRUE(saw_negative);
}

TEST(DependencyGraphTest, SelfLoopIsItsOwnScc) {
  auto db = Load(R"(
    base Edge/2.
    derived Path/2.
    Path(x, y) <- Edge(x, y).
    Path(x, z) <- Path(x, y) & Edge(y, z).
  )");
  DependencyGraph graph(db->database().program());
  auto sccs = graph.SccsBottomUp();
  ASSERT_EQ(sccs.size(), 1u);
  EXPECT_EQ(sccs[0], std::vector<SymbolId>{Pred(*db, "Path")});
}

// Two cycles sharing a node collapse into one SCC: A <-> B and B <-> C give
// the single component {A, B, C}.
TEST(DependencyGraphTest, InterlockingCyclesCollapse) {
  auto db = Load(R"(
    base Q/1.
    derived A/1. derived B/1. derived C/1.
    A(x) <- B(x).
    B(x) <- A(x).
    B(x) <- C(x).
    C(x) <- B(x).
    A(x) <- Q(x).
  )");
  DependencyGraph graph(db->database().program());
  auto sccs = graph.SccsBottomUp();
  ASSERT_EQ(sccs.size(), 1u);
  EXPECT_EQ(sccs[0].size(), 3u);
}

// Two disjoint cycles bridged by a one-way edge stay separate components,
// and the dependee's component comes first in the bottom-up order.
TEST(DependencyGraphTest, BridgedCyclesStaySeparate) {
  auto db = Load(R"(
    base Q/1.
    derived A/1. derived B/1. derived C/1. derived D/1.
    A(x) <- B(x).
    B(x) <- A(x).
    C(x) <- D(x).
    D(x) <- C(x).
    A(x) <- C(x).
    C(x) <- Q(x).
  )");
  DependencyGraph graph(db->database().program());
  auto sccs = graph.SccsBottomUp();
  ASSERT_EQ(sccs.size(), 2u);
  auto index = SccIndex(sccs);
  // A depends on C, so {C, D} must be evaluated before {A, B}.
  EXPECT_LT(index[Pred(*db, "C")], index[Pred(*db, "A")]);
  EXPECT_EQ(index[Pred(*db, "A")], index[Pred(*db, "B")]);
  EXPECT_EQ(index[Pred(*db, "C")], index[Pred(*db, "D")]);
}

TEST(DependencyGraphTest, BottomUpOrderIsTopological) {
  auto db = Load(R"(
    base Q/1.
    derived S/1. derived T/1. derived U/1.
    S(x) <- Q(x).
    T(x) <- S(x).
    U(x) <- T(x) & not S(x).
  )");
  DependencyGraph graph(db->database().program());
  auto index = SccIndex(graph.SccsBottomUp());
  EXPECT_LT(index[Pred(*db, "S")], index[Pred(*db, "T")]);
  EXPECT_LT(index[Pred(*db, "T")], index[Pred(*db, "U")]);
}

TEST(DependencyGraphTest, ReachableFromFollowsDependencies) {
  auto db = Load(R"(
    base Q/1.
    derived S/1. derived T/1. derived U/1.
    S(x) <- Q(x).
    T(x) <- S(x).
    U(x) <- Q(x).
  )");
  DependencyGraph graph(db->database().program());
  auto reachable = graph.ReachableFrom({Pred(*db, "T")});
  EXPECT_EQ(reachable.size(), 2u);
  EXPECT_TRUE(reachable.count(Pred(*db, "T")));
  EXPECT_TRUE(reachable.count(Pred(*db, "S")));
  EXPECT_FALSE(reachable.count(Pred(*db, "U")));
}

TEST(DependencyGraphTest, RelevantSubprogramSlicesRules) {
  auto db = Load(R"(
    base Q/1.
    derived S/1. derived T/1. derived U/1.
    S(x) <- Q(x).
    T(x) <- S(x).
    U(x) <- Q(x).
  )");
  Program sliced =
      RelevantSubprogram(db->database().program(), {Pred(*db, "T")});
  EXPECT_EQ(sliced.size(), 2u);  // T's rule and S's rule; U's dropped
  EXPECT_TRUE(sliced.Defines(Pred(*db, "T")));
  EXPECT_TRUE(sliced.Defines(Pred(*db, "S")));
  EXPECT_FALSE(sliced.Defines(Pred(*db, "U")));
}

}  // namespace
}  // namespace deddb
