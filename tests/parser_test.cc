// Unit tests of the lexer and parser: declarations, facts, rules,
// transactions, requests, and error reporting.

#include <gtest/gtest.h>

#include "parser/lexer.h"
#include "parser/parser.h"

namespace deddb {
namespace {

TEST(LexerTest, ClassifiesTokens) {
  auto tokens = Tokenize("P(x, A) <- Q(x). % comment\n:-&/42");
  ASSERT_TRUE(tokens.ok()) << tokens.status();
  std::vector<TokenKind> kinds;
  for (const Token& t : *tokens) kinds.push_back(t.kind);
  EXPECT_EQ(kinds,
            (std::vector<TokenKind>{
                TokenKind::kUpperIdent, TokenKind::kLParen,
                TokenKind::kLowerIdent, TokenKind::kComma,
                TokenKind::kUpperIdent, TokenKind::kRParen,
                TokenKind::kArrow, TokenKind::kUpperIdent,
                TokenKind::kLParen, TokenKind::kLowerIdent,
                TokenKind::kRParen, TokenKind::kDot, TokenKind::kArrow,
                TokenKind::kAmp, TokenKind::kSlash, TokenKind::kInteger,
                TokenKind::kEof}));
}

TEST(LexerTest, TracksLineNumbers) {
  auto tokens = Tokenize("A\nB\n  C");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].line, 1u);
  EXPECT_EQ((*tokens)[1].line, 2u);
  EXPECT_EQ((*tokens)[2].line, 3u);
  EXPECT_EQ((*tokens)[2].column, 3u);
}

TEST(LexerTest, RejectsUnknownCharacters) {
  EXPECT_FALSE(Tokenize("P(x) ; Q(x)").ok());
  EXPECT_FALSE(Tokenize("P @ Q").ok());
}

TEST(LexerTest, RejectsUnderscoreIdentifiers) {
  EXPECT_FALSE(Tokenize("_gen(x)").ok());
}

TEST(ParserTest, LoadsCompleteProgram) {
  DeductiveDatabase db;
  auto loaded = LoadProgram(&db, R"(
    base Works/2.
    view Busy/1.
    ic NoGhosts/1.
    condition Watch/1.
    derived Helper/1.
    Works(John, Sales).
    Busy(p) <- Works(p, d).
    Helper(p) <- Works(p, d).
    NoGhosts(d) <- Works(p, d) & not Busy(p).
    Watch(p) <- Busy(p).
  )");
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(*loaded, 10u);
  EXPECT_EQ(db.database().program().size(),
            4u + 1u);  // 4 user rules + global Ic rule
  EXPECT_EQ(db.database().facts().TotalFacts(), 1u);
}

TEST(ParserTest, MaterializedViewDeclaration) {
  DeductiveDatabase db;
  ASSERT_TRUE(LoadProgram(&db, "materialized view V/1.").ok());
  SymbolId v = db.database().FindPredicate("V").value();
  EXPECT_TRUE(db.database().IsMaterialized(v));
}

TEST(ParserTest, CommaAlsoSeparatesBodyLiterals) {
  DeductiveDatabase db;
  auto loaded = LoadProgram(&db, R"(
    base A/1. base B/1. derived D/1.
    D(x) <- A(x), B(x).
  )");
  ASSERT_TRUE(loaded.ok()) << loaded.status();
}

TEST(ParserTest, IntegerConstants) {
  DeductiveDatabase db;
  auto loaded = LoadProgram(&db, R"(
    base Score/2.
    Score(Anna, 95).
  )");
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(db.database().facts().Contains(
      db.GroundAtom("Score", {"Anna", "95"}).value()));
}

TEST(ParserTest, ErrorsMentionLineNumbers) {
  DeductiveDatabase db;
  auto loaded = LoadProgram(&db, "base A/1.\nA(x.\n");
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("line 2"), std::string::npos)
      << loaded.status();
}

TEST(ParserTest, RejectsUndeclaredPredicates) {
  DeductiveDatabase db;
  EXPECT_FALSE(LoadProgram(&db, "Mystery(A).").ok());
}

TEST(ParserTest, RejectsArityMismatch) {
  DeductiveDatabase db;
  EXPECT_FALSE(LoadProgram(&db, "base A/2. A(OnlyOne).").ok());
}

TEST(ParserTest, RejectsNonGroundFact) {
  DeductiveDatabase db;
  EXPECT_FALSE(LoadProgram(&db, "base A/1. A(x).").ok());
}

TEST(ParserTest, RejectsUnknownKeyword) {
  DeductiveDatabase db;
  EXPECT_FALSE(LoadProgram(&db, "table A/1.").ok());
}

class RequestParsingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(LoadProgram(&db_, R"(
      base Q/1. base R/1.
      view P/1.
      P(x) <- Q(x) & not R(x).
      Q(A). R(B).
    )")
                    .ok());
  }
  DeductiveDatabase db_;
};

TEST_F(RequestParsingTest, ParsesTransaction) {
  auto txn = ParseTransaction(&db_, "ins Q(B), del R(B)");
  ASSERT_TRUE(txn.ok()) << txn.status();
  EXPECT_EQ(txn->size(), 2u);
  EXPECT_EQ(txn->ToString(db_.symbols()), "{del R(B), ins Q(B)}");
}

TEST_F(RequestParsingTest, TransactionRejectsDerivedAtoms) {
  auto txn = ParseTransaction(&db_, "ins P(B)");
  EXPECT_FALSE(txn.ok());
}

TEST_F(RequestParsingTest, TransactionRejectsOpenAtoms) {
  EXPECT_FALSE(ParseTransaction(&db_, "ins Q(x)").ok());
}

TEST_F(RequestParsingTest, TransactionRejectsConflicts) {
  EXPECT_FALSE(ParseTransaction(&db_, "ins Q(B), del Q(B)").ok());
}

TEST_F(RequestParsingTest, ParsesRequestWithNegationAndVariables) {
  auto request = ParseRequest(&db_, "ins P(B), not del P(x)");
  ASSERT_TRUE(request.ok()) << request.status();
  ASSERT_EQ(request->events.size(), 2u);
  EXPECT_TRUE(request->events[0].positive);
  EXPECT_TRUE(request->events[0].is_insert);
  EXPECT_FALSE(request->events[1].positive);
  EXPECT_FALSE(request->events[1].is_insert);
  EXPECT_TRUE(request->events[1].args[0].is_variable());
  EXPECT_EQ(request->ToString(db_.symbols()), "{ins P(B), not del P(x)}");
}

TEST_F(RequestParsingTest, RequestRequiresInsOrDel) {
  EXPECT_FALSE(ParseRequest(&db_, "P(B)").ok());
  EXPECT_FALSE(ParseRequest(&db_, "add P(B)").ok());
}

TEST_F(RequestParsingTest, TrailingInputIsAnError) {
  EXPECT_FALSE(ParseTransaction(&db_, "ins Q(B) garbage").ok());
}

}  // namespace
}  // namespace deddb
