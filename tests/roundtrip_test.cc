// Round-trip and determinism tests: printed rules and facts re-parse to the
// same program; repeated runs produce byte-identical outputs (the library
// guarantees deterministic canonical forms so golden tests are possible).

#include <gtest/gtest.h>

#include "core/deductive_database.h"
#include "parser/parser.h"
#include "util/strings.h"

namespace deddb {
namespace {

const char* kDeclarations = R"(
  base La/1. base Works/2. base Dept/1.
  view Busy/1.
  view Idle/1.
  ic IcGhost/2.
  condition Watch/1.
)";

const char* kRules = R"(
  Busy(p) <- Works(p, d).
  Idle(p) <- La(p) & not Busy(p).
  IcGhost(p, d) <- Works(p, d) & not Dept(d).
  Watch(p) <- Idle(p) & La(p).
)";

const char* kFacts = R"(
  La(Ann). La(Bea).
  Works(Ann, Sales). Dept(Sales).
)";

TEST(RoundTripTest, RulesReparseToSameProgram) {
  DeductiveDatabase original;
  ASSERT_TRUE(LoadProgram(&original, kDeclarations).ok());
  ASSERT_TRUE(LoadProgram(&original, kRules).ok());

  // Print every user rule (skip the generated global-Ic rules, whose fresh
  // variables are deliberately unparseable) and re-parse.
  DeductiveDatabase reparsed;
  ASSERT_TRUE(LoadProgram(&reparsed, kDeclarations).ok());
  size_t user_rules = 0;
  for (const Rule& rule : original.database().program().rules()) {
    if (rule.head().predicate() == original.database().global_ic()) continue;
    std::string text = rule.ToString(original.symbols()) + ".";
    auto loaded = LoadProgram(&reparsed, text);
    ASSERT_TRUE(loaded.ok()) << text << ": " << loaded.status();
    ++user_rules;
  }
  EXPECT_EQ(user_rules, 4u);
  EXPECT_EQ(original.database().program().ToString(original.symbols()),
            reparsed.database().program().ToString(reparsed.symbols()));
}

TEST(RoundTripTest, FactsReparseToSameStore) {
  DeductiveDatabase original;
  ASSERT_TRUE(LoadProgram(&original, kDeclarations).ok());
  ASSERT_TRUE(LoadProgram(&original, kFacts).ok());

  DeductiveDatabase reparsed;
  ASSERT_TRUE(LoadProgram(&reparsed, kDeclarations).ok());
  std::string dump = original.database().facts().ToString(original.symbols());
  for (const std::string& line : Split(dump, '\n')) {
    if (line.empty()) continue;
    ASSERT_TRUE(LoadProgram(&reparsed, line + ".").ok()) << line;
  }
  EXPECT_EQ(dump, reparsed.database().facts().ToString(reparsed.symbols()));
}

TEST(RoundTripTest, TransactionToStringReparses) {
  DeductiveDatabase db;
  ASSERT_TRUE(LoadProgram(&db, kDeclarations).ok());
  ASSERT_TRUE(LoadProgram(&db, kFacts).ok());
  auto txn = ParseTransaction(&db, "del La(Ann), ins Dept(Lab)");
  ASSERT_TRUE(txn.ok());
  // ToString is "{...}"; strip braces and reparse.
  std::string text = txn->ToString(db.symbols());
  auto again = ParseTransaction(&db, text.substr(1, text.size() - 2));
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(txn->ToString(db.symbols()), again->ToString(db.symbols()));
}

TEST(DeterminismTest, CompilationIsReproducible) {
  auto build = [] {
    auto db = std::make_unique<DeductiveDatabase>();
    EXPECT_TRUE(LoadProgram(db.get(), kDeclarations).ok());
    EXPECT_TRUE(LoadProgram(db.get(), kRules).ok());
    EXPECT_TRUE(LoadProgram(db.get(), kFacts).ok());
    return db;
  };
  auto a = build();
  auto b = build();
  auto ca = a->Compiled();
  auto cb = b->Compiled();
  ASSERT_TRUE(ca.ok());
  ASSERT_TRUE(cb.ok());
  EXPECT_EQ((*ca)->augmented.ToString(a->symbols()),
            (*cb)->augmented.ToString(b->symbols()));
}

TEST(DeterminismTest, InterpretationsAreReproducible) {
  auto build = [] {
    auto db = std::make_unique<DeductiveDatabase>();
    EXPECT_TRUE(LoadProgram(db.get(), kDeclarations).ok());
    EXPECT_TRUE(LoadProgram(db.get(), kRules).ok());
    EXPECT_TRUE(LoadProgram(db.get(), kFacts).ok());
    return db;
  };
  auto a = build();
  auto b = build();

  auto txn_a = ParseTransaction(a.get(), "ins Works(Bea, Sales)");
  auto txn_b = ParseTransaction(b.get(), "ins Works(Bea, Sales)");
  EXPECT_EQ(a->InducedEvents(*txn_a)->ToString(a->symbols()),
            b->InducedEvents(*txn_b)->ToString(b->symbols()));

  auto req_a = ParseRequest(a.get(), "ins Busy(Bea)");
  auto req_b = ParseRequest(b.get(), "ins Busy(Bea)");
  EXPECT_EQ(a->TranslateViewUpdate(*req_a)->dnf.ToString(a->symbols()),
            b->TranslateViewUpdate(*req_b)->dnf.ToString(b->symbols()));
}

}  // namespace
}  // namespace deddb
