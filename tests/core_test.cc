// Tests of the facade (DeductiveDatabase) and the §5.3 UpdateProcessor:
// cache invalidation, transaction application, the combined upward pipeline
// and the view-update policies.

#include <gtest/gtest.h>

#include "core/deductive_database.h"
#include "core/update_processor.h"
#include "parser/parser.h"

namespace deddb {
namespace {

std::unique_ptr<DeductiveDatabase> Load(const char* source) {
  auto db = std::make_unique<DeductiveDatabase>();
  auto loaded = LoadProgram(db.get(), source);
  EXPECT_TRUE(loaded.ok()) << loaded.status();
  return db;
}

const char* kEmployment = R"(
  base La/1. base Works/1. base U_benefit/1.
  materialized view Unemp/1.
  ic Ic1/1.
  condition Alert/1.
  Unemp(x) <- La(x) & not Works(x).
  Ic1(x) <- Unemp(x) & not U_benefit(x).
  Alert(x) <- Unemp(x).
  La(Dolors).
  U_benefit(Dolors).
)";

TEST(FacadeTest, TermAndAtomBuilders) {
  auto db = Load(kEmployment);
  Term c = db->Constant("Dolors");
  Term v = db->Variable("who");
  EXPECT_TRUE(c.is_constant());
  EXPECT_TRUE(v.is_variable());
  auto atom = db->MakeAtom("Unemp", {c});
  ASSERT_TRUE(atom.ok());
  EXPECT_EQ(atom->ToString(db->symbols()), "Unemp(Dolors)");
  EXPECT_FALSE(db->MakeAtom("Unemp", {c, c}).ok());   // arity
  EXPECT_FALSE(db->MakeAtom("Missing", {c}).ok());    // unknown
}

TEST(FacadeTest, MakeTransactionValidatesBaseOnly) {
  auto db = Load(kEmployment);
  auto good = db->MakeTransaction(
      {{DeductiveDatabase::Op::kInsert,
        db->GroundAtom("Works", {"Dolors"}).value()}});
  ASSERT_TRUE(good.ok());
  auto bad = db->MakeTransaction(
      {{DeductiveDatabase::Op::kInsert,
        db->GroundAtom("Unemp", {"Dolors"}).value()}});
  EXPECT_FALSE(bad.ok());
}

TEST(FacadeTest, ApplyValidatesEventDefinitions) {
  auto db = Load(kEmployment);
  Transaction invalid;
  ASSERT_TRUE(
      invalid
          .AddInsert(db->database().FindPredicate("La").value(),
                     {db->symbols().Intern("Dolors")})
          .ok());
  // La(Dolors) already holds: the insertion event is invalid (eq. 1).
  EXPECT_EQ(db->Apply(invalid).code(), StatusCode::kFailedPrecondition);
}

TEST(FacadeTest, CompiledCacheInvalidatedBySchemaChanges) {
  auto db = Load(kEmployment);
  auto first = db->Compiled();
  ASSERT_TRUE(first.ok());
  size_t rules_before = (*first)->augmented.size();
  // Adding a rule must trigger recompilation.
  ASSERT_TRUE(LoadProgram(db.get(), R"(
    view Idle/1.
    Idle(x) <- La(x) & not Works(x).
  )")
                  .ok());
  auto second = db->Compiled();
  ASSERT_TRUE(second.ok());
  EXPECT_GT((*second)->augmented.size(), rules_before);
}

TEST(FacadeTest, DomainCacheInvalidatedByFactChanges) {
  auto db = Load(kEmployment);
  auto domain = db->Domain();
  ASSERT_TRUE(domain.ok());
  size_t before = (*domain)->global_size();
  ASSERT_TRUE(db->AddFact(db->GroundAtom("La", {"Maria"}).value()).ok());
  auto after = db->Domain();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ((*after)->global_size(), before + 1);
}

TEST(FacadeTest, IsConsistentTracksState) {
  auto db = Load(kEmployment);
  EXPECT_TRUE(db->IsConsistent().value());
  ASSERT_TRUE(
      db->RemoveFact(db->GroundAtom("U_benefit", {"Dolors"}).value()).ok());
  EXPECT_FALSE(db->IsConsistent().value());
}

class UpdateProcessorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = Load(kEmployment);
    ASSERT_TRUE(db_->InitializeMaterializedViews().ok());
    processor_ = std::make_unique<UpdateProcessor>(db_.get());
  }
  std::unique_ptr<DeductiveDatabase> db_;
  std::unique_ptr<UpdateProcessor> processor_;
};

TEST_F(UpdateProcessorTest, AcceptedTransactionAppliesEverything) {
  auto txn = ParseTransaction(db_.get(), "ins La(Maria), ins U_benefit(Maria)");
  ASSERT_TRUE(txn.ok());
  auto report = processor_->ProcessTransaction(*txn, /*apply=*/true);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->accepted);
  // Base facts applied.
  EXPECT_TRUE(db_->database().facts().Contains(
      db_->GroundAtom("La", {"Maria"}).value()));
  // Materialized view maintained.
  SymbolId unemp = db_->database().FindPredicate("Unemp").value();
  SymbolId maria = db_->symbols().Intern("Maria");
  EXPECT_TRUE(db_->database().materialized_store().Contains(unemp, {maria}));
  // Condition change reported.
  EXPECT_EQ(report->conditions.events.ToString(db_->symbols()),
            "{ins Alert(Maria)}");
}

TEST_F(UpdateProcessorTest, ViolatingTransactionIsRejectedAndNotApplied) {
  auto txn = ParseTransaction(db_.get(), "ins La(Maria)");  // no benefit
  ASSERT_TRUE(txn.ok());
  auto report = processor_->ProcessTransaction(*txn, /*apply=*/true);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->accepted);
  ASSERT_EQ(report->integrity.violations.size(), 1u);
  EXPECT_EQ(report->integrity.violations[0].ToString(db_->symbols()),
            "Ic1(Maria)");
  EXPECT_FALSE(db_->database().facts().Contains(
      db_->GroundAtom("La", {"Maria"}).value()));
  SymbolId unemp = db_->database().FindPredicate("Unemp").value();
  SymbolId maria = db_->symbols().Intern("Maria");
  EXPECT_FALSE(
      db_->database().materialized_store().Contains(unemp, {maria}));
}

TEST_F(UpdateProcessorTest, RequiresConsistentDatabase) {
  ASSERT_TRUE(
      db_->RemoveFact(db_->GroundAtom("U_benefit", {"Dolors"}).value()).ok());
  Transaction txn;
  EXPECT_EQ(processor_->ProcessTransaction(txn).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(UpdateProcessorTest, ViewUpdateWithDefaultMaintenance) {
  auto request = ParseRequest(db_.get(), "ins Unemp(Maria)");
  ASSERT_TRUE(request.ok());
  auto outcome = processor_->ProcessViewUpdate(*request);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  ASSERT_FALSE(outcome->translations.empty());
  // Every surviving candidate keeps the database consistent.
  for (const auto& translation : outcome->translations) {
    auto check = db_->CheckIntegrity(translation.transaction);
    ASSERT_TRUE(check.ok());
    EXPECT_FALSE(check->violated)
        << translation.ToString(db_->symbols());
  }
}

TEST_F(UpdateProcessorTest, CheckPolicyRejectsInsteadOfRepairing) {
  auto request = ParseRequest(db_.get(), "ins Unemp(Maria)");
  ASSERT_TRUE(request.ok());
  UpdateProcessor::ViewUpdatePolicy policy;
  policy.check = {db_->database().FindPredicate("Ic1").value()};
  auto outcome = processor_->ProcessViewUpdate(*request, policy);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  // The raw translation {ins La(Maria)} violates Ic1 and is rejected; no
  // repair is generated because Ic1 is only checked.
  EXPECT_GE(outcome->rejected_by_check, 1u);
  for (const auto& translation : outcome->translations) {
    auto check = db_->CheckIntegrity(translation.transaction);
    ASSERT_TRUE(check.ok());
    EXPECT_FALSE(check->violated);
  }
}

TEST_F(UpdateProcessorTest, UnsatisfiableRequestYieldsNoTranslations) {
  // Unemp(Dolors) already holds.
  auto request = ParseRequest(db_.get(), "ins Unemp(Dolors)");
  ASSERT_TRUE(request.ok());
  auto outcome = processor_->ProcessViewUpdate(*request);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->translations.empty());
}

}  // namespace
}  // namespace deddb
