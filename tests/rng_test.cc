#include "util/rng.h"

#include <gtest/gtest.h>

namespace deddb {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    any_diff |= a.Next() != b.Next();
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.NextBelow(1), 0u);
  }
}

TEST(RngTest, NextBelowCoversAllValues) {
  Rng rng(99);
  std::vector<bool> seen(8, false);
  for (int i = 0; i < 1000; ++i) seen[rng.NextBelow(8)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextChanceExtremes) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextChance(0, 100));
    EXPECT_TRUE(rng.NextChance(100, 100));
  }
}

TEST(RngTest, NextChanceRoughlyCalibrated) {
  Rng rng(31);
  int hits = 0;
  const int kTrials = 10000;
  for (int i = 0; i < kTrials; ++i) hits += rng.NextChance(30, 100);
  EXPECT_GT(hits, kTrials * 25 / 100);
  EXPECT_LT(hits, kTrials * 35 / 100);
}

}  // namespace
}  // namespace deddb
