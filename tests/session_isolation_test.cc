// Targeted snapshot-isolation scenarios for the session layer (DESIGN.md
// §9), complementing the randomized suite in session_history_test.cc:
// snapshots pinned across Checkpoint(), sessions outliving rule updates
// (keeping their compiled event machinery), reads across an
// ApplyAtomically rollback, the sticky commit-health failure when a commit
// is applied in memory but its log record never becomes durable, and
// epoch-based reclamation of retired snapshot versions observed through the
// session.* metrics.

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/deductive_database.h"
#include "core/session.h"
#include "core/update_processor.h"
#include "obs/metrics.h"
#include "util/resource_guard.h"
#include "util/strings.h"

namespace deddb {
namespace {

// Q base, R base, P(x) <- Q(x) & not R(x) as a view.
void DeclareSchema(DeductiveDatabase* db, bool materialize = false) {
  ASSERT_TRUE(db->DeclareBase("Q", 1).ok());
  ASSERT_TRUE(db->DeclareBase("R", 1).ok());
  Result<SymbolId> p = db->DeclareView("P", 1);
  ASSERT_TRUE(p.ok());
  Term x = db->Variable("x");
  ASSERT_TRUE(
      db->AddRule(Rule(db->MakeAtom("P", {x}).value(),
                       {Literal::Positive(db->MakeAtom("Q", {x}).value()),
                        Literal::Negative(db->MakeAtom("R", {x}).value())}))
          .ok());
  if (materialize) {
    ASSERT_TRUE(db->MaterializeView(*p).ok());
    ASSERT_TRUE(db->InitializeMaterializedViews().ok());
  }
}

Transaction InsertOf(DeductiveDatabase* db, std::string_view pred,
                     std::string_view constant) {
  Transaction txn;
  EXPECT_TRUE(
      txn.AddInsert(db->GroundAtom(pred, {constant}).value()).ok());
  return txn;
}

std::string TempDirFor(const char* tag) {
  std::string tmpl = StrCat(::testing::TempDir(), tag, "XXXXXX");
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  EXPECT_NE(::mkdtemp(buf.data()), nullptr);
  return std::string(buf.data());
}

class SessionIsolationTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Instance().Disarm(); }
};

TEST_F(SessionIsolationTest, SessionPinsStateAcrossWriterCommits) {
  DeductiveDatabase db;
  DeclareSchema(&db);
  ASSERT_TRUE(db.Apply(InsertOf(&db, "Q", "a")).ok());

  auto session = db.BeginSession();
  ASSERT_TRUE(session.ok());
  const uint64_t pinned_version = (*session)->version();

  ASSERT_TRUE(db.Apply(InsertOf(&db, "Q", "b")).ok());
  ASSERT_TRUE(db.Apply(InsertOf(&db, "R", "a")).ok());

  // The session still answers from its snapshot: Q(a) holds, Q(b) does not,
  // and P(a) still derives because the snapshot has no R(a).
  Atom qa = (*session)->GroundAtom("Q", {"a"}).value();
  Atom qb = (*session)->GroundAtom("Q", {"b"}).value();
  Atom pa = (*session)->GroundAtom("P", {"a"}).value();
  EXPECT_TRUE((*session)->Holds(qa).value());
  EXPECT_FALSE((*session)->Holds(qb).value());
  EXPECT_TRUE((*session)->Holds(pa).value());
  EXPECT_EQ((*session)->version(), pinned_version);

  // A fresh session sees the new head, on a strictly later version.
  auto head = db.BeginSession();
  ASSERT_TRUE(head.ok());
  EXPECT_GT((*head)->version(), pinned_version);
  EXPECT_TRUE((*head)->Holds(qb).value());
  EXPECT_FALSE((*head)->Holds(pa).value());
}

TEST_F(SessionIsolationTest, SnapshotStaysPinnedAcrossCheckpoint) {
  std::string dir = TempDirFor("ckpt");
  {
    auto opened = DeductiveDatabase::OpenPersistent(dir);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    std::unique_ptr<DeductiveDatabase> db = std::move(*opened);
    DeclareSchema(db.get());
    ASSERT_TRUE(db->Checkpoint().ok());
    ASSERT_TRUE(db->Apply(InsertOf(db.get(), "Q", "a")).ok());

    auto session = db->BeginSession();
    ASSERT_TRUE(session.ok());

    // Commit + checkpoint: the checkpoint swaps the WAL out underneath any
    // in-flight commits and truncates the log — none of which may move the
    // session off its snapshot.
    ASSERT_TRUE(db->Apply(InsertOf(db.get(), "Q", "b")).ok());
    ASSERT_TRUE(db->Checkpoint().ok());
    ASSERT_TRUE(db->Apply(InsertOf(db.get(), "R", "a")).ok());

    Atom qa = (*session)->GroundAtom("Q", {"a"}).value();
    Atom qb = (*session)->GroundAtom("Q", {"b"}).value();
    Atom ra = (*session)->GroundAtom("R", {"a"}).value();
    EXPECT_TRUE((*session)->Holds(qa).value());
    EXPECT_FALSE((*session)->Holds(qb).value());
    EXPECT_FALSE((*session)->Holds(ra).value());
    ASSERT_TRUE(db->Close().ok());
  }
  // All three commits survive recovery.
  auto reopened = DeductiveDatabase::OpenPersistent(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_TRUE(
      (*reopened)->Apply(InsertOf(reopened->get(), "Q", "c")).ok());
  Atom qb = (*reopened)->GroundAtom("Q", {"b"}).value();
  Atom ra = (*reopened)->GroundAtom("R", {"a"}).value();
  EXPECT_TRUE((*reopened)->database().facts().Contains(
      qb.predicate(), Tuple{qb.args()[0].constant()}));
  EXPECT_TRUE((*reopened)->database().facts().Contains(
      ra.predicate(), Tuple{ra.args()[0].constant()}));
  ASSERT_EQ(std::system(StrCat("rm -rf ", dir).c_str()), 0);
}

TEST_F(SessionIsolationTest, SessionOutlivesRuleUpdateWithItsCompiledRules) {
  DeductiveDatabase db;
  ASSERT_TRUE(db.DeclareBase("Q", 1).ok());
  ASSERT_TRUE(db.DeclareBase("R", 1).ok());
  ASSERT_TRUE(db.DeclareView("P", 1).ok());
  Term x = db.Variable("x");
  Rule from_q(db.MakeAtom("P", {x}).value(),
              {Literal::Positive(db.MakeAtom("Q", {x}).value())});
  Rule from_r(db.MakeAtom("P", {x}).value(),
              {Literal::Positive(db.MakeAtom("R", {x}).value())});
  ASSERT_TRUE(db.AddRule(from_q).ok());
  ASSERT_TRUE(db.AddRule(from_r).ok());

  auto session = db.BeginSession();
  ASSERT_TRUE(session.ok());

  // Writer drops P <- R. The session keeps the event machinery it compiled
  // at snapshot time: inserting R(a) still induces P(a) through its pinned
  // rules, while a fresh session no longer derives it.
  problems::RuleUpdate update;
  update.remove.push_back(from_r);
  ASSERT_TRUE(db.ApplyRuleUpdate(update).ok());

  Transaction insert_r = InsertOf(&db, "R", "a");
  SymbolId p = db.database().FindPredicate("P").value();
  SymbolId a = db.symbols().Intern("a");

  auto old_events = (*session)->InducedEvents(insert_r);
  ASSERT_TRUE(old_events.ok()) << old_events.status().ToString();
  EXPECT_TRUE(old_events->ContainsInsert(p, Tuple{a}));

  auto fresh = db.BeginSession();
  ASSERT_TRUE(fresh.ok());
  auto new_events = (*fresh)->InducedEvents(insert_r);
  ASSERT_TRUE(new_events.ok()) << new_events.status().ToString();
  EXPECT_FALSE(new_events->ContainsInsert(p, Tuple{a}));
}

TEST_F(SessionIsolationTest, ReadsAreUndisturbedByAnApplyAtomicallyRollback) {
  DeductiveDatabase db;
  DeclareSchema(&db, /*materialize=*/true);
  {
    UpdateProcessor processor(&db);
    auto report = processor.ProcessTransaction(InsertOf(&db, "Q", "a"));
    ASSERT_TRUE(report.ok() && report->accepted);
  }
  auto session = db.BeginSession();
  ASSERT_TRUE(session.ok());
  const uint64_t pinned_version = (*session)->version();

  // Force the processor's commit poke to fail AFTER the view delta and the
  // base delta applied, driving the full rollback path.
  FaultInjector::Instance().Arm(FaultPoint::kProcessorCommit, 1,
                                InternalError("injected commit failure"));
  {
    UpdateProcessor processor(&db);
    auto report = processor.ProcessTransaction(InsertOf(&db, "Q", "b"));
    EXPECT_FALSE(report.ok());
  }
  FaultInjector::Instance().Disarm();

  // The pinned session is untouched, and a fresh session sees the rolled-
  // back state — identical facts, even though versions advanced.
  Atom qa = (*session)->GroundAtom("Q", {"a"}).value();
  Atom qb = (*session)->GroundAtom("Q", {"b"}).value();
  Atom pa = (*session)->GroundAtom("P", {"a"}).value();
  EXPECT_TRUE((*session)->Holds(qa).value());
  EXPECT_FALSE((*session)->Holds(qb).value());
  EXPECT_TRUE((*session)->Holds(pa).value());
  EXPECT_EQ((*session)->version(), pinned_version);

  auto fresh = db.BeginSession();
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE((*fresh)->Holds(qa).value());
  EXPECT_FALSE((*fresh)->Holds(qb).value());
  EXPECT_TRUE((*fresh)->Holds(pa).value());
}

TEST_F(SessionIsolationTest, NonDurableCommitPoisonsTheWriterButNotReaders) {
  std::string dir = TempDirFor("poison");
  {
    auto opened = DeductiveDatabase::OpenPersistent(dir);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    std::unique_ptr<DeductiveDatabase> db = std::move(*opened);
    DeclareSchema(db.get());
    ASSERT_TRUE(db->Checkpoint().ok());
    ASSERT_TRUE(db->Apply(InsertOf(db.get(), "Q", "a")).ok());

    auto session = db->BeginSession();
    ASSERT_TRUE(session.ok());

    // The pipelined Apply stages the record, applies in memory, then waits
    // for durability; an injected fsync failure there must poison the
    // facade ("applied in memory but not durable").
    FaultInjector::Instance().Arm(FaultPoint::kWalFsync, 1,
                                  InternalError("injected fsync failure"));
    Status poisoned = db->Apply(InsertOf(db.get(), "Q", "b"));
    FaultInjector::Instance().Disarm();
    ASSERT_FALSE(poisoned.ok());
    EXPECT_NE(poisoned.ToString().find("not durable"), std::string::npos)
        << poisoned.ToString();

    // Every further commit and checkpoint reports the sticky failure…
    EXPECT_FALSE(db->Apply(InsertOf(db.get(), "Q", "c")).ok());
    EXPECT_FALSE(db->Checkpoint().ok());
    // …but reads stay available: the old session answers its snapshot, and
    // new sessions can still be begun over the in-memory state.
    Atom qa = (*session)->GroundAtom("Q", {"a"}).value();
    Atom qb = (*session)->GroundAtom("Q", {"b"}).value();
    EXPECT_TRUE((*session)->Holds(qa).value());
    EXPECT_FALSE((*session)->Holds(qb).value());
    auto fresh = db->BeginSession();
    ASSERT_TRUE(fresh.ok());
    EXPECT_TRUE((*fresh)->Holds(qb).value());  // applied in memory
    EXPECT_FALSE(db->Close().ok());            // Close reports the poison too
  }
  // Recovery re-converges with the log: the acknowledged commit survives,
  // the never-durable one is gone.
  auto reopened = DeductiveDatabase::OpenPersistent(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  Atom qa = (*reopened)->GroundAtom("Q", {"a"}).value();
  Atom qb = (*reopened)->GroundAtom("Q", {"b"}).value();
  EXPECT_TRUE((*reopened)->database().facts().Contains(
      qa.predicate(), Tuple{qa.args()[0].constant()}));
  EXPECT_FALSE((*reopened)->database().facts().Contains(
      qb.predicate(), Tuple{qb.args()[0].constant()}));
  ASSERT_EQ(std::system(StrCat("rm -rf ", dir).c_str()), 0);
}

TEST_F(SessionIsolationTest, SameVersionSessionsShareOneSnapshot) {
  obs::MetricsRegistry metrics;
  DeductiveDatabase db;
  db.set_observability({nullptr, &metrics});
  DeclareSchema(&db);
  ASSERT_TRUE(db.Apply(InsertOf(&db, "Q", "a")).ok());

  auto s1 = db.BeginSession();
  auto s2 = db.BeginSession();
  ASSERT_TRUE(s1.ok() && s2.ok());
  EXPECT_EQ((*s1)->version(), (*s2)->version());
  // Two sessions at one version pay for one clone.
  EXPECT_EQ(metrics.counter("session.snapshots_created"), 1u);
  EXPECT_EQ(metrics.counter("session.begun"), 2u);
  EXPECT_EQ(db.active_sessions(), 2u);
  EXPECT_EQ(db.live_session_versions(), 1u);

  s1->reset();
  EXPECT_EQ(db.active_sessions(), 1u);
  s2->reset();
  EXPECT_EQ(db.active_sessions(), 0u);
}

TEST_F(SessionIsolationTest, EpochReclamationFreesRetiredVersions) {
  obs::MetricsRegistry metrics;
  DeductiveDatabase db;
  db.set_observability({nullptr, &metrics});
  DeclareSchema(&db);

  auto s1 = db.BeginSession();
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(db.Apply(InsertOf(&db, "Q", "a")).ok());
  auto s2 = db.BeginSession();
  ASSERT_TRUE(s2.ok());
  ASSERT_NE((*s1)->version(), (*s2)->version());
  EXPECT_EQ(db.live_session_versions(), 2u);

  // Dropping the old session retires its version; reclamation observes the
  // release and the gauges follow.
  s1->reset();
  EXPECT_EQ(db.ReclaimSessionEpochs(), 1u);
  EXPECT_EQ(metrics.counter("session.versions_reclaimed"), 1u);
  EXPECT_EQ(metrics.gauge("session.live_versions"), 1);
  EXPECT_EQ(db.live_session_versions(), 1u);

  // The current version stays registered even with no session on it — the
  // facade's snapshot cache pins it so the next BeginSession is free. A
  // mutation retires the cache, after which it reclaims too.
  s2->reset();
  EXPECT_EQ(db.ReclaimSessionEpochs(), 0u);
  ASSERT_TRUE(db.Apply(InsertOf(&db, "Q", "b")).ok());
  EXPECT_EQ(db.ReclaimSessionEpochs(), 1u);
  EXPECT_EQ(db.live_session_versions(), 0u);
  EXPECT_EQ(metrics.counter("session.versions_reclaimed"), 2u);
  EXPECT_EQ(metrics.gauge("session.live_versions"), 0);
}

TEST_F(SessionIsolationTest, CompileFailureStillAllowsSnapshotQueries) {
  // Recursive rules defeat the event compiler (hierarchical programs only,
  // DESIGN.md §4) — sessions must still answer plain queries and report the
  // pinned compile error from the methods that need event rules.
  DeductiveDatabase db;
  ASSERT_TRUE(db.DeclareBase("E", 2).ok());
  ASSERT_TRUE(db.DeclareDerived("T", 2).ok());
  Term x = db.Variable("x");
  Term y = db.Variable("y");
  Term z = db.Variable("z");
  ASSERT_TRUE(
      db.AddRule(Rule(db.MakeAtom("T", {x, y}).value(),
                      {Literal::Positive(db.MakeAtom("E", {x, y}).value())}))
          .ok());
  ASSERT_TRUE(
      db.AddRule(Rule(db.MakeAtom("T", {x, y}).value(),
                      {Literal::Positive(db.MakeAtom("E", {x, z}).value()),
                       Literal::Positive(db.MakeAtom("T", {z, y}).value())}))
          .ok());
  Transaction edge;
  ASSERT_TRUE(edge.AddInsert(db.GroundAtom("E", {"a", "b"}).value()).ok());
  ASSERT_TRUE(db.Apply(edge).ok());

  auto session = db.BeginSession();
  ASSERT_TRUE(session.ok());
  Atom tab = (*session)->GroundAtom("T", {"a", "b"}).value();
  EXPECT_TRUE((*session)->Holds(tab).value());

  Transaction txn;
  ASSERT_TRUE(txn.AddInsert(db.GroundAtom("E", {"b", "c"}).value()).ok());
  auto induced = (*session)->InducedEvents(txn);
  ASSERT_FALSE(induced.ok());
  EXPECT_EQ(induced.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace deddb
