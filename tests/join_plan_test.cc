// Unit tests of the access-path layer and the join planner: composite index
// maintenance on Relation (insert/erase/clone/bulk-load), PlanAccess
// selection, the ReplaceContents index-mode regression (incl. the persistence
// codec's DecodeRelationInto path), JoinPlan ordering/execution under both
// strategies, and the static index advisor.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/deductive_database.h"
#include "eval/fact_provider.h"
#include "eval/index_advisor.h"
#include "eval/join_plan.h"
#include "parser/parser.h"
#include "persist/codec.h"
#include "storage/fact_store.h"
#include "storage/relation.h"
#include "util/resource_guard.h"

namespace deddb {
namespace {

using AccessKind = Relation::AccessPath::Kind;

std::unique_ptr<DeductiveDatabase> Load(const char* source) {
  auto db = std::make_unique<DeductiveDatabase>();
  auto loaded = LoadProgram(db.get(), source);
  EXPECT_TRUE(loaded.ok()) << loaded.status();
  return db;
}

// The first rule whose head is `predicate`.
const Rule& RuleFor(const DeductiveDatabase& db, const char* predicate) {
  SymbolId head = db.database().FindPredicate(predicate).value();
  for (const Rule& rule : db.database().program().rules()) {
    if (rule.head().predicate() == head) return rule;
  }
  ADD_FAILURE() << "no rule for " << predicate;
  std::abort();
}

// Builds a plan for the first rule of `predicate` against the database's EDB
// (a plan holds no provider state, so the local provider may die after Build).
Result<JoinPlan> BuildPlan(const DeductiveDatabase& db, const char* predicate,
                           const JoinPlan::Options& options) {
  FactStoreProvider provider(&db.database().facts());
  return JoinPlan::Build(
      RuleFor(db, predicate),
      [&](size_t) -> const FactProvider& { return provider; }, options);
}

// Executes `plan` over the EDB and returns the emitted head tuples, sorted.
std::vector<Tuple> RunPlan(const DeductiveDatabase& db, const JoinPlan& plan,
                           size_t* firings = nullptr) {
  FactStoreProvider provider(&db.database().facts());
  std::vector<Tuple> out;
  Tuple head;
  auto fired = plan.Execute(
      [&](size_t) -> const FactProvider& { return provider; },
      [&](const SymbolId* row) {
        plan.HeadTupleInto(row, &head);
        out.push_back(head);
      });
  EXPECT_TRUE(fired.ok()) << fired.status();
  if (firings != nullptr) *firings = fired.ok() ? *fired : 0;
  std::sort(out.begin(), out.end());
  return out;
}

// ---------------------------------------------------------------------------
// Relation: access-path selection.

TEST(PlanAccessTest, KindsFollowBoundMaskAndAvailableIndexes) {
  Relation r(/*arity=*/3);
  EXPECT_EQ(r.PlanAccess(0b111).kind, AccessKind::kEmpty);

  for (SymbolId a = 0; a < 4; ++a) {
    for (SymbolId b = 0; b < 3; ++b) {
      r.Insert({a, b, a + b});
    }
  }
  EXPECT_EQ(r.PlanAccess(0b111).kind, AccessKind::kKeyLookup);
  EXPECT_EQ(r.PlanAccess(0b111).estimated_rows, 1u);

  // No composite yet: a two-column binding falls back to one column.
  EXPECT_EQ(r.PlanAccess(0b011).kind, AccessKind::kColumnIndex);

  ASSERT_TRUE(r.EnsureCompositeIndex(0b011));
  Relation::AccessPath path = r.PlanAccess(0b011);
  EXPECT_EQ(path.kind, AccessKind::kCompositeIndex);
  EXPECT_EQ(path.mask, 0b011u);
  // 12 tuples over 12 distinct (a, b) pairs: one row per bucket.
  EXPECT_EQ(path.estimated_rows, 1u);

  // The composite also serves a superset binding that is not the full key.
  EXPECT_EQ(r.PlanAccess(0b011 | 0b000).kind, AccessKind::kCompositeIndex);
  // Column 0 has 4 distinct values; expect size/distinct.
  path = r.PlanAccess(0b001);
  EXPECT_EQ(path.kind, AccessKind::kColumnIndex);
  EXPECT_EQ(path.column, 0u);
  EXPECT_EQ(path.estimated_rows, 3u);
  EXPECT_EQ(r.PlanAccess(0).kind, AccessKind::kScan);

  Relation unindexed(/*arity=*/3, /*indexed=*/false);
  unindexed.Insert({1, 2, 3});
  EXPECT_EQ(unindexed.PlanAccess(0b011).kind, AccessKind::kScan);
  EXPECT_EQ(unindexed.PlanAccess(0b111).kind, AccessKind::kKeyLookup);
}

TEST(PlanAccessTest, EstimateMatchesAgreesWithPlan) {
  Relation r(/*arity=*/2);
  for (SymbolId a = 0; a < 10; ++a) r.Insert({a % 2, a});
  EXPECT_EQ(r.EstimateMatches(0), 10u);
  EXPECT_EQ(r.EstimateMatches(0b01), 5u);  // 2 distinct values in column 0
  EXPECT_EQ(r.EstimateMatches(0b11), 1u);
}

// ---------------------------------------------------------------------------
// Relation: composite-index maintenance.

TEST(CompositeIndexTest, MaintainedIncrementallyAcrossInsertAndErase) {
  Relation r(/*arity=*/3);
  ASSERT_TRUE(r.EnsureCompositeIndex(0b110));
  for (SymbolId i = 0; i < 30; ++i) {
    ASSERT_TRUE(r.Insert({i, i % 3, i % 5}));
    ASSERT_TRUE(r.ValidateIndexes().ok()) << r.ValidateIndexes();
  }
  EXPECT_FALSE(r.Insert({0, 0, 0}));  // duplicate

  // Lookups through the composite return exactly the matching tuples.
  TuplePattern pattern(3);
  pattern[1] = 1;
  pattern[2] = 3;
  size_t seen = 0;
  r.ForEachMatch(pattern, [&](const Tuple& t) {
    EXPECT_EQ(t[1], 1u);
    EXPECT_EQ(t[2], 3u);
    ++seen;
  });
  EXPECT_EQ(seen, r.CountMatches(pattern));
  EXPECT_GT(seen, 0u);

  // Erase half the tuples (swap-pop relocation under the hood), validating
  // the full invariant after every removal.
  for (SymbolId i = 0; i < 30; i += 2) {
    ASSERT_TRUE(r.Erase({i, i % 3, i % 5}));
    Status status = r.ValidateIndexes();
    ASSERT_TRUE(status.ok()) << status;
  }
  EXPECT_EQ(r.size(), 15u);
  EXPECT_FALSE(r.Erase({0, 0, 0}));  // already gone
  EXPECT_FALSE(r.Contains({2, 2, 2}));
  EXPECT_TRUE(r.Contains({1, 1, 1}));
}

TEST(CompositeIndexTest, CopyPreservesMasksAndContents) {
  Relation r(/*arity=*/3);
  ASSERT_TRUE(r.EnsureCompositeIndex(0b011));
  for (SymbolId i = 0; i < 10; ++i) r.Insert({i % 2, i % 3, i});

  Relation copy(r);
  EXPECT_EQ(copy, r);
  EXPECT_EQ(copy.CompositeMasks(), std::vector<Relation::Mask>{0b011});
  ASSERT_TRUE(copy.ValidateIndexes().ok());
  EXPECT_EQ(copy.PlanAccess(0b011).kind, AccessKind::kCompositeIndex);

  // Diverge the copy; the original must not see it (deep value semantics).
  copy.Insert({9, 9, 9});
  EXPECT_FALSE(r.Contains({9, 9, 9}));
  ASSERT_TRUE(r.ValidateIndexes().ok());
}

TEST(CompositeIndexTest, EnsureCompositeIndexRejectsDegenerateMasks) {
  Relation r(/*arity=*/3);
  EXPECT_FALSE(r.EnsureCompositeIndex(0b001));  // single column
  EXPECT_FALSE(r.EnsureCompositeIndex(0b111));  // full key
  EXPECT_FALSE(r.EnsureCompositeIndex(0b1011)); // column out of range
  EXPECT_TRUE(r.EnsureCompositeIndex(0b101));
  EXPECT_TRUE(r.EnsureCompositeIndex(0b101));   // idempotent
  EXPECT_EQ(r.CompositeMasks(), std::vector<Relation::Mask>{0b101});

  Relation unindexed(/*arity=*/3, /*indexed=*/false);
  EXPECT_FALSE(unindexed.EnsureCompositeIndex(0b011));
  EXPECT_TRUE(unindexed.CompositeMasks().empty());
}

// ---------------------------------------------------------------------------
// ReplaceContents regression: index mode and declared masks must survive the
// bulk-load path (the original bug dropped both, so decoded relations lost
// their access paths).

TEST(ReplaceContentsTest, PreservesIndexModeAndDeclaredMasks) {
  Relation r(/*arity=*/3);
  ASSERT_TRUE(r.EnsureCompositeIndex(0b110));
  for (SymbolId i = 0; i < 8; ++i) r.Insert({i, i, i});

  r.ReplaceContents({{1, 2, 3}, {4, 5, 6}, {1, 2, 3}});  // dup collapses
  EXPECT_TRUE(r.indexed());
  EXPECT_EQ(r.size(), 2u);
  EXPECT_EQ(r.CompositeMasks(), std::vector<Relation::Mask>{0b110});
  ASSERT_TRUE(r.ValidateIndexes().ok()) << r.ValidateIndexes();
  EXPECT_EQ(r.PlanAccess(0b110).kind, AccessKind::kCompositeIndex);

  Relation unindexed(/*arity=*/2, /*indexed=*/false);
  unindexed.ReplaceContents({{1, 2}});
  EXPECT_FALSE(unindexed.indexed());
  ASSERT_TRUE(unindexed.ValidateIndexes().ok());
  EXPECT_EQ(unindexed.PlanAccess(0b01).kind, AccessKind::kScan);
}

TEST(ReplaceContentsTest, DecodeRelationIntoKeepsIndexModeAndMasks) {
  SymbolTable symbols;
  SymbolId a = symbols.Intern("A");
  SymbolId b = symbols.Intern("B");
  Relation source(/*arity=*/3);
  source.Insert({a, b, a});
  source.Insert({b, b, a});

  persist::ByteSink sink;
  persist::EncodeRelation(source, symbols, &sink);

  Relation target(/*arity=*/3);
  ASSERT_TRUE(target.EnsureCompositeIndex(0b011));
  persist::ByteSource bytes(sink.bytes());
  ASSERT_TRUE(persist::DecodeRelationInto(&bytes, &symbols, &target).ok());
  EXPECT_EQ(target, source);
  EXPECT_EQ(target.CompositeMasks(), std::vector<Relation::Mask>{0b011});
  ASSERT_TRUE(target.ValidateIndexes().ok()) << target.ValidateIndexes();

  // Arity mismatch is kCorruption and leaves the target untouched.
  persist::ByteSource again(sink.bytes());
  Relation wrong(/*arity=*/2, /*indexed=*/false);
  wrong.Insert({a, b});
  Status status = persist::DecodeRelationInto(&again, &symbols, &wrong);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(wrong.size(), 1u);
  EXPECT_FALSE(wrong.indexed());
}

// ---------------------------------------------------------------------------
// FactStore: declared indexes ride the COW path.

TEST(FactStoreIndexTest, DeclarationsSurviveCopyAndRelationCreation) {
  FactStore store;
  store.DeclareIndex(/*predicate=*/7, 0b011);
  EXPECT_EQ(store.DeclaredIndexes(7), std::vector<Relation::Mask>{0b011});

  // Relation created after the declaration: the index is applied on creation.
  store.Add(7, {1, 2, 3});
  ASSERT_NE(store.Find(7), nullptr);
  EXPECT_EQ(store.Find(7)->CompositeMasks(), std::vector<Relation::Mask>{0b011});

  // A COW copy keeps both the declaration and the built index; mutating the
  // copy clones but never rebuilds from scratch (the masks ride along).
  FactStore copy(store);
  copy.Add(7, {4, 5, 6});
  EXPECT_EQ(copy.Find(7)->CompositeMasks(), std::vector<Relation::Mask>{0b011});
  EXPECT_EQ(copy.Find(7)->size(), 2u);
  EXPECT_EQ(store.Find(7)->size(), 1u);
  SymbolTable symbols;
  ASSERT_TRUE(copy.ValidateIndexes(symbols).ok());
  ASSERT_TRUE(store.ValidateIndexes(symbols).ok());
}

// ---------------------------------------------------------------------------
// JoinPlan: ordering and execution.

constexpr char kChainProgram[] = R"(
  base Small/1.
  base Big/2.
  derived D/2.
  D(x, y) <- Big(x, y) & Small(x).
  Small(A).
  Big(A, B).
  Big(A, C).
  Big(B, C).
  Big(C, A).
  Big(C, B).
)";

TEST(JoinPlanTest, PlannedOrderLeadsWithSmallestRelation) {
  auto db = Load(kChainProgram);
  auto plan = BuildPlan(*db, "D", {});
  ASSERT_TRUE(plan.ok()) << plan.status();
  // Small (1 fact) before Big (5 facts): body index 1 leads.
  ASSERT_EQ(plan->order().size(), 2u);
  EXPECT_EQ(plan->order()[0], 1u);
  EXPECT_EQ(plan->order()[1], 0u);
  // After Small binds x, Big is probed with column 0 bound.
  EXPECT_EQ(plan->steps()[1].bound_mask, 0b01u);
  EXPECT_NE(plan->steps()[1].access.kind, AccessKind::kScan);

  size_t firings = 0;
  std::vector<Tuple> rows = RunPlan(*db, *plan, &firings);
  EXPECT_EQ(firings, 2u);  // Big(A, B), Big(A, C)
  EXPECT_EQ(rows.size(), 2u);
}

TEST(JoinPlanTest, NaiveStrategyKeepsTextualOrderAndScans) {
  auto db = Load(kChainProgram);
  JoinPlan::Options options;
  options.strategy = JoinStrategy::kNaiveNestedLoop;
  auto plan = BuildPlan(*db, "D", options);
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->order().size(), 2u);
  EXPECT_EQ(plan->order()[0], 0u);
  EXPECT_EQ(plan->order()[1], 1u);
  for (const JoinPlan::StepInfo& step : plan->steps()) {
    EXPECT_EQ(step.access.kind, AccessKind::kScan);
  }
  // Same answers as the planned engine, by construction.
  auto planned = BuildPlan(*db, "D", {});
  ASSERT_TRUE(planned.ok());
  size_t naive_firings = 0, planned_firings = 0;
  EXPECT_EQ(RunPlan(*db, *plan, &naive_firings),
            RunPlan(*db, *planned, &planned_firings));
  EXPECT_EQ(naive_firings, planned_firings);
}

TEST(JoinPlanTest, ForcedFirstOverridesSelectivity) {
  auto db = Load(kChainProgram);
  JoinPlan::Options options;
  options.forced_first = 0;  // lead with Big despite Small being cheaper
  auto plan = BuildPlan(*db, "D", options);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->order()[0], 0u);
  size_t firings = 0;
  EXPECT_EQ(RunPlan(*db, *plan, &firings).size(), 2u);
  EXPECT_EQ(firings, 2u);
}

TEST(JoinPlanTest, FixedOrderBypassesHeuristics) {
  auto db = Load(kChainProgram);
  JoinPlan::Options options;
  options.fixed_order = std::vector<size_t>{0, 1};
  auto plan = BuildPlan(*db, "D", options);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->order(), (std::vector<size_t>{0, 1}));
  EXPECT_EQ(RunPlan(*db, *plan).size(), 2u);
}

TEST(JoinPlanTest, NegativeLiteralRunsGroundAndFilters) {
  auto db = Load(R"(
    base B/1.
    base Blocked/1.
    derived D/1.
    D(x) <- B(x) & not Blocked(x).
    B(A).
    B(C).
    Blocked(C).
  )");
  auto plan = BuildPlan(*db, "D", {});
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->steps().size(), 2u);
  EXPECT_FALSE(plan->steps()[0].negative);
  EXPECT_TRUE(plan->steps()[1].negative);
  std::vector<Tuple> rows = RunPlan(*db, *plan);
  ASSERT_EQ(rows.size(), 1u);
  SymbolId a = db->symbols().Find("A");
  EXPECT_EQ(rows[0], Tuple{a});
}

TEST(JoinPlanTest, RepeatedVariableSelectsDiagonal) {
  auto db = Load(R"(
    base E/2.
    derived D/1.
    D(x) <- E(x, x).
    E(A, A).
    E(A, B).
    E(B, B).
  )");
  auto plan = BuildPlan(*db, "D", {});
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(RunPlan(*db, *plan).size(), 2u);  // A and B
}

TEST(JoinPlanTest, ConstantArgumentNarrowsTheProbe) {
  auto db = Load(R"(
    base E/2.
    derived D/1.
    D(y) <- E(A, y).
    E(A, B).
    E(A, C).
    E(B, C).
  )");
  auto plan = BuildPlan(*db, "D", {});
  ASSERT_TRUE(plan.ok()) << plan.status();
  // The constant binds column 0 before anything else is bound.
  EXPECT_EQ(plan->steps()[0].bound_mask & 0b01u, 0b01u);
  EXPECT_EQ(RunPlan(*db, *plan).size(), 2u);
}

TEST(JoinPlanTest, EmptyRelationYieldsEmptyAccessAndNoRows) {
  auto db = Load(R"(
    base B/1.
    base Empty/1.
    derived D/1.
    D(x) <- B(x) & Empty(x).
    B(A).
  )");
  auto plan = BuildPlan(*db, "D", {});
  ASSERT_TRUE(plan.ok()) << plan.status();
  bool saw_empty = false;
  for (const JoinPlan::StepInfo& step : plan->steps()) {
    if (step.access.kind == AccessKind::kEmpty) saw_empty = true;
  }
  EXPECT_TRUE(saw_empty);
  size_t firings = 1;
  EXPECT_TRUE(RunPlan(*db, *plan, &firings).empty());
  EXPECT_EQ(firings, 0u);
}

TEST(JoinPlanTest, ExecStatsCountRowsPerStepAndAccumulate) {
  auto db = Load(kChainProgram);
  auto plan = BuildPlan(*db, "D", {});
  ASSERT_TRUE(plan.ok()) << plan.status();
  FactStoreProvider provider(&db->database().facts());
  auto provider_for = [&](size_t) -> const FactProvider& { return provider; };
  JoinPlan::ExecStats stats;
  auto fired = plan->Execute(provider_for, [](const SymbolId*) {}, {}, nullptr,
                             &stats);
  ASSERT_TRUE(fired.ok()) << fired.status();
  ASSERT_EQ(stats.rows.size(), plan->steps().size());
  EXPECT_EQ(stats.rows[0], 1u);  // Small(A)
  EXPECT_EQ(stats.rows[1], 2u);  // Big(A, _)
  // A second Execute over the same stats object sums (slice accumulation).
  ASSERT_TRUE(
      plan->Execute(provider_for, [](const SymbolId*) {}, {}, nullptr, &stats)
          .ok());
  EXPECT_EQ(stats.rows[0], 2u);
  EXPECT_EQ(stats.rows[1], 4u);
}

TEST(JoinPlanTest, CancelledGuardAbortsExecution) {
  auto db = Load(kChainProgram);
  auto plan = BuildPlan(*db, "D", {});
  ASSERT_TRUE(plan.ok()) << plan.status();
  CancellationToken token;
  token.Cancel();
  ResourceGuard guard(ResourceLimits{}, &token);
  FactStoreProvider provider(&db->database().facts());
  auto fired = plan->Execute(
      [&](size_t) -> const FactProvider& { return provider; },
      [](const SymbolId*) {}, {}, &guard);
  EXPECT_FALSE(fired.ok());
}

TEST(JoinPlanTest, ToStringRendersOrderAccessAndEstimates) {
  auto db = Load(kChainProgram);
  auto plan = BuildPlan(*db, "D", {});
  ASSERT_TRUE(plan.ok()) << plan.status();
  std::string text = plan->ToString(db->symbols());
  // Small leads; Big is probed through an index with ~N estimates; the
  // separator is " -> " (format documented in DESIGN.md §6e).
  EXPECT_NE(text.find("Small"), std::string::npos) << text;
  EXPECT_NE(text.find(" -> "), std::string::npos) << text;
  EXPECT_NE(text.find("~"), std::string::npos) << text;

  auto db2 = Load(R"(
    base B/1.
    base Blocked/1.
    derived D/1.
    D(x) <- B(x) & not Blocked(x).
    B(A).
    Blocked(A).
  )");
  auto plan2 = BuildPlan(*db2, "D", {});
  ASSERT_TRUE(plan2.ok()) << plan2.status();
  EXPECT_NE(plan2->ToString(db2->symbols()).find("!Blocked"),
            std::string::npos)
      << plan2->ToString(db2->symbols());
}

TEST(JoinPlanTest, ToStringRendersCompositeAndColumnAccess) {
  auto db = Load(R"(
    base B/2.
    base E/3.
    derived D/1.
    D(z) <- B(x, y) & E(x, y, z).
    B(A, A). B(A, B).
    E(A, A, C). E(A, B, C). E(B, B, C). E(C, A, B).
  )");
  // The facade's advisor declared E(0,1); B leads (smaller, fully unbound)
  // and E is probed through the composite, rendered as comp(0,1).
  auto plan = BuildPlan(*db, "D", {});
  ASSERT_TRUE(plan.ok()) << plan.status();
  std::string text = plan->ToString(db->symbols());
  EXPECT_NE(text.find("comp(0,1)"), std::string::npos) << text;

  // A single bound column on an indexed binary relation renders as col<i>.
  auto db2 = Load(R"(
    base Small/1.
    base E/2.
    derived D/1.
    D(y) <- Small(x) & E(x, y).
    Small(A).
    E(A, B). E(A, C). E(B, C).
  )");
  auto plan2 = BuildPlan(*db2, "D", {});
  ASSERT_TRUE(plan2.ok()) << plan2.status();
  std::string text2 = plan2->ToString(db2->symbols());
  EXPECT_NE(text2.find("col0"), std::string::npos) << text2;
}

TEST(JoinPlanTest, InitiallyBoundVariableSeedsTheJoin) {
  auto db = Load(kChainProgram);
  const Rule& rule = RuleFor(*db, "D");
  // Bind x = A before evaluation starts (the interpreter's partial-
  // substitution entry point, body_eval.cc).
  VarId x = rule.head().args()[0].variable();
  JoinPlan::Options options;
  options.initially_bound.push_back(x);
  auto plan = BuildPlan(*db, "D", options);
  ASSERT_TRUE(plan.ok()) << plan.status();

  Substitution subst;
  subst.Bind(x, Term::MakeConstant(db->symbols().Find("A")));
  auto initial = plan->InitialRow(subst);
  ASSERT_TRUE(initial.ok()) << initial.status();

  FactStoreProvider provider(&db->database().facts());
  std::vector<Tuple> out;
  Tuple head;
  auto fired = plan->Execute(
      [&](size_t) -> const FactProvider& { return provider; },
      [&](const SymbolId* row) {
        plan->HeadTupleInto(row, &head);
        out.push_back(head);
      },
      *initial);
  ASSERT_TRUE(fired.ok()) << fired.status();
  EXPECT_EQ(out.size(), 2u);  // D(A, B), D(A, C) only — x was pinned to A.
  for (const Tuple& t : out) {
    EXPECT_EQ(t[0], db->symbols().Find("A"));
  }

  // Round trip through FillSubstitution: a result row binds every slot the
  // join touched and leaves the rest alone.
  Substitution filled;
  std::vector<SymbolId> row = *initial;
  row[0] = db->symbols().Find("A");
  plan->FillSubstitution(row.data(), &filled);
  EXPECT_TRUE(filled.Apply(Term::MakeVariable(x)).is_constant());
}

TEST(JoinPlanTest, InitialRowRejectsUnresolvedBinding) {
  auto db = Load(kChainProgram);
  const Rule& rule = RuleFor(*db, "D");
  JoinPlan::Options options;
  options.initially_bound.push_back(rule.head().args()[0].variable());
  auto plan = BuildPlan(*db, "D", options);
  ASSERT_TRUE(plan.ok()) << plan.status();
  Substitution empty;  // x does not resolve to a constant
  EXPECT_FALSE(plan->InitialRow(empty).ok());
}

TEST(JoinPlanTest, ExecuteValidatesTheInitialRow) {
  auto db = Load(kChainProgram);
  FactStoreProvider provider(&db->database().facts());
  auto provider_for = [&](size_t) -> const FactProvider& { return provider; };
  auto emit = [](const SymbolId*) {};

  // A plan with pre-bound slots refuses an empty initial row...
  JoinPlan::Options options;
  options.initially_bound.push_back(
      RuleFor(*db, "D").head().args()[0].variable());
  auto bound_plan = BuildPlan(*db, "D", options);
  ASSERT_TRUE(bound_plan.ok()) << bound_plan.status();
  EXPECT_FALSE(bound_plan->Execute(provider_for, emit).ok());

  // ...and any plan refuses a row of the wrong width.
  auto plan = BuildPlan(*db, "D", {});
  ASSERT_TRUE(plan.ok()) << plan.status();
  std::vector<SymbolId> wrong_width(plan->slot_vars().size() + 1,
                                    JoinPlan::kUnboundSlot);
  EXPECT_FALSE(plan->Execute(provider_for, emit, wrong_width).ok());
}

TEST(JoinPlanTest, NaiveStrategyFiltersConstantsAndBoundVariables) {
  // Under the naive strategy a later literal's constants and already-bound
  // variables become post-scan check ops instead of probe patterns; the
  // answers must not change.
  auto db = Load(R"(
    base Small/1.
    base E/2.
    derived D/1.
    D(x) <- Small(x) & E(x, A).
    Small(A). Small(B).
    E(A, A). E(B, A). E(B, B).
  )");
  JoinPlan::Options naive;
  naive.strategy = JoinStrategy::kNaiveNestedLoop;
  auto naive_plan = BuildPlan(*db, "D", naive);
  ASSERT_TRUE(naive_plan.ok()) << naive_plan.status();
  auto planned = BuildPlan(*db, "D", {});
  ASSERT_TRUE(planned.ok()) << planned.status();
  std::vector<Tuple> rows = RunPlan(*db, *naive_plan);
  EXPECT_EQ(rows.size(), 2u);  // D(A), D(B)
  EXPECT_EQ(rows, RunPlan(*db, *planned));
}

TEST(JoinPlanTest, UnsafeNegativeOnlyRuleIsRejected) {
  // A rule whose negative literal can never become ground bypasses the
  // facade's allowedness validation by direct construction; Build must
  // return a typed error instead of planning it.
  auto db = Load(R"(
    base Blocked/1.
    derived D/1.
  )");
  Term x = db->Variable("x");
  Atom head = db->MakeAtom("D", {x}).value();
  Rule unsafe(head, {Literal::Negative(db->MakeAtom("Blocked", {x}).value())});
  FactStoreProvider provider(&db->database().facts());
  auto plan = JoinPlan::Build(
      unsafe, [&](size_t) -> const FactProvider& { return provider; }, {});
  EXPECT_FALSE(plan.ok());
}

// ---------------------------------------------------------------------------
// Index advisor.

TEST(IndexAdvisorTest, AdvisesBoundPrefixOfWiderLiterals) {
  auto db = Load(R"(
    base B/2.
    base E/3.
    derived D/1.
    D(z) <- B(x, y) & E(x, y, z).
  )");
  SymbolId e = db->database().FindPredicate("E").value();
  std::vector<IndexAdvice> advice = AdviseIndexes(db->database().program());
  EXPECT_NE(std::find(advice.begin(), advice.end(), IndexAdvice{e, 0b011}),
            advice.end());
  // Deterministic: sorted by (predicate, mask), no duplicates.
  for (size_t i = 1; i < advice.size(); ++i) {
    EXPECT_TRUE(advice[i - 1].predicate < advice[i].predicate ||
                (advice[i - 1].predicate == advice[i].predicate &&
                 advice[i - 1].mask < advice[i].mask));
  }
}

TEST(IndexAdvisorTest, SkipsSingleColumnAndFullKeyMasks) {
  auto db = Load(R"(
    base B/1.
    base E/2.
    derived D/1.
    D(y) <- B(x) & E(x, y).
    D(y) <- B(y) & E(A, y).
  )");
  // E is only ever probed with one bound column (posting lists cover that)
  // or with both (a key probe) — no composite is worth declaring.
  EXPECT_TRUE(AdviseIndexes(db->database().program()).empty());
}

TEST(IndexAdvisorTest, DeclareAdvisedIndexesWiresTheStore) {
  auto db = Load(R"(
    base B/2.
    base E/3.
    derived D/1.
    D(z) <- B(x, y) & E(x, y, z).
    E(A, B, C).
  )");
  SymbolId e = db->database().FindPredicate("E").value();
  // The facade declared advised indexes when the rule was added: the E
  // relation already maintains the (0, 1) composite.
  ASSERT_NE(db->database().facts().Find(e), nullptr);
  EXPECT_EQ(db->database().facts().Find(e)->CompositeMasks(),
            std::vector<Relation::Mask>{0b011});
  ASSERT_TRUE(
      db->database().facts().ValidateIndexes(db->symbols()).ok());

  FactStore fresh;
  DeclareAdvisedIndexes(db->database().program(), &fresh);
  EXPECT_EQ(fresh.DeclaredIndexes(e), std::vector<Relation::Mask>{0b011});
}

}  // namespace
}  // namespace deddb
