// End-to-end persistence lifecycle: OpenPersistent on a fresh directory,
// schema checkpoint, logged commits through both apply paths (direct and
// UpdateProcessor), reopen-and-recover equivalence, checkpoint compaction,
// abort-record filtering, and typed corruption on damaged files. Built on
// the paper's worked employment database (§2) so recovery is checked against
// derived (IDB) answers, not just stored facts.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/deductive_database.h"
#include "core/update_processor.h"
#include "persist/manager.h"
#include "util/resource_guard.h"
#include "util/strings.h"

namespace deddb {
namespace {

class PersistRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string tmpl = StrCat(::testing::TempDir(), "recXXXXXX");
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    ASSERT_NE(::mkdtemp(buf.data()), nullptr);
    dir_ = buf.data();
  }

  void TearDown() override {
    FaultInjector::Instance().Disarm();
    std::string cmd = StrCat("rm -rf ", dir_);
    ASSERT_EQ(std::system(cmd.c_str()), 0);
  }

  // The employment schema of the paper: Emp is a view over Works, Unemp a
  // view with negation, Ic1 forbids unemployment benefit for the employed.
  static void DeclareEmployment(DeductiveDatabase* db) {
    ASSERT_TRUE(db->DeclareBase("La", 1).ok());
    ASSERT_TRUE(db->DeclareBase("Works", 2).ok());
    ASSERT_TRUE(db->DeclareBase("U_benefit", 1).ok());
    ASSERT_TRUE(db->DeclareView("Emp", 1).ok());
    ASSERT_TRUE(db->DeclareView("Unemp", 1).ok());
    ASSERT_TRUE(db->DeclareConstraint("Ic1", 1).ok());
    Term x = db->Variable("x");
    Term y = db->Variable("y");
    ASSERT_TRUE(
        db->AddRule(Rule(db->MakeAtom("Emp", {x}).value(),
                         {Literal::Positive(
                             db->MakeAtom("Works", {x, y}).value())}))
            .ok());
    ASSERT_TRUE(
        db->AddRule(
              Rule(db->MakeAtom("Unemp", {x}).value(),
                   {Literal::Positive(db->MakeAtom("La", {x}).value()),
                    Literal::Negative(db->MakeAtom("Emp", {x}).value())}))
            .ok());
    ASSERT_TRUE(
        db->AddRule(
              Rule(db->MakeAtom("Ic1", {x}).value(),
                   {Literal::Positive(db->MakeAtom("Emp", {x}).value()),
                    Literal::Positive(
                        db->MakeAtom("U_benefit", {x}).value())}))
            .ok());
  }

  static Transaction Insert(DeductiveDatabase* db, const char* pred,
                            std::vector<std::string_view> constants) {
    Transaction txn;
    EXPECT_TRUE(
        txn.AddInsert(db->GroundAtom(pred, std::move(constants)).value())
            .ok());
    return txn;
  }

  // Evaluates the Unemp view by its definition: Unemp(x) holds iff La(x)
  // and no Works(x, _). Checking this after recovery verifies the IDB is
  // re-derivable from the recovered EDB.
  static bool Unemployed(DeductiveDatabase* db, const char* person) {
    SymbolId la = db->database().FindPredicate("La").value();
    SymbolId works = db->database().FindPredicate("Works").value();
    SymbolId c = db->symbols().Intern(person);
    if (!db->database().facts().Contains(la, {c})) return false;
    const Relation* w = db->database().facts().Find(works);
    if (w == nullptr) return true;
    return w->CountMatches({c, std::nullopt}) == 0;
  }

  std::string dir_;
};

TEST_F(PersistRecoveryTest, FreshDirectoryOpensEmpty) {
  auto db = DeductiveDatabase::OpenPersistent(dir_).value();
  ASSERT_NE(db->persistence(), nullptr);
  EXPECT_EQ(db->database().facts().TotalFacts(), 0u);
  EXPECT_EQ(db->persistence()->stats().last_seq, 0u);
}

TEST_F(PersistRecoveryTest, DirectCommitsSurviveReopen) {
  {
    auto db = DeductiveDatabase::OpenPersistent(dir_).value();
    DeclareEmployment(db.get());
    ASSERT_TRUE(db->Checkpoint().ok());  // make the schema durable
    ASSERT_TRUE(db->Apply(Insert(db.get(), "La", {"Dolors"})).ok());
    ASSERT_TRUE(
        db->Apply(Insert(db.get(), "Works", {"Joan", "Sales"})).ok());
    // No Close(): simulate a crash by just dropping the handle.
  }
  auto db = DeductiveDatabase::OpenPersistent(dir_).value();
  EXPECT_EQ(db->database().facts().TotalFacts(), 2u);
  EXPECT_TRUE(db->database().facts().Contains(
      db->database().FindPredicate("La").value(),
      {db->symbols().Intern("Dolors")}));
  // Recovery restores the IDB through the same rules: Dolors is unemployed,
  // Joan is not.
  EXPECT_TRUE(Unemployed(db.get(), "Dolors"));
  EXPECT_FALSE(Unemployed(db.get(), "Joan"));
  EXPECT_TRUE(db->IsConsistent().value());
}

TEST_F(PersistRecoveryTest, ProcessorCommitsReplayThroughTheProcessor) {
  {
    auto db = DeductiveDatabase::OpenPersistent(dir_).value();
    DeclareEmployment(db.get());
    ASSERT_TRUE(
        db->MaterializeView(db->database().FindPredicate("Unemp").value())
            .ok());
    ASSERT_TRUE(db->InitializeMaterializedViews().ok());
    ASSERT_TRUE(db->Checkpoint().ok());

    UpdateProcessor processor(db.get());
    auto r1 = processor.ProcessTransaction(
        Insert(db.get(), "La", {"Dolors"}));
    ASSERT_TRUE(r1.ok());
    ASSERT_TRUE(r1->accepted);
    auto r2 = processor.ProcessTransaction(
        Insert(db.get(), "Works", {"Dolors", "Sales"}));
    ASSERT_TRUE(r2.ok());
    ASSERT_TRUE(r2->accepted);
    // The materialized Unemp gained Dolors then lost her again.
    EXPECT_EQ(db->database().materialized_store().TotalFacts(), 0u);
  }
  auto db = DeductiveDatabase::OpenPersistent(dir_).value();
  // Replay went through ProcessTransaction, so the materialized store
  // re-converged (insert then maintained delete), not just the EDB.
  EXPECT_EQ(db->database().facts().TotalFacts(), 2u);
  EXPECT_EQ(db->database().materialized_store().TotalFacts(), 0u);
  EXPECT_TRUE(db->IsConsistent().value());
}

TEST_F(PersistRecoveryTest, RejectedTransactionIsNotLogged) {
  auto db = DeductiveDatabase::OpenPersistent(dir_).value();
  DeclareEmployment(db.get());
  ASSERT_TRUE(db->Checkpoint().ok());
  ASSERT_TRUE(
      db->Apply(Insert(db.get(), "Works", {"Dolors", "Sales"})).ok());
  const uint64_t committed = db->persistence()->stats().commits_logged;

  UpdateProcessor processor(db.get());
  // Violates Ic1 (employed AND receiving benefit) → rejected, not applied,
  // and crucially not logged.
  auto report = processor.ProcessTransaction(
      Insert(db.get(), "U_benefit", {"Dolors"}));
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->accepted);
  EXPECT_EQ(db->persistence()->stats().commits_logged, committed);
}

TEST_F(PersistRecoveryTest, CheckpointCompactsTheLogAndPreservesState) {
  {
    auto db = DeductiveDatabase::OpenPersistent(dir_).value();
    DeclareEmployment(db.get());
    ASSERT_TRUE(db->Checkpoint().ok());
    for (const char* person : {"Ada", "Bo", "Cy"}) {
      ASSERT_TRUE(db->Apply(Insert(db.get(), "La", {person})).ok());
    }
    const auto before = db->persistence()->stats();
    EXPECT_EQ(before.commits_logged, 3u);
    ASSERT_TRUE(db->Checkpoint().ok());
    const auto after = db->persistence()->stats();
    EXPECT_EQ(after.checkpoints, before.checkpoints + 1);
    // The fresh log holds only its header.
    EXPECT_EQ(after.wal_durable_bytes, persist::kWalHeaderSize);
    // Sequence numbers keep rising monotonically across checkpoints.
    ASSERT_TRUE(db->Apply(Insert(db.get(), "La", {"Di"})).ok());
    EXPECT_EQ(db->persistence()->stats().last_seq, after.last_seq + 1);
  }
  auto db = DeductiveDatabase::OpenPersistent(dir_).value();
  EXPECT_EQ(db->database().facts().TotalFacts(), 4u);
  for (const char* person : {"Ada", "Bo", "Cy", "Di"}) {
    EXPECT_TRUE(Unemployed(db.get(), person)) << person;
  }
}

TEST_F(PersistRecoveryTest, AbortedCommitIsFilteredOnRecovery) {
  {
    auto db = DeductiveDatabase::OpenPersistent(dir_).value();
    DeclareEmployment(db.get());
    ASSERT_TRUE(db->Checkpoint().ok());
    ASSERT_TRUE(db->Apply(Insert(db.get(), "La", {"Dolors"})).ok());

    // Force a post-logging apply failure: the commit record is durable
    // before kProcessorApplyBase fires, so the processor rolls back in
    // memory and writes an abort record.
    UpdateProcessor processor(db.get());
    FaultInjector::Instance().Arm(FaultPoint::kProcessorCommit, 1,
                                  InternalError("injected crash"));
    auto report = processor.ProcessTransaction(
        Insert(db.get(), "La", {"Joan"}));
    FaultInjector::Instance().Disarm();
    ASSERT_FALSE(report.ok());
    EXPECT_FALSE(db->database().facts().Contains(
        db->database().FindPredicate("La").value(),
        {db->symbols().Intern("Joan")}));
    EXPECT_EQ(db->persistence()->stats().aborts_logged, 1u);
  }
  auto db = DeductiveDatabase::OpenPersistent(dir_).value();
  // The aborted commit does not resurrect.
  EXPECT_EQ(db->database().facts().TotalFacts(), 1u);
  EXPECT_FALSE(db->database().facts().Contains(
      db->database().FindPredicate("La").value(),
      {db->symbols().Intern("Joan")}));
}

// Reviewer-found replication bug: PrepareCommit used to stage the commit
// record into the retained feed window unconditionally, so a failed flush on
// the processor path (which, unlike Apply, does not poison the facade — the
// writer self-heals and the stores are untouched) left a phantom staged;
// the next successful commit then raised the settled horizon past it and the
// feed shipped a transaction the primary never applied and whose bytes were
// truncated from the log.
TEST_F(PersistRecoveryTest, FailedFlushNeverFeedsPhantomRecord) {
  auto db = DeductiveDatabase::OpenPersistent(dir_).value();
  DeclareEmployment(db.get());
  ASSERT_TRUE(db->Checkpoint().ok());
  const uint64_t base = db->persistence()->stats().last_seq;
  ASSERT_TRUE(db->Apply(Insert(db.get(), "La", {"Dolors"})).ok());

  UpdateProcessor processor(db.get());
  FaultInjector::Instance().Arm(FaultPoint::kWalFsync, 1,
                                InternalError("injected fsync failure"));
  auto report = processor.ProcessTransaction(Insert(db.get(), "La", {"Joan"}));
  FaultInjector::Instance().Disarm();
  ASSERT_FALSE(report.ok());
  // Not poisoned: the stores are untouched and the writer self-healed, so
  // the facade keeps committing — which is exactly what makes a lingering
  // phantom shippable.
  ASSERT_TRUE(db->commit_health().ok());
  ASSERT_TRUE(db->Apply(Insert(db.get(), "La", {"Pau"})).ok());

  Result<persist::PersistenceManager::FeedBatch> batch =
      db->persistence()->ReadFeedRecords(base, 0, 0);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  // Dolors and Pau ship; the never-durable commit between them must not —
  // its sequence number is a permanent gap, matching what recovery replays.
  ASSERT_EQ(batch->records.size(), 2u);
  EXPECT_EQ(batch->records[0].seq, base + 1);
  EXPECT_EQ(batch->records[1].seq, base + 3);
  EXPECT_EQ(batch->last_durable_seq, base + 3);
}

// Sibling case: when the writer refuses the bytes outright (append failure
// rather than flush failure), the sequence number is reused by the next
// commit; a phantom staged under it would make the feed ship two records
// with the same seq — the real one then refused by the replica's cursor.
TEST_F(PersistRecoveryTest, RefusedAppendNeverStagesTwinFeedRecord) {
  {
    PersistOptions options;
    options.group_commit = false;  // AppendDurable fails inside PrepareCommit
    auto db = DeductiveDatabase::OpenPersistent(dir_, options).value();
    DeclareEmployment(db.get());
    ASSERT_TRUE(db->Checkpoint().ok());
    const uint64_t base = db->persistence()->stats().last_seq;
    ASSERT_TRUE(db->Apply(Insert(db.get(), "La", {"Dolors"})).ok());

    FaultInjector::Instance().Arm(FaultPoint::kWalAppend, 1,
                                  InternalError("injected append failure"));
    Status refused = db->Apply(Insert(db.get(), "La", {"Joan"}));
    FaultInjector::Instance().Disarm();
    ASSERT_FALSE(refused.ok());
    // Nothing was logged or applied, so the facade stays healthy and the
    // next commit takes over the refused sequence number.
    ASSERT_TRUE(db->commit_health().ok());
    ASSERT_TRUE(db->Apply(Insert(db.get(), "La", {"Pau"})).ok());
    EXPECT_EQ(db->persistence()->stats().last_seq, base + 2);

    Result<persist::PersistenceManager::FeedBatch> batch =
        db->persistence()->ReadFeedRecords(base, 0, 0);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    ASSERT_EQ(batch->records.size(), 2u);
    EXPECT_EQ(batch->records[0].seq, base + 1);
    EXPECT_EQ(batch->records[1].seq, base + 2);  // reused, exactly once
  }
  // The record under the reused seq is Pau's commit, not the refused one:
  // replaying the log must reproduce what the feed shipped.
  auto reopened = DeductiveDatabase::OpenPersistent(dir_).value();
  EXPECT_TRUE(reopened->database().facts().Contains(
      reopened->database().FindPredicate("La").value(),
      {reopened->symbols().Intern("Pau")}));
  EXPECT_FALSE(reopened->database().facts().Contains(
      reopened->database().FindPredicate("La").value(),
      {reopened->symbols().Intern("Joan")}));
}

TEST_F(PersistRecoveryTest, CloseCheckpointsSchemaWithoutExplicitCall) {
  {
    auto db = DeductiveDatabase::OpenPersistent(dir_).value();
    DeclareEmployment(db.get());
    ASSERT_TRUE(db->Close().ok());
  }
  auto db = DeductiveDatabase::OpenPersistent(dir_).value();
  EXPECT_TRUE(db->database().FindPredicate("Unemp").ok());
  ASSERT_TRUE(db->Apply(Insert(db.get(), "La", {"Dolors"})).ok());
  EXPECT_TRUE(Unemployed(db.get(), "Dolors"));
}

TEST_F(PersistRecoveryTest, TornWalTailIsSilentlyTruncatedOnReopen) {
  {
    auto db = DeductiveDatabase::OpenPersistent(dir_).value();
    DeclareEmployment(db.get());
    ASSERT_TRUE(db->Checkpoint().ok());
    ASSERT_TRUE(db->Apply(Insert(db.get(), "La", {"Dolors"})).ok());
    ASSERT_TRUE(db->Apply(Insert(db.get(), "La", {"Joan"})).ok());
  }
  // Tear the tail: chop 3 bytes off the log.
  std::string wal = StrCat(dir_, "/wal.deddb");
  struct stat st;
  ASSERT_EQ(::stat(wal.c_str(), &st), 0);
  ASSERT_EQ(::truncate(wal.c_str(), st.st_size - 3), 0);

  auto db = DeductiveDatabase::OpenPersistent(dir_).value();
  // The torn record (Joan) is gone; the intact prefix (Dolors) survived.
  EXPECT_EQ(db->database().facts().TotalFacts(), 1u);
  EXPECT_TRUE(db->database().facts().Contains(
      db->database().FindPredicate("La").value(),
      {db->symbols().Intern("Dolors")}));
  EXPECT_EQ(db->persistence()->stats().torn_tail_truncations, 1u);

  // And the truncation was physical: reopening again reports no tear.
  auto again = DeductiveDatabase::OpenPersistent(dir_).value();
  EXPECT_EQ(again->persistence()->stats().torn_tail_truncations, 0u);
}

TEST_F(PersistRecoveryTest, InteriorWalCorruptionIsTypedError) {
  {
    auto db = DeductiveDatabase::OpenPersistent(dir_).value();
    DeclareEmployment(db.get());
    ASSERT_TRUE(db->Checkpoint().ok());
    ASSERT_TRUE(db->Apply(Insert(db.get(), "La", {"Dolors"})).ok());
    ASSERT_TRUE(db->Apply(Insert(db.get(), "La", {"Joan"})).ok());
  }
  // Flip a byte inside the FIRST record (interior damage, bytes follow).
  std::string wal = StrCat(dir_, "/wal.deddb");
  FILE* f = ::fopen(wal.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(::fseek(f, static_cast<long>(persist::kWalHeaderSize +
                                         persist::kWalFrameSize + 2),
                    SEEK_SET),
            0);
  int c = ::fgetc(f);
  ASSERT_NE(c, EOF);
  ASSERT_EQ(::fseek(f, -1, SEEK_CUR), 0);
  ::fputc(c ^ 0x5A, f);
  ::fclose(f);

  Result<std::unique_ptr<DeductiveDatabase>> reopened =
      DeductiveDatabase::OpenPersistent(dir_);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kCorruption);
}

TEST_F(PersistRecoveryTest, CorruptSnapshotIsTypedError) {
  {
    auto db = DeductiveDatabase::OpenPersistent(dir_).value();
    DeclareEmployment(db.get());
    ASSERT_TRUE(db->Apply(Insert(db.get(), "La", {"Dolors"})).ok());
    ASSERT_TRUE(db->Close().ok());
  }
  std::string snap = StrCat(dir_, "/snapshot.deddb");
  FILE* f = ::fopen(snap.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(::fseek(f, -2, SEEK_END), 0);
  int c = ::fgetc(f);
  ASSERT_NE(c, EOF);
  ASSERT_EQ(::fseek(f, -1, SEEK_CUR), 0);
  ::fputc(c ^ 0x5A, f);
  ::fclose(f);

  Result<std::unique_ptr<DeductiveDatabase>> reopened =
      DeductiveDatabase::OpenPersistent(dir_);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kCorruption);
}

TEST_F(PersistRecoveryTest, StaleCheckpointTmpFilesAreGarbageCollected) {
  {
    auto db = DeductiveDatabase::OpenPersistent(dir_).value();
    DeclareEmployment(db.get());
    ASSERT_TRUE(db->Checkpoint().ok());
    ASSERT_TRUE(db->Apply(Insert(db.get(), "La", {"Dolors"})).ok());
  }
  // A crash mid-checkpoint leaves pre-rename temporaries behind.
  for (const char* name : {"snapshot.deddb.tmp", "wal.deddb.tmp"}) {
    FILE* f = ::fopen(StrCat(dir_, "/", name).c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ::fputs("partial garbage", f);
    ::fclose(f);
  }
  auto db = DeductiveDatabase::OpenPersistent(dir_).value();
  EXPECT_EQ(db->database().facts().TotalFacts(), 1u);
  EXPECT_NE(::access(StrCat(dir_, "/snapshot.deddb.tmp").c_str(), F_OK), 0);
  EXPECT_NE(::access(StrCat(dir_, "/wal.deddb.tmp").c_str(), F_OK), 0);
}

TEST_F(PersistRecoveryTest, NonPersistentDatabaseRefusesCheckpoint) {
  DeductiveDatabase db;
  EXPECT_EQ(db.Checkpoint().code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(db.Close().ok());  // no-op
  EXPECT_EQ(db.persistence(), nullptr);
}

}  // namespace
}  // namespace deddb
