#include "util/status.h"

#include <gtest/gtest.h>

namespace deddb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = InvalidArgumentError("bad rule");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad rule");
  EXPECT_EQ(status.ToString(), "INVALID_ARGUMENT: bad rule");
}

TEST(StatusTest, FactoryFunctionsProduceDistinctCodes) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(ResourceExhaustedError("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(DeadlineExceededError("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(BudgetExceededError("x").code(), StatusCode::kBudgetExceeded);
  EXPECT_EQ(CancelledError("x").code(), StatusCode::kCancelled);
  EXPECT_EQ(RoundLimitError("x").code(), StatusCode::kRoundLimit);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(InvalidArgumentError("a"), InvalidArgumentError("a"));
  EXPECT_FALSE(InvalidArgumentError("a") == InvalidArgumentError("b"));
  EXPECT_FALSE(InvalidArgumentError("a") == NotFoundError("a"));
}

TEST(StatusCodeNameTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "INVALID_ARGUMENT");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "INTERNAL");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded),
               "DEADLINE_EXCEEDED");
  EXPECT_STREQ(StatusCodeName(StatusCode::kBudgetExceeded),
               "BUDGET_EXCEEDED");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCancelled), "CANCELLED");
  EXPECT_STREQ(StatusCodeName(StatusCode::kRoundLimit), "ROUND_LIMIT");
}

TEST(ResultTest, HoldsValue) {
  Result<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(result.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result = NotFoundError("missing");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result = std::string("payload");
  std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> result = std::string("abc");
  EXPECT_EQ(result->size(), 3u);
}

Result<int> Half(int n) {
  if (n % 2 != 0) return InvalidArgumentError("odd");
  return n / 2;
}

Status UseHalf(int n, int* out) {
  DEDDB_ASSIGN_OR_RETURN(*out, Half(n));
  return Status::Ok();
}

TEST(MacroTest, AssignOrReturnPropagatesValue) {
  int out = 0;
  EXPECT_TRUE(UseHalf(10, &out).ok());
  EXPECT_EQ(out, 5);
}

TEST(MacroTest, AssignOrReturnPropagatesError) {
  int out = 0;
  Status status = UseHalf(7, &out);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

Status Chain(bool fail) {
  DEDDB_RETURN_IF_ERROR(fail ? InternalError("boom") : Status::Ok());
  return Status::Ok();
}

TEST(MacroTest, ReturnIfError) {
  EXPECT_TRUE(Chain(false).ok());
  EXPECT_EQ(Chain(true).code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace deddb
