// Serialization round-trip suite for the persistence codec (DESIGN.md §8):
// every storage type that reaches the WAL or a snapshot must decode back to
// an equal value, including across symbol tables whose interning order
// differs (the recovery situation). Also pins down the Transaction conflict
// invariant: an event set inserting AND deleting the same fact cannot be
// constructed, and bytes that claim one decode to kCorruption.

#include <gtest/gtest.h>

#include <string>

#include "persist/codec.h"
#include "storage/transaction.h"
#include "util/status.h"

namespace deddb::persist {
namespace {

Tuple T(SymbolTable* symbols, std::initializer_list<const char*> names) {
  Tuple t;
  for (const char* name : names) t.push_back(symbols->Intern(name));
  return t;
}

TEST(CodecPrimitivesTest, IntegersRoundTrip) {
  ByteSink sink;
  sink.PutU8(0xAB);
  sink.PutU32(0xDEADBEEF);
  sink.PutU64(0x0123456789ABCDEFull);
  sink.PutString("hello");
  sink.PutString("");
  ByteSource source(sink.bytes());
  EXPECT_EQ(source.GetU8().value(), 0xAB);
  EXPECT_EQ(source.GetU32().value(), 0xDEADBEEFu);
  EXPECT_EQ(source.GetU64().value(), 0x0123456789ABCDEFull);
  EXPECT_EQ(source.GetString().value(), "hello");
  EXPECT_EQ(source.GetString().value(), "");
  EXPECT_TRUE(source.exhausted());
}

TEST(CodecPrimitivesTest, TruncatedInputIsCorruption) {
  ByteSink sink;
  sink.PutU32(12);
  std::string bytes = sink.Take();
  ByteSource source(std::string_view(bytes).substr(0, 2));
  Result<uint32_t> value = source.GetU32();
  ASSERT_FALSE(value.ok());
  EXPECT_EQ(value.status().code(), StatusCode::kCorruption);

  // A string whose length prefix promises more bytes than exist.
  ByteSink lying;
  lying.PutU32(100);
  lying.PutU8('x');
  ByteSource lying_source(lying.bytes());
  Result<std::string> s = lying_source.GetString();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.status().code(), StatusCode::kCorruption);
}

TEST(CodecTest, TupleRoundTripsAcrossSymbolTables) {
  SymbolTable writer;
  Tuple original = T(&writer, {"Dolors", "Sales", "Dolors"});

  ByteSink sink;
  EncodeTuple(original, writer, &sink);
  std::string bytes = sink.Take();

  // The reader interns in a different order, so ids differ — names must
  // still match.
  SymbolTable reader;
  reader.Intern("Sales");
  ByteSource source(bytes);
  Tuple decoded = DecodeTuple(&source, &reader).value();
  ASSERT_EQ(decoded.size(), original.size());
  for (size_t i = 0; i < decoded.size(); ++i) {
    EXPECT_EQ(reader.NameOf(decoded[i]), writer.NameOf(original[i]));
  }
  EXPECT_EQ(decoded[0], decoded[2]);  // repeated constant stays shared
  EXPECT_TRUE(source.exhausted());
}

TEST(CodecTest, RelationRoundTrips) {
  SymbolTable symbols;
  Relation relation(2);
  relation.Insert(T(&symbols, {"A", "B"}));
  relation.Insert(T(&symbols, {"B", "C"}));
  relation.Insert(T(&symbols, {"A", "C"}));

  ByteSink sink;
  EncodeRelation(relation, symbols, &sink);
  ByteSource source(sink.bytes());
  Relation decoded = DecodeRelation(&source, &symbols).value();
  EXPECT_EQ(decoded, relation);
  EXPECT_TRUE(source.exhausted());
}

TEST(CodecTest, RelationEncodingIsDeterministic) {
  // Same set, different insertion order → identical bytes (sorted encode).
  SymbolTable symbols;
  Relation forward(1);
  forward.Insert(T(&symbols, {"A"}));
  forward.Insert(T(&symbols, {"B"}));
  forward.Insert(T(&symbols, {"C"}));
  Relation backward(1);
  backward.Insert(T(&symbols, {"C"}));
  backward.Insert(T(&symbols, {"A"}));
  backward.Insert(T(&symbols, {"B"}));

  ByteSink a, b;
  EncodeRelation(forward, symbols, &a);
  EncodeRelation(backward, symbols, &b);
  EXPECT_EQ(a.bytes(), b.bytes());
}

TEST(CodecTest, RelationCopyIsDeep) {
  // The asymmetry the round-trip suite uncovered: Relation's implicit copy
  // aliased the source's posting lists. A copy must answer indexed lookups
  // from its own storage even after the source dies.
  SymbolTable symbols;
  auto* source = new Relation(2);
  source->Insert(T(&symbols, {"A", "B"}));
  source->Insert(T(&symbols, {"A", "C"}));
  Relation copy(*source);
  delete source;
  EXPECT_EQ(copy.size(), 2u);
  EXPECT_EQ(copy.CountMatches({symbols.Intern("A"), std::nullopt}), 2u);
  copy.Insert(T(&symbols, {"D", "B"}));
  EXPECT_EQ(copy.CountMatches({std::nullopt, symbols.Intern("B")}), 2u);
}

TEST(CodecTest, ArityMismatchInsideRelationIsCorruption) {
  SymbolTable symbols;
  Relation relation(2);
  relation.Insert(T(&symbols, {"A", "B"}));
  ByteSink sink;
  EncodeRelation(relation, symbols, &sink);
  std::string bytes = sink.Take();
  // Patch the declared arity from 2 to 3 (first u32, little-endian).
  bytes[0] = 3;
  ByteSource source(bytes);
  Result<Relation> decoded = DecodeRelation(&source, &symbols);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

TEST(CodecTest, FactStoreRoundTripsAcrossSymbolTables) {
  SymbolTable writer;
  FactStore store;
  store.Add(writer.Intern("Works"), T(&writer, {"Dolors", "Sales"}));
  store.Add(writer.Intern("Works"), T(&writer, {"Joan", "Acct"}));
  store.Add(writer.Intern("La"), T(&writer, {"Dolors"}));

  ByteSink sink;
  EncodeFactStore(store, writer, &sink);
  SymbolTable reader;
  ByteSource source(sink.bytes());
  FactStore decoded = DecodeFactStore(&source, &reader).value();
  EXPECT_EQ(decoded.TotalFacts(), 3u);
  EXPECT_TRUE(decoded.Contains(reader.Intern("La"), T(&reader, {"Dolors"})));
  EXPECT_TRUE(decoded.Contains(reader.Intern("Works"),
                               T(&reader, {"Joan", "Acct"})));

  // Within one table, a re-encode of the decode is byte-identical.
  ByteSink again;
  EncodeFactStore(decoded, reader, &again);
  ByteSink direct;
  EncodeFactStore(store, writer, &direct);
  EXPECT_EQ(again.bytes(), direct.bytes());
}

TEST(CodecTest, TransactionMixedSetRoundTrips) {
  SymbolTable symbols;
  Transaction txn;
  ASSERT_TRUE(txn.AddInsert(symbols.Intern("Q"), T(&symbols, {"A"})).ok());
  ASSERT_TRUE(txn.AddInsert(symbols.Intern("R"), T(&symbols, {"B"})).ok());
  ASSERT_TRUE(txn.AddDelete(symbols.Intern("Q"), T(&symbols, {"C"})).ok());
  ASSERT_TRUE(
      txn.AddDelete(symbols.Intern("S"), T(&symbols, {"A", "B"})).ok());

  ByteSink sink;
  EncodeTransaction(txn, symbols, &sink);
  ByteSource source(sink.bytes());
  Transaction decoded = DecodeTransaction(&source, &symbols).value();
  EXPECT_EQ(decoded, txn);
  EXPECT_TRUE(source.exhausted());
}

TEST(CodecTest, EmptyTransactionRoundTrips) {
  SymbolTable symbols;
  Transaction txn;
  ByteSink sink;
  EncodeTransaction(txn, symbols, &sink);
  ByteSource source(sink.bytes());
  EXPECT_EQ(DecodeTransaction(&source, &symbols).value(), txn);
}

// ---- Satellite: the insert+delete-same-fact edge case -----------------------

TEST(TransactionConflictTest, OppositeEventIsRejectedDeterministically) {
  SymbolTable symbols;
  SymbolId q = symbols.Intern("Q");
  Tuple a = T(&symbols, {"A"});

  Transaction ins_first;
  ASSERT_TRUE(ins_first.AddInsert(q, a).ok());
  Status conflict = ins_first.AddDelete(q, a);
  EXPECT_EQ(conflict.code(), StatusCode::kInvalidArgument);
  // The failed add mutated nothing.
  EXPECT_EQ(ins_first.size(), 1u);
  EXPECT_TRUE(ins_first.ContainsInsert(q, a));

  Transaction del_first;
  ASSERT_TRUE(del_first.AddDelete(q, a).ok());
  EXPECT_EQ(del_first.AddInsert(q, a).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(del_first.size(), 1u);
}

TEST(TransactionConflictTest, DuplicateEventsNormalize) {
  SymbolTable symbols;
  SymbolId q = symbols.Intern("Q");
  Tuple a = T(&symbols, {"A"});
  Transaction txn;
  ASSERT_TRUE(txn.AddInsert(q, a).ok());
  ASSERT_TRUE(txn.AddInsert(q, a).ok());  // idempotent, not an error
  ASSERT_TRUE(txn.AddDelete(q, T(&symbols, {"B"})).ok());
  ASSERT_TRUE(txn.AddDelete(q, T(&symbols, {"B"})).ok());
  EXPECT_EQ(txn.size(), 2u);

  // Normalized sets encode identically to a transaction built without the
  // duplicates.
  Transaction plain;
  ASSERT_TRUE(plain.AddInsert(q, a).ok());
  ASSERT_TRUE(plain.AddDelete(q, T(&symbols, {"B"})).ok());
  ByteSink with_dups, without;
  EncodeTransaction(txn, symbols, &with_dups);
  EncodeTransaction(plain, symbols, &without);
  EXPECT_EQ(with_dups.bytes(), without.bytes());
}

TEST(TransactionConflictTest, MergeRejectsConflicts) {
  SymbolTable symbols;
  SymbolId q = symbols.Intern("Q");
  Tuple a = T(&symbols, {"A"});
  Transaction ins, del;
  ASSERT_TRUE(ins.AddInsert(q, a).ok());
  ASSERT_TRUE(del.AddDelete(q, a).ok());
  EXPECT_EQ(ins.Merge(del).code(), StatusCode::kInvalidArgument);
}

TEST(TransactionConflictTest, InverseIsAnExactInvolution) {
  SymbolTable symbols;
  Transaction txn;
  ASSERT_TRUE(txn.AddInsert(symbols.Intern("Q"), T(&symbols, {"A"})).ok());
  ASSERT_TRUE(txn.AddInsert(symbols.Intern("R"), T(&symbols, {"B"})).ok());
  ASSERT_TRUE(txn.AddDelete(symbols.Intern("Q"), T(&symbols, {"B"})).ok());

  Transaction inverse = txn.Inverse();
  EXPECT_EQ(inverse.size(), txn.size());
  EXPECT_TRUE(inverse.ContainsDelete(symbols.Intern("Q"),
                                     T(&symbols, {"A"})));
  EXPECT_TRUE(inverse.ContainsInsert(symbols.Intern("Q"),
                                     T(&symbols, {"B"})));
  EXPECT_NE(inverse, txn);
  EXPECT_EQ(inverse.Inverse(), txn);

  // The involution also holds at the byte level.
  ByteSink original, twice;
  EncodeTransaction(txn, symbols, &original);
  EncodeTransaction(txn.Inverse().Inverse(), symbols, &twice);
  EXPECT_EQ(original.bytes(), twice.bytes());
}

TEST(TransactionConflictTest, ConflictingBytesDecodeToCorruption) {
  // Bytes claiming {ins Q(A)} and {del Q(A)} cannot come from a real
  // Transaction; the decoder must reject them rather than pick an order.
  SymbolTable symbols;
  Transaction ins, del;
  ASSERT_TRUE(ins.AddInsert(symbols.Intern("Q"), T(&symbols, {"A"})).ok());
  ASSERT_TRUE(del.AddDelete(symbols.Intern("Q"), T(&symbols, {"A"})).ok());
  ByteSink ins_sink, del_sink;
  EncodeTransaction(ins, symbols, &ins_sink);
  EncodeTransaction(del, symbols, &del_sink);
  // A transaction encodes as <insert fact list><delete fact list>; splice
  // the insert half of one with the delete half of the other. Each empty
  // fact list is a u64 zero (8 bytes).
  std::string ins_bytes = ins_sink.Take();  // <ins Q(A)><empty>
  std::string del_bytes = del_sink.Take();  // <empty><del Q(A)>
  std::string spliced = ins_bytes.substr(0, ins_bytes.size() - 8) +
                        del_bytes.substr(8);
  ByteSource source(spliced);
  Result<Transaction> decoded = DecodeTransaction(&source, &symbols);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

// ---- Datalog types ----------------------------------------------------------

TEST(CodecTest, RuleRoundTripsAcrossSymbolTables) {
  SymbolTable writer;
  // P(x) <- Q(x, C) & not R(x)
  Atom head(writer.Intern("P"),
            {Term::MakeVariable(writer.InternVar("x"))});
  Atom q(writer.Intern("Q"), {Term::MakeVariable(writer.InternVar("x")),
                              Term::MakeConstant(writer.Intern("C"))});
  Atom r(writer.Intern("R"), {Term::MakeVariable(writer.InternVar("x"))});
  Rule rule(head, {Literal(q, true), Literal(r, false)});

  ByteSink sink;
  EncodeRule(rule, writer, &sink);
  SymbolTable reader;
  ByteSource source(sink.bytes());
  Rule decoded = DecodeRule(&source, &reader).value();
  ASSERT_TRUE(source.exhausted());
  EXPECT_EQ(decoded.ToString(reader), rule.ToString(writer));
  EXPECT_EQ(decoded.body()[0].positive(), true);
  EXPECT_EQ(decoded.body()[1].positive(), false);
}

TEST(CodecTest, UnknownTermTagIsCorruption) {
  SymbolTable symbols;
  ByteSink sink;
  sink.PutU8(7);  // neither constant (0) nor variable (1)
  sink.PutString("x");
  ByteSource source(sink.bytes());
  Result<Term> term = DecodeTerm(&source, &symbols);
  ASSERT_FALSE(term.ok());
  EXPECT_EQ(term.status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace deddb::persist
