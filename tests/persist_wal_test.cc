// Unit tests of the write-ahead log: append/read round trips, the torn-tail
// vs interior-corruption damage rules (the tentpole's recovery contract),
// abort records, self-healing after injected write/fsync failures, and
// concurrent group commit.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "persist/codec.h"
#include "persist/wal.h"
#include "util/resource_guard.h"
#include "util/status.h"
#include "util/strings.h"

namespace deddb::persist {
namespace {

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string tmpl = StrCat(::testing::TempDir(), "walXXXXXX");
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    ASSERT_NE(::mkdtemp(buf.data()), nullptr);
    dir_ = buf.data();
    path_ = StrCat(dir_, "/wal.deddb");
  }

  void TearDown() override {
    FaultInjector::Instance().Disarm();
    ::unlink(path_.c_str());
    ::rmdir(dir_.c_str());
  }

  Transaction MakeTxn(const char* constant) {
    Transaction txn;
    EXPECT_TRUE(
        txn.AddInsert(symbols_.Intern("Q"), {symbols_.Intern(constant)})
            .ok());
    return txn;
  }

  std::string ReadFileBytes() {
    std::string data;
    FILE* f = ::fopen(path_.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    char buf[4096];
    size_t n;
    while ((n = ::fread(buf, 1, sizeof(buf), f)) > 0) data.append(buf, n);
    ::fclose(f);
    return data;
  }

  void WriteFileBytes(const std::string& data) {
    FILE* f = ::fopen(path_.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(::fwrite(data.data(), 1, data.size(), f), data.size());
    ::fclose(f);
  }

  SymbolTable symbols_;
  std::string dir_;
  std::string path_;
};

TEST_F(WalTest, AppendAndReadBack) {
  auto writer = WalWriter::Create(path_, /*base_seq=*/7, {}).value();
  ASSERT_TRUE(writer
                  ->AppendDurable(EncodeCommitPayload(
                                      8, CommitOrigin::kProcessor,
                                      MakeTxn("A"), symbols_),
                                  {})
                  .ok());
  ASSERT_TRUE(writer
                  ->AppendDurable(EncodeCommitPayload(
                                      9, CommitOrigin::kDirect, MakeTxn("B"),
                                      symbols_),
                                  {})
                  .ok());
  ASSERT_TRUE(writer->AppendDurable(EncodeAbortPayload(10, 9), {}).ok());

  SymbolTable reader;
  WalContents contents = ReadWal(path_, &reader).value();
  EXPECT_EQ(contents.base_seq, 7u);
  EXPECT_FALSE(contents.torn_tail);
  ASSERT_EQ(contents.records.size(), 3u);
  EXPECT_EQ(contents.records[0].type, RecordType::kCommit);
  EXPECT_EQ(contents.records[0].seq, 8u);
  EXPECT_EQ(contents.records[0].origin, CommitOrigin::kProcessor);
  EXPECT_TRUE(contents.records[0].transaction.ContainsInsert(
      reader.Intern("Q"), {reader.Intern("A")}));
  EXPECT_EQ(contents.records[1].origin, CommitOrigin::kDirect);
  EXPECT_EQ(contents.records[2].type, RecordType::kAbort);
  EXPECT_EQ(contents.records[2].aborted_seq, 9u);
  EXPECT_EQ(contents.valid_bytes, writer->durable_size());
}

TEST_F(WalTest, EmptyLogReadsBackEmpty) {
  { auto writer = WalWriter::Create(path_, 0, {}).value(); }
  WalContents contents = ReadWal(path_, &symbols_).value();
  EXPECT_EQ(contents.base_seq, 0u);
  EXPECT_TRUE(contents.records.empty());
  EXPECT_FALSE(contents.torn_tail);
}

TEST_F(WalTest, MissingLogIsNotFound) {
  Result<WalContents> read = ReadWal(path_, &symbols_);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
}

TEST_F(WalTest, TornTailAtEveryByteOffsetIsTruncatedNotFatal) {
  {
    auto writer = WalWriter::Create(path_, 0, {}).value();
    ASSERT_TRUE(writer
                    ->AppendDurable(EncodeCommitPayload(
                                        1, CommitOrigin::kDirect,
                                        MakeTxn("A"), symbols_),
                                    {})
                    .ok());
    ASSERT_TRUE(writer
                    ->AppendDurable(EncodeCommitPayload(
                                        2, CommitOrigin::kDirect,
                                        MakeTxn("B"), symbols_),
                                    {})
                    .ok());
  }
  const std::string full = ReadFileBytes();
  // Find where record 2 starts: read the full file once, valid_bytes after
  // truncating to one record gives the boundary.
  SymbolTable probe;
  WalContents intact = ReadWal(path_, &probe).value();
  ASSERT_EQ(intact.records.size(), 2u);

  // Chop the file at EVERY byte length from "header only" to "one byte
  // short of complete": the reader must never error — it reports the
  // longest valid prefix and flags the rest as torn.
  for (size_t cut = kWalHeaderSize; cut < full.size(); ++cut) {
    WriteFileBytes(full.substr(0, cut));
    SymbolTable reader;
    Result<WalContents> read = ReadWal(path_, &reader);
    ASSERT_TRUE(read.ok()) << "cut=" << cut << ": " << read.status();
    EXPECT_EQ(read->torn_tail, cut > read->valid_bytes) << "cut=" << cut;
    EXPECT_LE(read->valid_bytes, cut);
    // Whole records only.
    for (const WalRecord& r : read->records) {
      EXPECT_EQ(r.type, RecordType::kCommit);
    }
    EXPECT_LE(read->records.size(), 2u);
  }

  // A file shorter than the header is an interrupted creation: empty, torn.
  WriteFileBytes(full.substr(0, kWalHeaderSize - 3));
  SymbolTable reader;
  WalContents read = ReadWal(path_, &reader).value();
  EXPECT_TRUE(read.torn_tail);
  EXPECT_EQ(read.valid_bytes, 0u);
  EXPECT_TRUE(read.records.empty());
}

TEST_F(WalTest, CorruptTailRecordIsTornNotFatal) {
  {
    auto writer = WalWriter::Create(path_, 0, {}).value();
    ASSERT_TRUE(writer
                    ->AppendDurable(EncodeCommitPayload(
                                        1, CommitOrigin::kDirect,
                                        MakeTxn("A"), symbols_),
                                    {})
                    .ok());
  }
  std::string bytes = ReadFileBytes();
  bytes.back() ^= 0x5A;  // flip a bit in the LAST record's payload
  WriteFileBytes(bytes);
  WalContents read = ReadWal(path_, &symbols_).value();
  EXPECT_TRUE(read.torn_tail);
  EXPECT_TRUE(read.records.empty());
  EXPECT_EQ(read.valid_bytes, kWalHeaderSize);
}

TEST_F(WalTest, CorruptInteriorRecordIsTypedCorruption) {
  size_t first_record_end;
  {
    auto writer = WalWriter::Create(path_, 0, {}).value();
    ASSERT_TRUE(writer
                    ->AppendDurable(EncodeCommitPayload(
                                        1, CommitOrigin::kDirect,
                                        MakeTxn("A"), symbols_),
                                    {})
                    .ok());
    first_record_end = writer->durable_size();
    ASSERT_TRUE(writer
                    ->AppendDurable(EncodeCommitPayload(
                                        2, CommitOrigin::kDirect,
                                        MakeTxn("B"), symbols_),
                                    {})
                    .ok());
  }
  std::string bytes = ReadFileBytes();
  bytes[first_record_end - 1] ^= 0x5A;  // damage record 1, record 2 follows
  WriteFileBytes(bytes);
  Result<WalContents> read = ReadWal(path_, &symbols_);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kCorruption);
}

TEST_F(WalTest, BadMagicOrHeaderCrcIsCorruption) {
  { auto writer = WalWriter::Create(path_, 3, {}).value(); }
  std::string bytes = ReadFileBytes();
  {
    std::string patched = bytes;
    patched[0] = 'X';
    WriteFileBytes(patched);
    Result<WalContents> read = ReadWal(path_, &symbols_);
    ASSERT_FALSE(read.ok());
    EXPECT_EQ(read.status().code(), StatusCode::kCorruption);
  }
  {
    std::string patched = bytes;
    patched[10] ^= 0xFF;  // base_seq byte: header CRC must catch it
    WriteFileBytes(patched);
    Result<WalContents> read = ReadWal(path_, &symbols_);
    ASSERT_FALSE(read.ok());
    EXPECT_EQ(read.status().code(), StatusCode::kCorruption);
  }
}

TEST_F(WalTest, InjectedAppendFailureSelfHealsToDurablePrefix) {
  for (FaultPoint point : {FaultPoint::kWalAppend, FaultPoint::kWalFsync}) {
    SCOPED_TRACE(FaultPointName(point));
    ::unlink(path_.c_str());
    auto writer = WalWriter::Create(path_, 0, {}).value();
    ASSERT_TRUE(writer
                    ->AppendDurable(EncodeCommitPayload(
                                        1, CommitOrigin::kDirect,
                                        MakeTxn("A"), symbols_),
                                    {})
                    .ok());
    const uint64_t durable_before = writer->durable_size();

    FaultInjector::Instance().Arm(point, /*trigger_at=*/1,
                                  InternalError("injected io failure"));
    Status failed = writer->AppendDurable(
        EncodeCommitPayload(2, CommitOrigin::kDirect, MakeTxn("B"),
                            symbols_),
        {});
    FaultInjector::Instance().Disarm();
    EXPECT_FALSE(failed.ok());
    EXPECT_EQ(writer->durable_size(), durable_before);

    // The file equals the crash-at-that-instruction state: exactly the
    // acknowledged prefix, and the writer keeps working afterwards.
    SymbolTable reader;
    WalContents read = ReadWal(path_, &reader).value();
    EXPECT_FALSE(read.torn_tail);
    ASSERT_EQ(read.records.size(), 1u);
    EXPECT_EQ(read.records[0].seq, 1u);

    ASSERT_TRUE(writer
                    ->AppendDurable(EncodeCommitPayload(
                                        3, CommitOrigin::kDirect,
                                        MakeTxn("C"), symbols_),
                                    {})
                    .ok());
    SymbolTable reader2;
    WalContents after = ReadWal(path_, &reader2).value();
    ASSERT_EQ(after.records.size(), 2u);
    EXPECT_EQ(after.records[1].seq, 3u);
  }
}

TEST_F(WalTest, ConcurrentGroupCommitKeepsEveryRecord) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 25;
  auto writer =
      WalWriter::Create(path_, 0, WalWriter::Options{true}).value();
  obs::MetricsRegistry metrics;
  // Seqs must be unique but the file accepts any increasing enqueue order;
  // give each thread a disjoint range and check the set read back. To keep
  // ReadWal's monotonicity check satisfied, each thread's payloads carry
  // seqs from a global counter under the writer's own append ordering —
  // here we simply use one atomic pre-assignment.
  std::atomic<uint64_t> next_seq{1};
  // The mutex covers seq assignment AND the append, like the manager's —
  // that is what keeps the file's seqs increasing. AppendDurable itself is
  // what the unordered test below exercises concurrently.
  std::mutex seq_mu;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < kPerThread; ++i) {
        std::string name = StrCat("c", t, "_", i);
        std::lock_guard<std::mutex> lock(seq_mu);
        uint64_t seq = next_seq.fetch_add(1);
        Transaction txn;
        // Symbol interning is not thread-safe; it happens under the lock.
        ASSERT_TRUE(
            txn.AddInsert(symbols_.Intern("Q"), {symbols_.Intern(name)})
                .ok());
        ASSERT_TRUE(writer
                        ->AppendDurable(
                            EncodeCommitPayload(seq, CommitOrigin::kDirect,
                                                txn, symbols_),
                            obs::ObsContext{nullptr, &metrics})
                        .ok());
      }
    });
  }
  for (std::thread& t : threads) t.join();

  SymbolTable reader;
  WalContents read = ReadWal(path_, &reader).value();
  EXPECT_FALSE(read.torn_tail);
  ASSERT_EQ(read.records.size(),
            static_cast<size_t>(kThreads * kPerThread));
  for (size_t i = 0; i < read.records.size(); ++i) {
    EXPECT_EQ(read.records[i].seq, i + 1);
  }
}

TEST_F(WalTest, ConcurrentUnorderedAppendsAllBecomeDurable) {
  // Without external ordering, records may interleave arbitrarily — the
  // writer must still make every acknowledged record durable and intact.
  // (Out-of-order seqs fail ReadWal's monotonicity rule, so this test
  // checks durability through the writer's own accounting.)
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  auto writer =
      WalWriter::Create(path_, 0, WalWriter::Options{true}).value();
  std::atomic<uint64_t> payload_bytes{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < kPerThread; ++i) {
        std::string payload = StrCat("thread ", t, " record ", i);
        payload_bytes.fetch_add(payload.size());
        ASSERT_TRUE(writer->AppendDurable(std::move(payload), {}).ok());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(writer->durable_size(),
            kWalHeaderSize +
                payload_bytes.load() +
                static_cast<uint64_t>(kThreads * kPerThread) *
                    kWalFrameSize);
  EXPECT_GE(writer->fsyncs(), 1u);
  EXPECT_LE(writer->fsyncs(),
            static_cast<uint64_t>(kThreads * kPerThread));
}

}  // namespace
}  // namespace deddb::persist
