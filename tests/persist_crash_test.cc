// Randomized crash-recovery matrix (the crash-consistency proof of
// DESIGN.md §8): 100 seeded runs, each driving a persistent database with
// random transactions and checkpoints while one randomly chosen persist
// fault point is armed. When the fault fires the database object is dropped
// without Close() — by construction the WAL self-heals live failures to the
// exact bytes a crash at that instruction would leave, so this simulates the
// crash. Recovery must then reproduce exactly the committed prefix: the
// acked commits and nothing else, with the materialized IDB equal to a
// from-scratch re-derivation of the recovered EDB.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/deductive_database.h"
#include "core/session.h"
#include "core/update_processor.h"
#include "util/resource_guard.h"
#include "util/rng.h"
#include "util/strings.h"

namespace deddb {
namespace {

constexpr FaultPoint kMatrixPoints[] = {
    // Persist-layer points: fail the commit append, the batch fsync, and
    // every step of the checkpoint protocol.
    FaultPoint::kWalAppend,      FaultPoint::kWalFsync,
    FaultPoint::kSnapshotWrite,  FaultPoint::kSnapshotFsync,
    FaultPoint::kSnapshotRename, FaultPoint::kWalReset,
    // Processor points: fail AFTER the commit record is durable, forcing the
    // rollback + abort-record path that recovery must filter out.
    FaultPoint::kProcessorApplyViews,
    FaultPoint::kProcessorApplyBase,
    FaultPoint::kProcessorCommit,
};
constexpr size_t kNumMatrixPoints =
    sizeof(kMatrixPoints) / sizeof(kMatrixPoints[0]);

constexpr const char* kConstants[] = {"c0", "c1", "c2", "c3", "c4", "c5"};
constexpr const char* kBasePreds[] = {"Q", "R"};

// Sorted textual image of a fact store, via that database's own symbol
// table — recovered and oracle databases intern symbols in different orders,
// so raw SymbolId comparison across them would be meaningless.
std::vector<std::string> Dump(const DeductiveDatabase& db,
                              const FactStore& store) {
  std::vector<std::string> out;
  store.ForEach([&](SymbolId pred, const Tuple& t) {
    std::string s = StrCat(db.symbols().NameOf(pred), "(");
    for (size_t i = 0; i < t.size(); ++i) {
      if (i > 0) s += ",";
      s += db.symbols().NameOf(t[i]);
    }
    out.push_back(StrCat(s, ")"));
  });
  std::sort(out.begin(), out.end());
  return out;
}

// The shared schema: P(x) <- Q(x) & not R(x). `materialize` turns on
// incremental maintenance of P, which only UpdateProcessor performs — so
// processor-mode seeds materialize (exercising the snapshot's materialized
// section and replay-through-the-processor) while direct-Apply seeds do not
// (Apply is documented not to maintain views).
void DeclareSchema(DeductiveDatabase* db, bool materialize) {
  ASSERT_TRUE(db->DeclareBase("Q", 1).ok());
  ASSERT_TRUE(db->DeclareBase("R", 1).ok());
  Result<SymbolId> p = db->DeclareView("P", 1);
  ASSERT_TRUE(p.ok());
  Term x = db->Variable("x");
  ASSERT_TRUE(
      db->AddRule(Rule(db->MakeAtom("P", {x}).value(),
                       {Literal::Positive(db->MakeAtom("Q", {x}).value()),
                        Literal::Negative(db->MakeAtom("R", {x}).value())}))
          .ok());
  if (materialize) {
    ASSERT_TRUE(db->MaterializeView(*p).ok());
    ASSERT_TRUE(db->InitializeMaterializedViews().ok());
  }
}

// Canonical image of a base-fact set as (pred idx, const idx) pairs,
// rendered without touching any database (same format as ImageOfSession).
std::string ImageOfMirror(const std::set<std::pair<size_t, size_t>>& mirror) {
  std::vector<std::string> facts;
  for (const auto& [p, c] : mirror) {
    facts.push_back(StrCat(kBasePreds[p], "(", kConstants[c], ")"));
  }
  std::sort(facts.begin(), facts.end());
  return Join(facts, ";");
}

std::string ImageOfSession(const Session& session) {
  std::vector<std::string> facts;
  const SymbolTable& symbols = session.database().symbols();
  session.database().facts().ForEach([&](SymbolId pred, const Tuple& t) {
    std::string s = StrCat(symbols.NameOf(pred), "(");
    for (size_t i = 0; i < t.size(); ++i) {
      if (i > 0) s += ",";
      s += symbols.NameOf(t[i]);
    }
    facts.push_back(StrCat(s, ")"));
  });
  std::sort(facts.begin(), facts.end());
  return Join(facts, ";");
}

// A reader thread driven while the fault window is open: continuously opens
// snapshot sessions and records the base image each one pins. Reads never
// touch the persist fault points, so they must neither perturb the crash
// nor observe anything but an acknowledged commit prefix.
struct ReaderLog {
  std::vector<std::string> images;
  std::vector<std::string> errors;
};

void SessionReaderLoop(DeductiveDatabase* db, const std::atomic<bool>* done,
                       ReaderLog* log) {
  // At least one snapshot even if the fault window closes instantly.
  for (int iter = 0; iter == 0 || !done->load(std::memory_order_acquire);
       ++iter) {
    Result<std::unique_ptr<Session>> begun = db->BeginSession();
    if (!begun.ok()) {
      log->errors.push_back(begun.status().ToString());
      return;
    }
    log->images.push_back(ImageOfSession(**begun));
    std::this_thread::yield();
  }
}

// One run of the matrix. Returns through gtest assertions only.
void RunSeed(uint64_t seed, bool with_readers = false) {
  SCOPED_TRACE(StrCat("seed=", seed));
  std::string tmpl = StrCat(::testing::TempDir(), "crashXXXXXX");
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  ASSERT_NE(::mkdtemp(buf.data()), nullptr);
  std::string dir = buf.data();

  Rng rng(seed * 0x9E3779B97F4A7C15ull + 1);

  {
    // Processor-mode seeds maintain a materialized view and commit through
    // UpdateProcessor; direct-mode seeds commit through Apply (kDirect).
    const bool via_processor = rng.NextChance(1, 2);

    auto opened = DeductiveDatabase::OpenPersistent(dir);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    std::unique_ptr<DeductiveDatabase> db = std::move(*opened);
    DeclareSchema(db.get(), via_processor);
    ASSERT_TRUE(db->Checkpoint().ok());

    // `mirror` tracks the base facts so random transactions can be built
    // valid per eqs. 1-2; `acked` records the events of every acknowledged
    // commit. The oracle twin is built from `acked` only after the injector
    // is disarmed — it is a global singleton, so a live oracle driven during
    // the fault window would poke (and could trip) the armed point itself.
    using Event = std::tuple<size_t, size_t, bool>;  // (pred, const, insert)
    std::set<std::pair<size_t, size_t>> mirror;      // (pred idx, const idx)
    std::vector<std::vector<Event>> acked_txns;

    // Crash-while-readers-active: two reader threads continuously pin
    // snapshot sessions throughout the fault window, plus one session
    // pinned before it opens that must keep answering after the "crash".
    std::set<std::string> prefix_images;
    prefix_images.insert(ImageOfMirror(mirror));
    std::atomic<bool> readers_done{false};
    std::vector<ReaderLog> reader_logs(with_readers ? 2 : 0);
    std::vector<std::thread> readers;
    std::unique_ptr<Session> pinned;
    std::string pinned_image;
    if (with_readers) {
      auto begun = db->BeginSession();
      ASSERT_TRUE(begun.ok()) << begun.status().ToString();
      pinned = std::move(*begun);
      pinned_image = ImageOfSession(*pinned);
      for (ReaderLog& log : reader_logs) {
        readers.emplace_back(SessionReaderLoop, db.get(), &readers_done,
                             &log);
      }
    }

    const FaultPoint point =
        kMatrixPoints[rng.NextBelow(kNumMatrixPoints)];
    const size_t trigger = 1 + rng.NextBelow(3);
    FaultInjector::Instance().Arm(point, trigger,
                                  InternalError("injected crash"));

    bool crashed = false;
    for (int op = 0; op < 40 && !crashed; ++op) {
      if (rng.NextChance(1, 8)) {
        crashed = !db->Checkpoint().ok();
        continue;
      }
      // Build a random valid transaction (1-3 events). Validity per
      // eqs. 1-2 is against the PRE-state (`mirror`), and a fact may appear
      // in at most one event — opposite events on the same fact are a
      // conflict the Transaction itself rejects (see transaction.h).
      std::set<std::pair<size_t, size_t>> cur = mirror;
      std::set<std::pair<size_t, size_t>> touched;
      const size_t num_events = 1 + rng.NextBelow(3);
      Transaction txn;
      std::vector<Event> events;
      for (size_t e = 0; e < num_events; ++e) {
        const size_t p = rng.NextBelow(2);
        const size_t c = rng.NextBelow(6);
        if (!touched.insert({p, c}).second) continue;
        Atom fact = db->GroundAtom(kBasePreds[p], {kConstants[c]}).value();
        if (mirror.count({p, c}) > 0) {
          ASSERT_TRUE(txn.AddDelete(fact).ok());
          events.emplace_back(p, c, false);
          cur.erase({p, c});
        } else {
          ASSERT_TRUE(txn.AddInsert(fact).ok());
          events.emplace_back(p, c, true);
          cur.insert({p, c});
        }
      }
      bool was_acked;
      if (via_processor) {
        UpdateProcessor processor(db.get());
        auto report = processor.ProcessTransaction(txn);
        was_acked = report.ok() && report->accepted;
      } else {
        was_acked = db->Apply(txn).ok();
      }
      if (was_acked) {
        mirror = std::move(cur);
        acked_txns.push_back(std::move(events));
        prefix_images.insert(ImageOfMirror(mirror));
      } else {
        crashed = true;  // the armed fault fired; stop and "crash"
        // The pipelined Apply applies in memory before confirming
        // durability, so post-crash readers may legitimately observe the
        // final, never-acknowledged transaction (recovery below proves it
        // does not survive the crash).
        if (!via_processor) prefix_images.insert(ImageOfMirror(cur));
      }
    }
    FaultInjector::Instance().Disarm();

    if (with_readers) {
      readers_done.store(true, std::memory_order_release);
      for (std::thread& reader : readers) reader.join();
      // The pinned session survived the crash of the writer: it still
      // answers exactly the image it pinned before the fault window.
      EXPECT_EQ(ImageOfSession(*pinned), pinned_image);
      pinned.reset();
      for (const ReaderLog& log : reader_logs) {
        ASSERT_TRUE(log.errors.empty()) << log.errors.front();
        EXPECT_FALSE(log.images.empty());
        for (const std::string& image : log.images) {
          EXPECT_TRUE(prefix_images.count(image) > 0)
              << "torn or phantom state observed at crash time: '" << image
              << "'";
        }
      }
    }

    // Build the committed-prefix oracle: the acked transactions replayed
    // through the same apply path on an in-memory twin.
    DeductiveDatabase oracle;
    DeclareSchema(&oracle, via_processor);
    for (const std::vector<Event>& events : acked_txns) {
      Transaction twin;
      for (const auto& [p, c, insert] : events) {
        Atom fact =
            oracle.GroundAtom(kBasePreds[p], {kConstants[c]}).value();
        ASSERT_TRUE((insert ? twin.AddInsert(fact) : twin.AddDelete(fact))
                        .ok());
      }
      if (via_processor) {
        UpdateProcessor twin_processor(&oracle);
        auto report = twin_processor.ProcessTransaction(twin);
        ASSERT_TRUE(report.ok() && report->accepted);
      } else {
        ASSERT_TRUE(oracle.Apply(twin).ok());
      }
    }
    // Simulated crash: drop the handle with no Close(). A live injected
    // failure already self-healed the files to the durable prefix, which is
    // byte-identical to what a real crash at that instruction leaves.
    db.reset();

    auto reopened = DeductiveDatabase::OpenPersistent(dir);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    std::unique_ptr<DeductiveDatabase> recovered = std::move(*reopened);

    // 1. Recovered EDB == the committed prefix.
    EXPECT_EQ(Dump(*recovered, recovered->database().facts()),
              Dump(oracle, oracle.database().facts()));
    // 2. Recovered materialized IDB == the oracle's (empty in direct mode:
    // Apply does not maintain views).
    EXPECT_EQ(Dump(*recovered, recovered->database().materialized_store()),
              Dump(oracle, oracle.database().materialized_store()));
    // 3. Processor mode: the recovered materialized IDB is exactly the
    // derivation of the recovered EDB — rebuild from the recovered base
    // facts alone and re-derive P from scratch.
    if (via_processor) {
      DeductiveDatabase rebuilt;
      DeclareSchema(&rebuilt, true);
      Transaction all;
      recovered->database().facts().ForEach([&](SymbolId pred,
                                                const Tuple& t) {
        std::vector<std::string_view> names;
        for (SymbolId s : t) names.push_back(recovered->symbols().NameOf(s));
        ASSERT_TRUE(
            all.AddInsert(
                   rebuilt
                       .GroundAtom(recovered->symbols().NameOf(pred), names)
                       .value())
                .ok());
      });
      ASSERT_TRUE(rebuilt.Apply(all).ok());
      ASSERT_TRUE(rebuilt.InitializeMaterializedViews().ok());
      EXPECT_EQ(Dump(*recovered, recovered->database().materialized_store()),
                Dump(rebuilt, rebuilt.database().materialized_store()));
    }
    EXPECT_TRUE(recovered->IsConsistent().value());
  }

  std::string cmd = StrCat("rm -rf ", dir);
  ASSERT_EQ(std::system(cmd.c_str()), 0);
}

class PersistCrashTest : public ::testing::TestWithParam<int> {
 protected:
  void TearDown() override { FaultInjector::Instance().Disarm(); }
};

TEST_P(PersistCrashTest, RecoveryReproducesTheCommittedPrefix) {
  // 10 seeds per shard x 10 shards = the 100-seed matrix, sharded so ctest
  // can run shards in parallel and a failure names its seed via
  // SCOPED_TRACE.
  const int shard = GetParam();
  for (int i = 0; i < 10; ++i) {
    RunSeed(static_cast<uint64_t>(shard * 10 + i));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(Matrix, PersistCrashTest, ::testing::Range(0, 10));

TEST(PersistCrashWithReadersTest,
     ActiveSessionsNeitherPerturbNorObserveTheCrash) {
  // The crash matrix re-run with snapshot sessions alive at crash time:
  // reader threads pinning snapshots through the fault window, and one
  // session begun before it that must keep answering after the writer dies.
  // Fresh seeds, so the scenarios differ from the plain matrix.
  for (int i = 0; i < 10; ++i) {
    RunSeed(static_cast<uint64_t>(100 + i), /*with_readers=*/true);
    FaultInjector::Instance().Disarm();
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace deddb
