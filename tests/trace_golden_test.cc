// Golden-trace tests: every worked example of the paper is executed with a
// Tracer attached, and the normalized span tree (names, nesting, structural
// attributes — no timings, no ids), the EXPLAIN rendering and the metrics
// snapshot are compared byte-for-byte against checked-in goldens. This pins
// down the whole observability surface: span vocabulary, attribute names,
// nesting, metric names and the deterministic-id contract.
//
// Regenerate the goldens after an intentional instrumentation change with
//   DEDDB_UPDATE_GOLDENS=1 ./build/tests/trace_golden_test
// and review the diff like any other code change.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/deductive_database.h"
#include "eval/bottom_up.h"
#include "eval/fact_provider.h"
#include "obs/explain.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parser/parser.h"

#ifndef DEDDB_GOLDEN_DIR
#error "DEDDB_GOLDEN_DIR must be defined by the build"
#endif

namespace deddb {
namespace {

bool UpdateMode() {
  return std::getenv("DEDDB_UPDATE_GOLDENS") != nullptr;
}

std::string GoldenPath(const std::string& name) {
  return std::string(DEDDB_GOLDEN_DIR) + "/" + name + ".txt";
}

// Compares `actual` against the golden `name`, or rewrites the golden in
// update mode.
void CheckGolden(const std::string& name, const std::string& actual) {
  const std::string path = GoldenPath(name);
  if (UpdateMode()) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write golden " << path;
    out << actual;
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good())
      << "missing golden " << path
      << " — regenerate with DEDDB_UPDATE_GOLDENS=1 " << std::flush;
  std::stringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(expected.str(), actual)
      << "trace for " << name << " diverged from the golden; if the "
      << "instrumentation change is intentional, regenerate with "
      << "DEDDB_UPDATE_GOLDENS=1 and review the diff";
}

// The database of examples 3.1 / 4.1 / 4.2:
//   Q(A). Q(B). R(B).   P(x) <- Q(x) & not R(x).
std::unique_ptr<DeductiveDatabase> MakeSmallDb(bool simplify) {
  auto db = std::make_unique<DeductiveDatabase>(
      EventCompilerOptions{.simplify = simplify, .obs = {}});
  auto loaded = LoadProgram(db.get(), R"(
    base Q/1.
    base R/1.
    view P/1.
    Q(A). Q(B). R(B).
    P(x) <- Q(x) & not R(x).
  )");
  EXPECT_TRUE(loaded.ok()) << loaded.status();
  return db;
}

// The employment database of examples 5.1 / 5.2 / 5.3.
std::unique_ptr<DeductiveDatabase> MakeEmploymentDb() {
  auto db = std::make_unique<DeductiveDatabase>();
  auto loaded = LoadProgram(db.get(), R"(
    base La/1.
    base Works/1.
    base U_benefit/1.
    view Unemp/1.
    ic Ic1/1.
    La(Dolors).
    U_benefit(Dolors).
    Unemp(x) <- La(x) & not Works(x).
    Ic1(x) <- Unemp(x) & not U_benefit(x).
  )");
  EXPECT_TRUE(loaded.ok()) << loaded.status();
  return db;
}

// Fixture holding one traced database. Lazy caches (compiled event rules,
// active domain) are warmed BEFORE the tracer attaches, so each golden
// records exactly the traced operation, not one-time setup.
class TraceGoldenTest : public ::testing::Test {
 protected:
  void Attach(DeductiveDatabase* db) {
    ASSERT_TRUE(db->Compiled().ok());
    ASSERT_TRUE(db->Domain().ok());
    db->set_observability(obs::ObsContext{&tracer_, &metrics_});
  }

  // Goldens <name>.tree / <name>.explain / <name>.metrics from the current
  // tracer + metrics contents.
  void CheckAll(const std::string& name) {
    CheckGolden(name + ".tree", obs::RenderSpanTree(tracer_));
    CheckGolden(name + ".explain", obs::Explain(tracer_));
    CheckGolden(name + ".metrics", metrics_.RenderText());
  }

  obs::Tracer tracer_;
  obs::MetricsRegistry metrics_;
};

// --- Example 3.1: compiling the transition rule of P(x) <- Q(x) & not R(x).
// Unsimplified, so the compile span's rule counts reflect all 2^k disjuncts.
TEST_F(TraceGoldenTest, Example31CompileEvents) {
  auto db = MakeSmallDb(/*simplify=*/false);
  db->set_observability(obs::ObsContext{&tracer_, &metrics_});
  ASSERT_TRUE(db->Compiled().ok());
  CheckAll("example31_compile");
}

// --- Example 4.1: upward interpretation of T = {δR(B)} -> {ιP(B)}.
TEST_F(TraceGoldenTest, Example41Upward) {
  auto db = MakeSmallDb(/*simplify=*/true);
  Attach(db.get());
  auto txn = ParseTransaction(db.get(), "del R(B)");
  ASSERT_TRUE(txn.ok()) << txn.status();
  auto events = db->InducedEvents(*txn);
  ASSERT_TRUE(events.ok()) << events.status();
  ASSERT_EQ(events->ToString(db->symbols()), "{ins P(B)}");
  CheckAll("example41_upward");
}

// --- Example 4.2: downward translation of ιP(B) -> (δR(B) & ¬δQ(B)).
TEST_F(TraceGoldenTest, Example42Downward) {
  auto db = MakeSmallDb(/*simplify=*/true);
  Attach(db.get());
  auto request = ParseRequest(db.get(), "ins P(B)");
  ASSERT_TRUE(request.ok()) << request.status();
  auto result = db->TranslateViewUpdate(*request);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->translations.size(), 1u);
  CheckAll("example42_downward");
}

// --- Example 5.1: integrity checking rejects T = {δU_benefit(Dolors)}.
TEST_F(TraceGoldenTest, Example51IntegrityChecking) {
  auto db = MakeEmploymentDb();
  Attach(db.get());
  auto txn = ParseTransaction(db.get(), "del U_benefit(Dolors)");
  ASSERT_TRUE(txn.ok()) << txn.status();
  auto check = db->CheckIntegrity(*txn);
  ASSERT_TRUE(check.ok()) << check.status();
  ASSERT_TRUE(check->violated);
  CheckAll("example51_integrity");
}

// --- Example 5.2: view updating, δUnemp(Dolors) -> two translations.
TEST_F(TraceGoldenTest, Example52ViewUpdating) {
  auto db = MakeEmploymentDb();
  Attach(db.get());
  auto request = ParseRequest(db.get(), "del Unemp(Dolors)");
  ASSERT_TRUE(request.ok()) << request.status();
  auto result = db->TranslateViewUpdate(*request);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->translations.size(), 2u);
  CheckAll("example52_view_updating");
}

// --- Example 5.3: preventing the side effect ιUnemp(Maria) of {ιLa(Maria)}.
TEST_F(TraceGoldenTest, Example53SideEffects) {
  auto db = MakeEmploymentDb();
  Attach(db.get());
  auto txn = ParseTransaction(db.get(), "ins La(Maria)");
  ASSERT_TRUE(txn.ok()) << txn.status();
  SymbolId unemp = db->database().FindPredicate("Unemp").value();
  RequestedEvent unwanted;
  unwanted.is_insert = true;
  unwanted.predicate = unemp;
  unwanted.args = {Term::MakeConstant(db->symbols().Intern("Maria"))};
  auto result = db->PreventSideEffects(*txn, {unwanted});
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->translations.size(), 1u);
  CheckAll("example53_side_effects");
}

// --- Plan goldens: the access paths the join planner chooses for the
// paper's examples. Each test runs the planned bottom-up engine directly
// with the tracer attached; every rule evaluation emits a "plan" span
// whose attribute renders the chosen join order, per-step access path
// ([scan] / [col<i>] / [comp(<cols>)] / [key] / [empty], see DESIGN.md
// §6e) and selectivity estimates, plus the actual per-step row counts.
// The EXPLAIN golden is the human-readable proof of which access paths
// were picked; the metrics golden pins the indexed-vs-scanned step
// counters.
class PlanGoldenTest : public TraceGoldenTest {
 protected:
  // Evaluates every derived predicate of `db` with observability attached.
  void Evaluate(const DeductiveDatabase& db, size_t num_threads = 0) {
    FactStoreProvider edb(&db.database().facts());
    EvaluationOptions options;
    options.num_threads = num_threads;
    options.obs = obs::ObsContext{&tracer_, &metrics_};
    BottomUpEvaluator evaluator(db.database().program(), db.symbols(), edb,
                                options);
    auto idb = evaluator.Evaluate();
    ASSERT_TRUE(idb.ok()) << idb.status();
  }
};

// Example 3.1's database: P(x) <- Q(x) & not R(x) leads with the Q scan and
// probes R as a ground negative (key lookup against the unary relation).
TEST_F(PlanGoldenTest, Example31Plan) {
  auto db = MakeSmallDb(/*simplify=*/true);
  Evaluate(*db);
  CheckAll("example31_plan");
}

// Example 4.1's state transition: after applying T = {δR(B)} the same rule
// is re-planned against the updated EDB (R now empty -> its probe renders
// as an empty access path).
TEST_F(PlanGoldenTest, Example41PlanAfterDelete) {
  auto db = MakeSmallDb(/*simplify=*/true);
  auto txn = ParseTransaction(db.get(), "del R(B)");
  ASSERT_TRUE(txn.ok()) << txn.status();
  ASSERT_TRUE(db->Apply(*txn).ok());
  Evaluate(*db);
  CheckAll("example41_plan");
}

// Example 4.2's database evaluated at num_threads=2: the plan spans (and
// every metric) must be byte-identical to what a single orchestration
// thread records — the determinism contract of DESIGN.md §7 extended to
// the planner.
TEST_F(PlanGoldenTest, Example42PlanParallel) {
  auto db = MakeSmallDb(/*simplify=*/true);
  Evaluate(*db, /*num_threads=*/2);
  CheckAll("example42_plan");
}

// Example 5.1's employment database: the stratified program plans Unemp
// before the integrity constraint Ic1, which consumes Unemp's derivations.
TEST_F(PlanGoldenTest, Example51Plan) {
  auto db = MakeEmploymentDb();
  Evaluate(*db);
  CheckAll("example51_plan");
}

// Example 5.2 goal-directed: EvaluateFor(Unemp) restricts the program, so
// only Unemp's rule is planned and Ic1 never appears in the trace.
TEST_F(PlanGoldenTest, Example52PlanGoalDirected) {
  auto db = MakeEmploymentDb();
  FactStoreProvider edb(&db->database().facts());
  EvaluationOptions options;
  options.obs = obs::ObsContext{&tracer_, &metrics_};
  BottomUpEvaluator evaluator(db->database().program(), db->symbols(), edb,
                              options);
  SymbolId unemp = db->database().FindPredicate("Unemp").value();
  auto idb = evaluator.EvaluateFor({unemp});
  ASSERT_TRUE(idb.ok()) << idb.status();
  CheckAll("example52_plan");
}

// Example 5.3's side-effect state: after {ιLa(Maria)} the Unemp rule sees a
// larger La relation, and the plan's estimates and row counts shift with it.
TEST_F(PlanGoldenTest, Example53PlanAfterInsert) {
  auto db = MakeEmploymentDb();
  auto txn = ParseTransaction(db.get(), "ins La(Maria)");
  ASSERT_TRUE(txn.ok()) << txn.status();
  ASSERT_TRUE(db->Apply(*txn).ok());
  Evaluate(*db);
  CheckAll("example53_plan");
}

// The deterministic-id contract, directly: repeating an operation after
// Tracer::Clear() reproduces the identical normalized tree and doubles every
// counter without changing the metric name set.
TEST_F(TraceGoldenTest, RepeatedRunIsByteIdentical) {
  auto db = MakeEmploymentDb();
  Attach(db.get());
  auto request = ParseRequest(db.get(), "del Unemp(Dolors)");
  ASSERT_TRUE(request.ok()) << request.status();

  ASSERT_TRUE(db->TranslateViewUpdate(*request).ok());
  const std::string first_tree = obs::RenderSpanTree(tracer_);
  const std::string first_metrics = metrics_.RenderText();

  tracer_.Clear();
  metrics_.Clear();
  ASSERT_TRUE(db->TranslateViewUpdate(*request).ok());
  EXPECT_EQ(obs::RenderSpanTree(tracer_), first_tree);
  EXPECT_EQ(metrics_.RenderText(), first_metrics);
}

}  // namespace
}  // namespace deddb
