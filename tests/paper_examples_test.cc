// Integration tests reproducing every worked example of the paper
// (Teniente & Urpí, "A Common Framework for Classifying and Specifying
// Deductive Database Updating Problems", ICDE 1995). Each test's expected
// value is the result stated in the paper's text.

#include <gtest/gtest.h>

#include "core/deductive_database.h"
#include "core/update_processor.h"
#include "parser/parser.h"

namespace deddb {
namespace {

// The database of examples 3.1 / 4.1 / 4.2:
//   Q(A). Q(B). R(B).   P(x) <- Q(x) & not R(x).
std::unique_ptr<DeductiveDatabase> MakeSmallDb(bool simplify) {
  auto db = std::make_unique<DeductiveDatabase>(
      EventCompilerOptions{.simplify = simplify, .obs = {}});
  auto loaded = LoadProgram(db.get(), R"(
    base Q/1.
    base R/1.
    view P/1.
    Q(A). Q(B). R(B).
    P(x) <- Q(x) & not R(x).
  )");
  EXPECT_TRUE(loaded.ok()) << loaded.status();
  return db;
}

// The employment database of examples 5.1 / 5.2 / 5.3.
std::unique_ptr<DeductiveDatabase> MakeEmploymentDb(bool simplify) {
  auto db = std::make_unique<DeductiveDatabase>(
      EventCompilerOptions{.simplify = simplify, .obs = {}});
  auto loaded = LoadProgram(db.get(), R"(
    base La/1.         % x is in labour age
    base Works/1.      % x works for some company
    base U_benefit/1.  % x receives an unemployment benefit
    view Unemp/1.      % unemployed: in labour age and does not work
    ic Ic1/1.          % all unemployed must receive a benefit

    La(Dolors).
    U_benefit(Dolors).

    Unemp(x) <- La(x) & not Works(x).
    Ic1(x) <- Unemp(x) & not U_benefit(x).
  )");
  EXPECT_TRUE(loaded.ok()) << loaded.status();
  return db;
}

class PaperExamplesTest : public ::testing::TestWithParam<bool> {
 protected:
  bool simplify() const { return GetParam(); }
};

INSTANTIATE_TEST_SUITE_P(SimplifyModes, PaperExamplesTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Simplified" : "Unsimplified";
                         });

// --- Example 3.1: the transition rule of P(x) <- Q(x) & not R(x) -----------
// "there are 2^k disjunctands": the 4 stated disjuncts must appear.
TEST_P(PaperExamplesTest, Example31TransitionRule) {
  auto db = MakeSmallDb(/*simplify=*/false);  // unsimplified: all disjuncts
  auto compiled = db->Compiled();
  ASSERT_TRUE(compiled.ok()) << compiled.status();

  SymbolId p = db->database().FindPredicate("P").value();
  SymbolId new_p = db->database()
                       .predicates()
                       .FindVariant(p, PredicateVariant::kNew)
                       .value();
  std::vector<Rule> rules = (*compiled)->transition.RulesFor(new_p);
  ASSERT_EQ(rules.size(), 4u);

  // Collect the rule bodies as printed strings for order-insensitive
  // comparison against the paper's four disjuncts.
  std::vector<std::string> bodies;
  for (const Rule& rule : rules) {
    bodies.push_back(rule.ToString(db->symbols()));
  }
  auto contains = [&](const std::string& needle) {
    for (const std::string& body : bodies) {
      if (body == needle) return true;
    }
    return false;
  };
  EXPECT_TRUE(contains(
      "new$P(x) <- Q(x) & not del$Q(x) & not R(x) & not ins$R(x)"))
      << bodies[0];
  EXPECT_TRUE(contains("new$P(x) <- Q(x) & not del$Q(x) & del$R(x)"));
  EXPECT_TRUE(contains("new$P(x) <- ins$Q(x) & not R(x) & not ins$R(x)"));
  EXPECT_TRUE(contains("new$P(x) <- ins$Q(x) & del$R(x)"));
}

// --- Example 4.1: T = {δR(B)} induces exactly {ιP(B)} ----------------------
TEST_P(PaperExamplesTest, Example41UpwardInterpretation) {
  auto db = MakeSmallDb(simplify());
  auto txn = ParseTransaction(db.get(), "del R(B)");
  ASSERT_TRUE(txn.ok()) << txn.status();

  auto events = db->InducedEvents(*txn);
  ASSERT_TRUE(events.ok()) << events.status();
  EXPECT_EQ(events->ToString(db->symbols()), "{ins P(B)}");
}

// --- Example 4.2: downward ιP(B) = (δR(B) & ¬δQ(B)) ------------------------
TEST_P(PaperExamplesTest, Example42DownwardInterpretation) {
  auto db = MakeSmallDb(simplify());
  auto request = ParseRequest(db.get(), "ins P(B)");
  ASSERT_TRUE(request.ok()) << request.status();

  auto result = db->TranslateViewUpdate(*request);
  ASSERT_TRUE(result.ok()) << result.status();
  // The paper writes the result as (δR(B) & ¬δQ(B)); our canonical conjunct
  // order sorts by predicate, so the same two literals print Q-first.
  EXPECT_EQ(result->dnf.ToString(db->symbols()),
            "(not del Q(B) & del R(B))");
  ASSERT_EQ(result->translations.size(), 1u);
  EXPECT_EQ(result->translations[0].transaction.ToString(db->symbols()),
            "{del R(B)}");
  ASSERT_EQ(result->translations[0].requirements.size(), 1u);
  EXPECT_EQ(result->translations[0].requirements[0].ToString(db->symbols()),
            "not del Q(B)");
}

// --- Example 5.1: T = {δU_benefit(Dolors)} violates Ic1 --------------------
TEST_P(PaperExamplesTest, Example51IntegrityChecking) {
  auto db = MakeEmploymentDb(simplify());
  ASSERT_TRUE(db->IsConsistent().value());

  auto txn = ParseTransaction(db.get(), "del U_benefit(Dolors)");
  ASSERT_TRUE(txn.ok()) << txn.status();

  auto check = db->CheckIntegrity(*txn);
  ASSERT_TRUE(check.ok()) << check.status();
  EXPECT_TRUE(check->violated) << "Ic1 is violated and T must be rejected";
  ASSERT_EQ(check->violations.size(), 1u);
  EXPECT_EQ(check->violations[0].ToString(db->symbols()), "Ic1(Dolors)");
}

// A transaction that does not violate Ic1 is accepted.
TEST_P(PaperExamplesTest, Example51NonViolatingTransaction) {
  auto db = MakeEmploymentDb(simplify());
  auto txn = ParseTransaction(db.get(),
                              "del U_benefit(Dolors), ins Works(Dolors)");
  ASSERT_TRUE(txn.ok()) << txn.status();
  auto check = db->CheckIntegrity(*txn);
  ASSERT_TRUE(check.ok()) << check.status();
  EXPECT_FALSE(check->violated);
}

// --- Example 5.2: downward δUnemp(Dolors) = δLa(Dolors) | ιWorks(Dolors) ---
TEST_P(PaperExamplesTest, Example52ViewUpdating) {
  auto db = MakeEmploymentDb(simplify());
  auto request = ParseRequest(db.get(), "del Unemp(Dolors)");
  ASSERT_TRUE(request.ok()) << request.status();

  auto result = db->TranslateViewUpdate(*request);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->dnf.ToString(db->symbols()),
            "(del La(Dolors)) | (ins Works(Dolors))");
  ASSERT_EQ(result->translations.size(), 2u);
  EXPECT_EQ(result->translations[0].transaction.ToString(db->symbols()),
            "{del La(Dolors)}");
  EXPECT_EQ(result->translations[1].transaction.ToString(db->symbols()),
            "{ins Works(Dolors)}");
}

// --- Example 5.3: preventing the side effect ιUnemp(Maria) of T={ιLa(Maria)}
TEST_P(PaperExamplesTest, Example53PreventingSideEffects) {
  auto db = MakeEmploymentDb(simplify());
  auto txn = ParseTransaction(db.get(), "ins La(Maria)");
  ASSERT_TRUE(txn.ok()) << txn.status();

  // First confirm T would induce the side effect.
  auto events = db->InducedEvents(*txn);
  ASSERT_TRUE(events.ok()) << events.status();
  SymbolId unemp = db->database().FindPredicate("Unemp").value();
  SymbolId maria = db->symbols().Intern("Maria");
  EXPECT_TRUE(events->ContainsInsert(unemp, {maria}));

  // Downward {ιLa(Maria), ¬ιUnemp(Maria)}: the only resulting transaction is
  // {ιLa(Maria), ιWorks(Maria)}.
  RequestedEvent unwanted;
  unwanted.is_insert = true;
  unwanted.predicate = unemp;
  unwanted.args = {Term::MakeConstant(maria)};
  auto result = db->PreventSideEffects(*txn, {unwanted});
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->translations.size(), 1u);
  EXPECT_EQ(result->translations[0].transaction.ToString(db->symbols()),
            "{ins La(Maria), ins Works(Maria)}");
}

// --- Section 5.2.3: repairing an inconsistent database ---------------------
TEST_P(PaperExamplesTest, RepairInconsistentDatabase) {
  auto db = MakeEmploymentDb(simplify());
  // Make it inconsistent: Dolors loses the benefit.
  ASSERT_TRUE(db->RemoveFact(
                    db->GroundAtom("U_benefit", {"Dolors"}).value())
                  .ok());
  ASSERT_FALSE(db->IsConsistent().value());

  auto result = db->RepairDatabase();
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->translations.empty());
  // Every repair, applied, must restore consistency.
  for (const auto& translation : result->translations) {
    auto restored = db->CheckConsistencyRestored(translation.transaction);
    ASSERT_TRUE(restored.ok()) << restored.status();
    EXPECT_TRUE(restored->restored)
        << "repair " << translation.ToString(db->symbols())
        << " does not restore consistency";
  }
}

// --- Section 5.2.4: integrity maintenance ----------------------------------
TEST_P(PaperExamplesTest, IntegrityMaintenance) {
  auto db = MakeEmploymentDb(simplify());
  auto txn = ParseTransaction(db.get(), "del U_benefit(Dolors)");
  ASSERT_TRUE(txn.ok()) << txn.status();

  auto result = db->MaintainIntegrity(*txn);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_FALSE(result->translations.empty());
  // Each maintained transaction contains the original events and violates
  // nothing.
  SymbolId u_benefit = db->database().FindPredicate("U_benefit").value();
  SymbolId dolors = db->symbols().Intern("Dolors");
  for (const auto& translation : result->translations) {
    EXPECT_TRUE(
        translation.transaction.ContainsDelete(u_benefit, {dolors}));
    auto check = db->CheckIntegrity(translation.transaction);
    ASSERT_TRUE(check.ok()) << check.status();
    EXPECT_FALSE(check->violated)
        << translation.ToString(db->symbols()) << " still violates Ic";
  }
}

// --- Table 4.1 round trip: downward translations satisfy the request -------
TEST_P(PaperExamplesTest, DownwardUpwardRoundTrip) {
  auto db = MakeEmploymentDb(simplify());
  auto request = ParseRequest(db.get(), "del Unemp(Dolors)");
  ASSERT_TRUE(request.ok()) << request.status();
  auto result = db->TranslateViewUpdate(*request);
  ASSERT_TRUE(result.ok()) << result.status();
  SymbolId unemp = db->database().FindPredicate("Unemp").value();
  SymbolId dolors = db->symbols().Intern("Dolors");
  for (const auto& translation : result->translations) {
    auto events = db->InducedEvents(translation.transaction);
    ASSERT_TRUE(events.ok()) << events.status();
    EXPECT_TRUE(events->ContainsDelete(unemp, {dolors}))
        << "translation " << translation.ToString(db->symbols())
        << " does not induce the requested deletion";
  }
}

}  // namespace
}  // namespace deddb
