// Unit tests of the DNF algebra underlying the downward interpretation:
// canonical forms, simplification against the event definitions,
// conjunction/disjunction/negation, subsumption, caps and the approximate
// flag.

#include <gtest/gtest.h>

#include "interp/dnf.h"

namespace deddb {
namespace {

class DnfTest : public ::testing::Test {
 protected:
  SymbolTable symbols_;
  SymbolId q_ = symbols_.Intern("Q");
  SymbolId r_ = symbols_.Intern("R");
  SymbolId a_ = symbols_.Intern("A");
  SymbolId b_ = symbols_.Intern("B");

  BaseEventFact InsQ(SymbolId c) { return BaseEventFact{true, q_, {c}}; }
  BaseEventFact DelQ(SymbolId c) { return BaseEventFact{false, q_, {c}}; }
  BaseEventFact InsR(SymbolId c) { return BaseEventFact{true, r_, {c}}; }
  BaseEventFact DelR(SymbolId c) { return BaseEventFact{false, r_, {c}}; }

  // Current state: Q(A) and R(B) hold — so ins Q(A) / del Q(B) / ins R(B) /
  // del R(A) are impossible events.
  EventPossibleFn Possible() {
    return [this](const BaseEventFact& ev) {
      bool holds = (ev.predicate == q_ && ev.tuple == Tuple{a_}) ||
                   (ev.predicate == r_ && ev.tuple == Tuple{b_});
      return ev.is_insert ? !holds : holds;
    };
  }

  Conjunct Conj(std::vector<EventLiteral> lits) {
    return Conjunct(std::move(lits));
  }
};

TEST_F(DnfTest, TrueAndFalseForms) {
  EXPECT_TRUE(Dnf::False().IsFalse());
  EXPECT_TRUE(Dnf::True().IsTrue());
  EXPECT_EQ(Dnf::False().ToString(symbols_), "false");
  EXPECT_EQ(Dnf::True().ToString(symbols_), "true");
}

TEST_F(DnfTest, ConjunctCanonicalForm) {
  EventLiteral l1{InsQ(b_), true};
  EventLiteral l2{DelR(b_), true};
  Conjunct c({l2, l1, l1});
  EXPECT_EQ(c.size(), 2u);  // deduped
  EXPECT_TRUE(c.Contains(l1));
  EXPECT_TRUE(c.Contains(l2));
  EXPECT_FALSE(c.Contains(EventLiteral{InsQ(b_), false}));
}

TEST_F(DnfTest, SimplifyDropsImpossiblePositive) {
  // ins Q(A) is impossible (Q(A) holds).
  Conjunct c({EventLiteral{InsQ(a_), true}});
  EXPECT_FALSE(c.Simplify(Possible()).has_value());
}

TEST_F(DnfTest, SimplifyDropsVacuousNegative) {
  // not ins Q(A): impossible event, requirement vacuously true.
  Conjunct c({EventLiteral{InsQ(a_), false},
              EventLiteral{InsQ(b_), true}});
  auto simplified = c.Simplify(Possible());
  ASSERT_TRUE(simplified.has_value());
  EXPECT_EQ(simplified->size(), 1u);
}

TEST_F(DnfTest, SimplifyDetectsComplementaryPair) {
  Conjunct c({EventLiteral{InsQ(b_), true}, EventLiteral{InsQ(b_), false}});
  EXPECT_FALSE(c.Simplify(Possible()).has_value());
}

TEST_F(DnfTest, SimplifyDetectsInsAndDelOfSameFact) {
  // ins Q(B) and del Q(B) can't both be valid events of one transition:
  // one of them is impossible in any state.
  Conjunct c({EventLiteral{InsQ(b_), true}, EventLiteral{DelQ(b_), true}});
  EXPECT_FALSE(c.Simplify(Possible()).has_value());
}

TEST_F(DnfTest, AndDistributes) {
  Dnf left = Dnf::Of(InsQ(b_));
  Dnf right;
  right.AddDisjunct(Conj({EventLiteral{DelR(b_), true}}));
  right.AddDisjunct(Conj({EventLiteral{DelQ(a_), true}}));
  auto result = Dnf::And(left, right, Possible(), 100);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 2u);
  EXPECT_EQ(result->ToString(symbols_),
            "(del Q(A) & ins Q(B)) | (del R(B) & ins Q(B))");
}

TEST_F(DnfTest, AndWithTrueAndFalse) {
  Dnf d = Dnf::Of(InsQ(b_));
  EXPECT_EQ(Dnf::And(d, Dnf::True(), Possible(), 10)->ToString(symbols_),
            d.ToString(symbols_));
  EXPECT_TRUE(Dnf::And(d, Dnf::False(), Possible(), 10)->IsFalse());
}

TEST_F(DnfTest, OrDeduplicatesAndSubsumes) {
  Dnf small = Dnf::Of(InsQ(b_));
  Dnf bigger;
  bigger.AddDisjunct(
      Conj({EventLiteral{InsQ(b_), true}, EventLiteral{DelR(b_), true}}));
  auto result = Dnf::Or(small, bigger, Possible(), 10);
  ASSERT_TRUE(result.ok());
  // (ins Q(B)) subsumes (ins Q(B) & del R(B)).
  EXPECT_EQ(result->size(), 1u);
  EXPECT_EQ(result->ToString(symbols_), "(ins Q(B))");
}

TEST_F(DnfTest, NegateSingleConjunct) {
  Dnf d;
  d.AddDisjunct(
      Conj({EventLiteral{InsQ(b_), true}, EventLiteral{DelR(b_), false}}));
  auto negated = Dnf::Negate(d, Possible(), 100);
  ASSERT_TRUE(negated.ok());
  // ¬(ins Q(B) & ¬del R(B)) = ¬ins Q(B) | del R(B); canonical order puts
  // deletion events first.
  EXPECT_EQ(negated->ToString(symbols_),
            "(del R(B)) | (not ins Q(B))");
}

TEST_F(DnfTest, NegateFalseIsTrueAndViceVersa) {
  EXPECT_TRUE(Dnf::Negate(Dnf::False(), Possible(), 10)->IsTrue());
  EXPECT_TRUE(Dnf::Negate(Dnf::True(), Possible(), 10)->IsFalse());
}

TEST_F(DnfTest, NegateOfImpossibleConjunctIsTrue) {
  // del Q(B) is impossible (Q(B) does not hold), so the conjunct
  // {del Q(B), del R(B)} can never occur and its negation is TRUE: the
  // requirement choice ¬del Q(B) is vacuously satisfied.
  Dnf d;
  d.AddDisjunct(
      Conj({EventLiteral{DelQ(b_), true}, EventLiteral{DelR(b_), true}}));
  auto negated = Dnf::Negate(d, Possible(), 100);
  ASSERT_TRUE(negated.ok());
  EXPECT_TRUE(negated->IsTrue());
}

TEST_F(DnfTest, NegateOffersAllRequirementChoices) {
  // Both deletions are possible here (Q(A) and R(B) hold), so the negation
  // keeps both requirement alternatives.
  Dnf d;
  d.AddDisjunct(
      Conj({EventLiteral{DelQ(a_), true}, EventLiteral{DelR(b_), true}}));
  auto negated = Dnf::Negate(d, Possible(), 100);
  ASSERT_TRUE(negated.ok());
  EXPECT_EQ(negated->ToString(symbols_),
            "(not del Q(A)) | (not del R(B))");
}

TEST_F(DnfTest, DoubleNegationOfSimplePositive) {
  Dnf d = Dnf::Of(DelR(b_));
  auto once = Dnf::Negate(d, Possible(), 100);
  ASSERT_TRUE(once.ok());
  auto twice = Dnf::Negate(*once, Possible(), 100);
  ASSERT_TRUE(twice.ok());
  EXPECT_EQ(twice->ToString(symbols_), d.ToString(symbols_));
}

TEST_F(DnfTest, AndNegatedPrunesAgainstContext) {
  // Context requires ins Q(B); negating {ins Q(B) & ¬del R(B)} forces the
  // del R(B) branch (the ¬ins Q(B) choice contradicts the context).
  Dnf context = Dnf::Of(InsQ(b_));
  Dnf violation;
  violation.AddDisjunct(
      Conj({EventLiteral{InsQ(b_), true}, EventLiteral{DelR(b_), false}}));
  auto result = Dnf::AndNegated(context, violation, Possible(), 100);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ToString(symbols_), "(del R(B) & ins Q(B))");
  EXPECT_FALSE(result->approximate());
}

TEST_F(DnfTest, AndNegatedUnsatisfiableFactorYieldsFalse) {
  // The factor's only choice contradicts the context and there is no other.
  Dnf context = Dnf::Of(InsQ(b_));
  Dnf violation;
  violation.AddDisjunct(Conj({EventLiteral{InsQ(b_), true}}));
  auto result = Dnf::AndNegated(context, violation, Possible(), 100);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->IsFalse());
}

TEST_F(DnfTest, CapTriggersMinimalFrontierAndApproximateFlag) {
  // Product of k independent binary factors overflows a tiny cap; the
  // result must stay within the cap and be flagged approximate.
  SymbolTable symbols;
  SymbolId p = symbols.Intern("P");
  EventPossibleFn anything = [](const BaseEventFact&) { return true; };
  Dnf to_negate;
  for (uint32_t i = 0; i < 10; ++i) {
    Conjunct c;
    c.Add(EventLiteral{BaseEventFact{true, p, {i}}, false});
    c.Add(EventLiteral{BaseEventFact{false, p, {i}}, false});
    to_negate.AddDisjunct(std::move(c));
  }
  auto result = Dnf::Negate(to_negate, anything, /*max_disjuncts=*/8);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_LE(result->size(), 8u);
  EXPECT_TRUE(result->approximate());
}

TEST_F(DnfTest, PruneNonMinimalKeepsFrontier) {
  Dnf d;
  d.AddDisjunct(Conj({EventLiteral{InsQ(b_), true}}));
  d.AddDisjunct(
      Conj({EventLiteral{InsQ(b_), true}, EventLiteral{DelR(b_), true}}));
  d.AddDisjunct(Conj({EventLiteral{DelQ(a_), true}}));
  d.PruneNonMinimal();
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.ToString(symbols_), "(del Q(A)) | (ins Q(B))");
}

TEST_F(DnfTest, EventLiteralToString) {
  EventLiteral pos{InsQ(b_), true};
  EventLiteral neg{DelR(a_), false};
  EXPECT_EQ(pos.ToString(symbols_), "ins Q(B)");
  EXPECT_EQ(neg.ToString(symbols_), "not del R(A)");
}

}  // namespace
}  // namespace deddb
