// Perf-C ablation: the evaluation-engine design choices underneath both
// interpretations — (a) semi-naive vs naive fixpoint on a deep transitive
// closure (many rounds, where differential evaluation pays), and (b)
// per-column EDB indexes on vs off on a selective two-way join.

#include <benchmark/benchmark.h>

#include "core/deductive_database.h"
#include "eval/bottom_up.h"
#include "util/strings.h"

namespace deddb {
namespace {

// A chain graph Edge(E0,E1), ..., Edge(E{n-1},En): Path's fixpoint needs
// ~n rounds and naive evaluation re-derives the whole relation each round.
std::unique_ptr<DeductiveDatabase> MakeChain(size_t n) {
  auto db = std::make_unique<DeductiveDatabase>();
  (void)db->DeclareBase("Edge", 2);
  (void)db->DeclareDerived("Path", 2);
  Term x = db->Variable("x");
  Term y = db->Variable("y");
  Term z = db->Variable("z");
  Atom head = db->MakeAtom("Path", {x, y}).value();
  (void)db->AddRule(
      Rule(head, {Literal::Positive(db->MakeAtom("Edge", {x, y}).value())}));
  (void)db->AddRule(
      Rule(head, {Literal::Positive(db->MakeAtom("Path", {x, z}).value()),
                  Literal::Positive(db->MakeAtom("Edge", {z, y}).value())}));
  for (size_t i = 0; i + 1 < n; ++i) {
    (void)db->AddFact(
        db->GroundAtom("Edge", {StrCat("E", i), StrCat("E", i + 1)}).value());
  }
  return db;
}

void RunFixpoint(benchmark::State& state, bool semi_naive) {
  auto db = MakeChain(static_cast<size_t>(state.range(0)));
  FactStoreProvider edb(&db->database().facts());
  EvaluationOptions options;
  options.semi_naive = semi_naive;

  size_t derived = 0;
  for (auto _ : state) {
    BottomUpEvaluator evaluator(db->database().program(), db->symbols(), edb,
                                options);
    auto idb = evaluator.Evaluate();
    if (!idb.ok()) {
      state.SkipWithError(idb.status().ToString().c_str());
      return;
    }
    derived = idb->TotalFacts();
    benchmark::DoNotOptimize(derived);
  }
  state.counters["chain"] = static_cast<double>(state.range(0));
  state.counters["derived_facts"] = static_cast<double>(derived);
}

void BM_SemiNaive(benchmark::State& state) { RunFixpoint(state, true); }
void BM_Naive(benchmark::State& state) { RunFixpoint(state, false); }

BENCHMARK(BM_SemiNaive)->Arg(32)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Naive)->Arg(32)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);

// Selective join J(x,y) <- E(x,z) & F(z,y): with per-column indexes the
// inner lookup is O(matches); without, every outer tuple scans all of F.
std::unique_ptr<DeductiveDatabase> MakeJoin(size_t facts) {
  auto db = std::make_unique<DeductiveDatabase>();
  (void)db->DeclareBase("E", 2);
  (void)db->DeclareBase("F", 2);
  (void)db->DeclareDerived("J", 2);
  Term x = db->Variable("x");
  Term y = db->Variable("y");
  Term z = db->Variable("z");
  (void)db->AddRule(
      Rule(db->MakeAtom("J", {x, y}).value(),
           {Literal::Positive(db->MakeAtom("E", {x, z}).value()),
            Literal::Positive(db->MakeAtom("F", {z, y}).value())}));
  for (size_t i = 0; i < facts; ++i) {
    (void)db->AddFact(
        db->GroundAtom("E", {StrCat("A", i), StrCat("K", i)}).value());
    (void)db->AddFact(
        db->GroundAtom("F", {StrCat("K", i), StrCat("B", i)}).value());
  }
  return db;
}

void RunIndexAblation(benchmark::State& state, bool indexed) {
  auto db = MakeJoin(static_cast<size_t>(state.range(0)));
  // Copy the EDB into a store with the chosen index mode.
  FactStore store(indexed);
  db->database().facts().ForEach(
      [&](SymbolId pred, const Tuple& t) { store.Add(pred, t); });
  FactStoreProvider edb(&store);

  size_t derived = 0;
  for (auto _ : state) {
    BottomUpEvaluator evaluator(db->database().program(), db->symbols(), edb,
                                EvaluationOptions{});
    auto idb = evaluator.Evaluate();
    if (!idb.ok()) {
      state.SkipWithError(idb.status().ToString().c_str());
      return;
    }
    derived = idb->TotalFacts();
    benchmark::DoNotOptimize(derived);
  }
  state.counters["edb_facts"] = static_cast<double>(store.TotalFacts());
  state.counters["derived_facts"] = static_cast<double>(derived);
}

void BM_IndexedEdb(benchmark::State& state) { RunIndexAblation(state, true); }
void BM_UnindexedEdb(benchmark::State& state) {
  RunIndexAblation(state, false);
}

BENCHMARK(BM_IndexedEdb)->Arg(1000)->Arg(4000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_UnindexedEdb)->Arg(1000)->Arg(4000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace deddb

BENCHMARK_MAIN();
