// Perf-D ablation: the event-rule simplifications of §3.3 ([Oli91, UO92]:
// "these rules can be intensively simplified") on vs off, measured on the
// upward interpretation. Unsimplified event rules evaluate all 2ⁿ transition
// disjuncts and scan P⁰ for deletion candidates; the simplified compilation
// keeps only event-bearing insertion disjuncts and guards deletions with
// delta candidates, so its cost tracks the transaction instead of the
// database.

#include <benchmark/benchmark.h>

#include "core/deductive_database.h"
#include "workload/employment.h"

namespace deddb {
namespace {

void RunSimplifyAblation(benchmark::State& state, bool simplify) {
  workload::EmploymentConfig config;
  config.people = static_cast<size_t>(state.range(0));
  config.simplify = simplify;
  config.consistent = false;
  auto db = workload::MakeEmploymentDatabase(config);
  if (!db.ok()) {
    state.SkipWithError(db.status().ToString().c_str());
    return;
  }
  auto txn = workload::RandomEmploymentTransaction(db->get(), config.people,
                                                   8, /*seed=*/23);
  if (!txn.ok()) {
    state.SkipWithError(txn.status().ToString().c_str());
    return;
  }
  auto compiled = (*db)->Compiled();
  if (!compiled.ok()) {
    state.SkipWithError(compiled.status().ToString().c_str());
    return;
  }

  size_t events = 0;
  for (auto _ : state) {
    UpwardInterpreter upward(&(*db)->database(), *compiled, UpwardOptions{});
    auto result = upward.InducedEvents(*txn);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    events = result->size();
    benchmark::DoNotOptimize(events);
  }
  state.counters["people"] = static_cast<double>(config.people);
  state.counters["induced_events"] = static_cast<double>(events);
  state.counters["transition_rules"] =
      static_cast<double>((*compiled)->transition.size());
}

void BM_Simplified(benchmark::State& state) {
  RunSimplifyAblation(state, true);
}
void BM_Unsimplified(benchmark::State& state) {
  RunSimplifyAblation(state, false);
}

BENCHMARK(BM_Simplified)
    ->Arg(100)->Arg(1000)->Arg(5000)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Unsimplified)
    ->Arg(100)->Arg(1000)->Arg(5000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace deddb

BENCHMARK_MAIN();
