// Perf-B: downward translation cost vs derivation depth and disjunct
// fan-out. Each extra tower layer with negation doubles the alternatives a
// request can be satisfied through; the benchmark shows translation
// enumeration growing with the DNF it must build, and the effect of the
// disjunct cap.

#include <benchmark/benchmark.h>

#include "core/deductive_database.h"
#include "workload/towers.h"

namespace deddb {
namespace {

void RunDownward(benchmark::State& state, bool with_negation) {
  workload::TowerConfig config;
  config.depth = static_cast<size_t>(state.range(0));
  config.base_facts = static_cast<size_t>(state.range(1));
  config.with_negation = with_negation;
  auto db = workload::MakeTowerDatabase(config);
  if (!db.ok()) {
    state.SkipWithError(db.status().ToString().c_str());
    return;
  }
  SymbolId top =
      (*db)->database().FindPredicate(workload::TowerLayerName(config.depth))
          .value();
  UpdateRequest request;
  RequestedEvent event;
  event.is_insert = true;
  event.predicate = top;
  event.args = {
      (*db)->Constant(workload::TowerElementName(config.base_facts + 1))};
  request.events.push_back(event);

  size_t translations = 0;
  size_t disjuncts = 0;
  for (auto _ : state) {
    auto result = (*db)->TranslateViewUpdate(request);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    translations = result->translations.size();
    disjuncts = result->dnf.size();
    benchmark::DoNotOptimize(translations);
  }
  state.counters["depth"] = static_cast<double>(config.depth);
  state.counters["translations"] = static_cast<double>(translations);
  state.counters["dnf_disjuncts"] = static_cast<double>(disjuncts);
}

void BM_ConjunctiveTower(benchmark::State& state) {
  RunDownward(state, /*with_negation=*/false);
}
void BM_BranchingTower(benchmark::State& state) {
  RunDownward(state, /*with_negation=*/true);
}

BENCHMARK(BM_ConjunctiveTower)
    ->ArgsProduct({{1, 2, 4, 6, 8}, {100}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_BranchingTower)
    ->ArgsProduct({{1, 2, 4, 6, 8}, {100}})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace deddb

BENCHMARK_MAIN();
