// Parallel bottom-up scaling: the same fixpoint evaluated with the serial
// loop (num_threads = 0) and with 1/2/4/8 worker threads, on two workloads —
// a deep derivation tower (non-recursive strata, parallelism comes from
// slicing each rule's leading literal) and a recursive random program
// (parallelism from rule × delta-slice work items). The num_threads = 1
// configuration isolates the snapshot-round overhead from the win of adding
// workers; speedups require actual cores (see EXPERIMENTS.md for caveats).

#include <benchmark/benchmark.h>

#include "core/deductive_database.h"
#include "eval/bottom_up.h"
#include "workload/random_programs.h"
#include "workload/towers.h"

namespace deddb {
namespace {

using workload::MakeRandomDatabase;
using workload::MakeTowerDatabase;
using workload::RandomProgramConfig;
using workload::TowerConfig;

const DeductiveDatabase* TowerWorkload() {
  static const DeductiveDatabase* db = [] {
    TowerConfig config;
    config.depth = 6;
    config.base_facts = 20000;
    auto result = MakeTowerDatabase(config);
    return result.ok() ? result->release() : nullptr;
  }();
  return db;
}

const DeductiveDatabase* RandomWorkload() {
  static const DeductiveDatabase* db = [] {
    RandomProgramConfig config;
    config.seed = 11;
    config.allow_recursion = true;
    config.derived_predicates = 10;
    config.facts_per_base = 4000;
    config.constants = 400;
    auto result = MakeRandomDatabase(config);
    return result.ok() ? result->release() : nullptr;
  }();
  return db;
}

void RunScaling(benchmark::State& state, const DeductiveDatabase* db) {
  if (db == nullptr) {
    state.SkipWithError("workload construction failed");
    return;
  }
  FactStoreProvider edb(&db->database().facts());
  EvaluationOptions options;
  options.num_threads = static_cast<size_t>(state.range(0));
  size_t derived = 0;
  for (auto _ : state) {
    BottomUpEvaluator evaluator(db->database().program(), db->symbols(), edb,
                                options);
    auto idb = evaluator.Evaluate();
    if (!idb.ok()) {
      state.SkipWithError(idb.status().ToString().c_str());
      return;
    }
    derived = idb->TotalFacts();
    benchmark::DoNotOptimize(derived);
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
  state.counters["derived_facts"] = static_cast<double>(derived);
}

void BM_TowerScaling(benchmark::State& state) {
  RunScaling(state, TowerWorkload());
}
void BM_RandomProgramScaling(benchmark::State& state) {
  RunScaling(state, RandomWorkload());
}

// Arg = num_threads; 0 is the serial oracle loop.
BENCHMARK(BM_TowerScaling)
    ->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_RandomProgramScaling)
    ->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
}  // namespace deddb

BENCHMARK_MAIN();
