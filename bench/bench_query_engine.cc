// Perf-F: query-engine strategy comparison — the machinery both
// interpretations stand on. Ground point queries and existence checks over
// the employment database, answered by (a) demand-driven materialization,
// (b) memoized top-down resolution, and (c) lazy first-solution resolution.
// Shapes: materialization pays O(DB) once and O(1) after; top-down point
// queries are goal-directed; lazy existence stops at the first witness.

#include <benchmark/benchmark.h>

#include "eval/query_engine.h"
#include "workload/employment.h"

namespace deddb {
namespace {

struct Setup {
  std::unique_ptr<DeductiveDatabase> db;
  SymbolId unemp;
  Atom goal;

  static Setup Make(size_t people) {
    workload::EmploymentConfig config;
    config.people = people;
    auto db = workload::MakeEmploymentDatabase(config).value();
    SymbolId unemp = db->database().FindPredicate("Unemp").value();
    SymbolId person = db->symbols().Intern(workload::PersonName(people / 2));
    return Setup{std::move(db), unemp,
                 Atom(unemp, {Term::MakeConstant(person)})};
  }
};

void BM_MaterializedPointQuery(benchmark::State& state) {
  Setup setup = Setup::Make(static_cast<size_t>(state.range(0)));
  FactStoreProvider edb(&setup.db->database().facts());
  for (auto _ : state) {
    // Fresh engine per iteration: measures the full materialize-then-lookup
    // cost a one-shot caller pays.
    QueryEngine engine(setup.db->database().program(), setup.db->symbols(),
                       edb);
    auto result = engine.SolveMaterialized(setup.goal);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result->size());
  }
  state.counters["people"] = static_cast<double>(state.range(0));
}

void BM_TopDownPointQuery(benchmark::State& state) {
  Setup setup = Setup::Make(static_cast<size_t>(state.range(0)));
  FactStoreProvider edb(&setup.db->database().facts());
  for (auto _ : state) {
    QueryEngine engine(setup.db->database().program(), setup.db->symbols(),
                       edb);
    auto result = engine.SolveTopDown(setup.goal);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result->size());
  }
  state.counters["people"] = static_cast<double>(state.range(0));
}

void BM_LazyExistence(benchmark::State& state) {
  Setup setup = Setup::Make(static_cast<size_t>(state.range(0)));
  FactStoreProvider edb(&setup.db->database().facts());
  // Open goal: "is anyone unemployed?" — lazy stops at the first witness.
  Atom open_goal(setup.unemp, {Term::MakeVariable(0x7300000)});
  for (auto _ : state) {
    QueryEngine engine(setup.db->database().program(), setup.db->symbols(),
                       edb);
    auto result = engine.Exists(open_goal);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(*result);
  }
  state.counters["people"] = static_cast<double>(state.range(0));
}

void BM_MaterializedOpenQuery(benchmark::State& state) {
  Setup setup = Setup::Make(static_cast<size_t>(state.range(0)));
  FactStoreProvider edb(&setup.db->database().facts());
  Atom open_goal(setup.unemp, {Term::MakeVariable(0x7300001)});
  for (auto _ : state) {
    QueryEngine engine(setup.db->database().program(), setup.db->symbols(),
                       edb);
    auto result = engine.SolveMaterialized(open_goal);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result->size());
  }
  state.counters["people"] = static_cast<double>(state.range(0));
}

BENCHMARK(BM_MaterializedPointQuery)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_TopDownPointQuery)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_LazyExistence)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MaterializedOpenQuery)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace deddb

BENCHMARK_MAIN();
