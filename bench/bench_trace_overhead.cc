// Perf-I: overhead of the observability layer. Disabled (no ObsContext —
// every instrumentation site reduces to a null-pointer test) must stay
// within ~2% of the un-instrumented baseline rows recorded before the obs
// layer existed; the enabled rows quantify the full cost of span + metric
// recording for the same workloads. Mirrors bench_guard_overhead's
// armed-but-idle methodology.

#include <benchmark/benchmark.h>

#include "core/deductive_database.h"
#include "eval/bottom_up.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parser/parser.h"
#include "workload/towers.h"

namespace deddb {
namespace {

// Deep transitive closure: many rounds — the eval/stratum/round spans and
// eval.* metric flushes dominate the instrumented cost.
void RunChainFixpoint(benchmark::State& state, bool traced,
                      size_t num_threads) {
  auto db = std::make_unique<DeductiveDatabase>();
  std::string source = "base Edge/2. derived Path/2.\n"
                       "Path(x, y) <- Edge(x, y).\n"
                       "Path(x, y) <- Path(x, z) & Edge(z, y).\n";
  size_t n = static_cast<size_t>(state.range(0));
  for (size_t i = 0; i + 1 < n; ++i) {
    source += "Edge(E" + std::to_string(i) + ", E" + std::to_string(i + 1) +
              ").\n";
  }
  if (!LoadProgram(db.get(), source).ok()) {
    state.SkipWithError("load failed");
    return;
  }
  FactStoreProvider edb(&db->database().facts());
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  EvaluationOptions options;
  options.num_threads = num_threads;
  if (traced) options.obs = obs::ObsContext{&tracer, &metrics};

  for (auto _ : state) {
    tracer.Clear();
    BottomUpEvaluator evaluator(db->database().program(), db->symbols(), edb,
                                options);
    auto idb = evaluator.Evaluate();
    if (!idb.ok()) {
      state.SkipWithError(idb.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(idb->TotalFacts());
  }
  state.counters["chain"] = static_cast<double>(n);
  state.counters["spans"] = static_cast<double>(tracer.size());
}

void BM_ChainDisabled(benchmark::State& state) {
  RunChainFixpoint(state, /*traced=*/false, /*num_threads=*/0);
}
void BM_ChainTraced(benchmark::State& state) {
  RunChainFixpoint(state, /*traced=*/true, /*num_threads=*/0);
}

BENCHMARK(BM_ChainDisabled)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ChainTraced)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);

// Downward translation on a negation tower: the down.event/down.derived
// spans and the dnf.* per-op metric flushes dominate.
void RunTowerDownward(benchmark::State& state, bool traced) {
  workload::TowerConfig config;
  config.depth = static_cast<size_t>(state.range(0));
  config.base_facts = 4;
  config.with_negation = true;
  auto db = MakeTowerDatabase(config);
  if (!db.ok()) {
    state.SkipWithError(db.status().ToString().c_str());
    return;
  }
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  if (traced) (*db)->set_observability(obs::ObsContext{&tracer, &metrics});
  auto request = ParseRequest(
      db->get(), "del " + workload::TowerLayerName(config.depth) + "(" +
                     workload::TowerElementName(0) + ")");
  if (!request.ok()) {
    state.SkipWithError(request.status().ToString().c_str());
    return;
  }

  for (auto _ : state) {
    tracer.Clear();
    auto result = (*db)->TranslateViewUpdate(*request);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result->dnf.size());
  }
  state.counters["depth"] = static_cast<double>(config.depth);
  state.counters["spans"] = static_cast<double>(tracer.size());
}

void BM_DownwardDisabled(benchmark::State& state) {
  RunTowerDownward(state, /*traced=*/false);
}
void BM_DownwardTraced(benchmark::State& state) {
  RunTowerDownward(state, /*traced=*/true);
}

BENCHMARK(BM_DownwardDisabled)->Arg(8)->Arg(10)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DownwardTraced)->Arg(8)->Arg(10)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace deddb

BENCHMARK_MAIN();
