// Perf-N: what the access-path layer and join planner buy (DESIGN.md §6e).
// Three workloads, each timed under the planned engine and the naive
// nested-loop reference engine (identical fixpoints — the differential
// oracle's guarantee — so the ratio is pure access-path cost):
//
//   tc_chain          deep transitive closure; semi-naive delta leads and
//                     Edge is probed through its column index each round.
//   selective_join    D(z) <- B(x, y) & E(x, y, z) with |E| >> |B|; the
//                     advisor's composite index on E(0,1) turns the inner
//                     literal into a bucket probe.
//   upward_recompute  the Perf-A headline cell (employment, 10k people,
//                     txn 256, UpwardStrategy::kRecompute) — absolute time
//                     only, tracked against the 5x-vs-seed target.
//
// Rounds alternate planned/naive back to back to cancel machine drift.
// Written to $DEDDB_BENCH_JSON_DIR (default: cwd)/BENCH_join.json.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/deductive_database.h"
#include "eval/bottom_up.h"
#include "util/strings.h"
#include "workload/employment.h"

namespace deddb {
namespace {

using Clock = std::chrono::steady_clock;

double MicrosSince(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

// Chain graph Edge(E0,E1) ... Edge(E{n-1},En) with the usual Path rules.
std::unique_ptr<DeductiveDatabase> MakeChain(size_t n) {
  auto db = std::make_unique<DeductiveDatabase>();
  (void)db->DeclareBase("Edge", 2);
  (void)db->DeclareDerived("Path", 2);
  Term x = db->Variable("x");
  Term y = db->Variable("y");
  Term z = db->Variable("z");
  Atom head = db->MakeAtom("Path", {x, y}).value();
  (void)db->AddRule(
      Rule(head, {Literal::Positive(db->MakeAtom("Edge", {x, y}).value())}));
  (void)db->AddRule(
      Rule(head, {Literal::Positive(db->MakeAtom("Path", {x, z}).value()),
                  Literal::Positive(db->MakeAtom("Edge", {z, y}).value())}));
  for (size_t i = 0; i + 1 < n; ++i) {
    (void)db->AddFact(
        db->GroundAtom("Edge", {StrCat("E", i), StrCat("E", i + 1)}).value());
  }
  return db;
}

// |B| = 64 pairs, |E| = n triples over a pool of sqrt-ish constants; the
// join is selective (few (x, y) pairs of E match B) so the composite probe
// touches a tiny fraction of E.
std::unique_ptr<DeductiveDatabase> MakeSelective(size_t n) {
  auto db = std::make_unique<DeductiveDatabase>();
  (void)db->DeclareBase("B", 2);
  (void)db->DeclareBase("E", 3);
  (void)db->DeclareDerived("D", 1);
  Term x = db->Variable("x");
  Term y = db->Variable("y");
  Term z = db->Variable("z");
  Atom head = db->MakeAtom("D", {z}).value();
  (void)db->AddRule(
      Rule(head, {Literal::Positive(db->MakeAtom("B", {x, y}).value()),
                  Literal::Positive(db->MakeAtom("E", {x, y, z}).value())}));
  const size_t pool = 128;
  for (size_t i = 0; i < 64; ++i) {
    (void)db->AddFact(
        db->GroundAtom("B", {StrCat("K", i * 7 % pool),
                             StrCat("K", i * 13 % pool)})
            .value());
  }
  for (size_t i = 0; i < n; ++i) {
    (void)db->AddFact(db->GroundAtom("E", {StrCat("K", i % pool),
                                           StrCat("K", (i / pool) % pool),
                                           StrCat("K", i % 97)})
                          .value());
  }
  return db;
}

// One timed Evaluate() under `strategy`; returns µs and checks the result.
double RunEval(const DeductiveDatabase& db, JoinStrategy strategy,
               size_t* derived) {
  FactStoreProvider edb(&db.database().facts());
  EvaluationOptions options;
  options.join_strategy = strategy;
  BottomUpEvaluator evaluator(db.database().program(), db.symbols(), edb,
                              options);
  Clock::time_point start = Clock::now();
  auto idb = evaluator.Evaluate();
  double us = MicrosSince(start);
  if (!idb.ok()) {
    std::fprintf(stderr, "eval failed: %s\n",
                 idb.status().ToString().c_str());
    std::exit(1);
  }
  *derived = idb->TotalFacts();
  return us;
}

struct Row {
  std::string workload;
  size_t size = 0;
  double planned_us = 0;
  double naive_us = 0;
  size_t derived = 0;
  double speedup() const { return naive_us / planned_us; }
};

Row Compare(const std::string& workload, const DeductiveDatabase& db,
            size_t size, int rounds) {
  Row row;
  row.workload = workload;
  row.size = size;
  size_t derived_planned = 0;
  size_t derived_naive = 0;
  // Warm both paths (symbol interning, lazy strata), then alternate.
  (void)RunEval(db, JoinStrategy::kPlanned, &derived_planned);
  (void)RunEval(db, JoinStrategy::kNaiveNestedLoop, &derived_naive);
  for (int i = 0; i < rounds; ++i) {
    row.planned_us += RunEval(db, JoinStrategy::kPlanned, &derived_planned);
    row.naive_us +=
        RunEval(db, JoinStrategy::kNaiveNestedLoop, &derived_naive);
  }
  row.planned_us /= rounds;
  row.naive_us /= rounds;
  if (derived_planned != derived_naive) {
    std::fprintf(stderr, "%s: engines disagree (%zu vs %zu facts)\n",
                 workload.c_str(), derived_planned, derived_naive);
    std::exit(1);
  }
  row.derived = derived_planned;
  return row;
}

// The Perf-A headline cell, absolute: full recomputation of the employment
// IDB for a size-256 transaction at 10k people.
double RecomputeHeadlineUs() {
  workload::EmploymentConfig config;
  config.people = 10000;
  config.consistent = false;
  auto db = workload::MakeEmploymentDatabase(config);
  if (!db.ok()) return -1;
  auto txn = workload::RandomEmploymentTransaction(db->get(), config.people,
                                                   256, /*seed=*/99);
  if (!txn.ok()) return -1;
  auto compiled = (*db)->Compiled();
  if (!compiled.ok()) return -1;
  UpwardOptions options;
  options.strategy = UpwardStrategy::kRecompute;
  double best = -1;
  for (int i = 0; i < 5; ++i) {
    UpwardInterpreter upward(&(*db)->database(), *compiled, options);
    Clock::time_point start = Clock::now();
    auto result = upward.InducedEvents(*txn);
    double us = MicrosSince(start);
    if (!result.ok()) return -1;
    if (best < 0 || us < best) best = us;
  }
  return best;
}

}  // namespace
}  // namespace deddb

int main() {
  using deddb::Row;
  std::printf("Join planner vs naive nested loops (identical fixpoints)\n");
  std::printf("%-16s %8s %12s %12s %9s %9s\n", "workload", "size",
              "planned_us", "naive_us", "speedup", "derived");

  std::vector<Row> rows;
  for (size_t n : {64, 128, 256}) {
    auto db = deddb::MakeChain(n);
    rows.push_back(deddb::Compare("tc_chain", *db, n, /*rounds=*/3));
  }
  for (size_t n : {1000, 10000, 50000}) {
    auto db = deddb::MakeSelective(n);
    rows.push_back(deddb::Compare("selective_join", *db, n, /*rounds=*/3));
  }
  for (const Row& row : rows) {
    std::printf("%-16s %8zu %12.0f %12.0f %8.1fx %9zu\n",
                row.workload.c_str(), row.size, row.planned_us, row.naive_us,
                row.speedup(), row.derived);
  }
  double headline = deddb::RecomputeHeadlineUs();
  std::printf("upward_recompute people=10000 txn=256: %.0f us "
              "(5x-vs-seed target: <= 4566 us)\n",
              headline);

  const char* json_dir = std::getenv("DEDDB_BENCH_JSON_DIR");
  std::string json_path = deddb::StrCat(
      json_dir != nullptr ? json_dir : ".", "/BENCH_join.json");
  std::string out = deddb::StrCat(
      "{\"bench\":\"join_planner\",\"seed_recompute_10000_256_us\":22828,"
      "\"recompute_10000_256_us\":", headline, ",\"rows\":[");
  bool first = true;
  for (const Row& row : rows) {
    if (!first) out += ",";
    first = false;
    out += deddb::StrCat("{\"workload\":\"", row.workload,
                         "\",\"size\":", row.size,
                         ",\"planned_us\":", row.planned_us,
                         ",\"naive_us\":", row.naive_us,
                         ",\"speedup\":", row.speedup(),
                         ",\"derived_facts\":", row.derived, "}");
  }
  out += "]}\n";
  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::printf("could not write %s\n", json_path.c_str());
    return 1;
  }
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  std::printf("JSON report: %s\n", json_path.c_str());
  return 0;
}
