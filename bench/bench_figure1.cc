// Figure-1 benchmark: the cost of traversing the base↔derived gap in each
// direction, as a function of derivation depth. The paper's introductory
// figure presents upward problems (base -> derived: compute induced changes)
// and downward problems (derived -> base: compute satisfying transactions)
// as the two directions of one framework; this benchmark measures both on
// view towers of increasing depth.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "core/deductive_database.h"
#include "obs/metrics.h"
#include "util/strings.h"
#include "workload/towers.h"

namespace deddb {
namespace {

// Shared by every benchmark in this binary; dumped to BENCH_figure1.json by
// the custom main below. Counter values depend on iteration counts, but the
// per-call structure (e.g. rounds per eval) is what the report is for.
obs::MetricsRegistry& GlobalMetrics() {
  static auto* metrics = new obs::MetricsRegistry();
  return *metrics;
}

void BM_UpwardByDepth(benchmark::State& state) {
  workload::TowerConfig config;
  config.depth = static_cast<size_t>(state.range(0));
  config.base_facts = 200;
  auto db = workload::MakeTowerDatabase(config);
  if (!db.ok()) {
    state.SkipWithError(db.status().ToString().c_str());
    return;
  }
  (*db)->set_observability(obs::ObsContext{nullptr, &GlobalMetrics()});
  // One base event at the bottom of the tower; its effects ripple upward.
  Transaction txn;
  SymbolId b0 = (*db)->database().FindPredicate("B0").value();
  SymbolId elem = (*db)->symbols().Intern(workload::TowerElementName(0));
  (void)txn.AddDelete(b0, {elem});

  size_t events = 0;
  for (auto _ : state) {
    auto result = (*db)->InducedEvents(txn);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    events = result->size();
    benchmark::DoNotOptimize(events);
  }
  state.counters["depth"] = static_cast<double>(config.depth);
  state.counters["induced_events"] = static_cast<double>(events);
}
BENCHMARK(BM_UpwardByDepth)->DenseRange(1, 10, 1)->Unit(benchmark::kMicrosecond);

void BM_DownwardByDepth(benchmark::State& state) {
  workload::TowerConfig config;
  config.depth = static_cast<size_t>(state.range(0));
  config.base_facts = 200;
  auto db = workload::MakeTowerDatabase(config);
  if (!db.ok()) {
    state.SkipWithError(db.status().ToString().c_str());
    return;
  }
  (*db)->set_observability(obs::ObsContext{nullptr, &GlobalMetrics()});
  // Request an insertion at the top of the tower for an element that
  // currently satisfies no layer gate: the request must be translated all
  // the way down.
  SymbolId top =
      (*db)->database().FindPredicate(workload::TowerLayerName(config.depth))
          .value();
  UpdateRequest request;
  RequestedEvent event;
  event.is_insert = true;
  event.predicate = top;
  event.args = {
      (*db)->Constant(workload::TowerElementName(config.base_facts + 1))};
  request.events.push_back(event);

  size_t translations = 0;
  for (auto _ : state) {
    auto result = (*db)->TranslateViewUpdate(request);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    translations = result->translations.size();
    benchmark::DoNotOptimize(translations);
  }
  state.counters["depth"] = static_cast<double>(config.depth);
  state.counters["translations"] = static_cast<double>(translations);
}
BENCHMARK(BM_DownwardByDepth)->DenseRange(1, 10, 1)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace deddb

// Custom main: run the benchmarks, then dump the accumulated metrics as
// $DEDDB_BENCH_JSON_DIR (default: cwd)/BENCH_figure1.json.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  const char* dir = std::getenv("DEDDB_BENCH_JSON_DIR");
  std::string path =
      deddb::StrCat(dir != nullptr ? dir : ".", "/BENCH_figure1.json");
  std::string out = deddb::StrCat("{\"bench\":\"figure1\",\"metrics\":",
                                  deddb::GlobalMetrics().ToJson(), "}\n");
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::printf("could not write %s\n", path.c_str());
    return 1;
  }
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  std::printf("JSON report: %s\n", path.c_str());
  return 0;
}
