// Perf-L: sustained request throughput of the service layer (DESIGN.md
// §10). N concurrent clients issue an OLTP-shaped mix — 7 derived point
// queries per durable write — over the in-process loopback against a
// persistent database, so every acknowledged write has been committed by
// the server's single writer thread through the WAL. The measured number is
// end-to-end QPS: encode, frame, admission, session pinning, evaluation,
// and the reply trip all included.
//
// Plain report binary (like bench_concurrent_reads): prints a table and
// writes $DEDDB_BENCH_JSON_DIR (default: cwd)/BENCH_server.json.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/deductive_database.h"
#include "obs/json.h"
#include "server/client.h"
#include "server/server.h"
#include "server/transport.h"
#include "util/strings.h"

using namespace deddb;          // NOLINT — report binary brevity
using namespace deddb::server;  // NOLINT

namespace {

using Clock = std::chrono::steady_clock;

constexpr int kNumConstants = 48;
constexpr int kReadsPerWrite = 7;
constexpr auto kRunFor = std::chrono::milliseconds(400);

struct Row {
  int clients = 0;
  uint64_t requests = 0;
  uint64_t reads = 0;
  uint64_t writes = 0;
  double seconds = 0;
  double qps = 0;
  double read_qps = 0;
  double write_qps = 0;
};

void Check(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "bench failed: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

std::unique_ptr<DeductiveDatabase> BuildDatabase(const std::string& dir) {
  auto opened = DeductiveDatabase::OpenPersistent(dir);
  Check(opened.status());
  std::unique_ptr<DeductiveDatabase> db = std::move(*opened);
  Check(db->DeclareBase("Q", 1).status());
  Check(db->DeclareBase("R", 1).status());
  Check(db->DeclareView("P", 1).status());
  Term x = db->Variable("x");
  Check(db->AddRule(Rule(db->MakeAtom("P", {x}).value(),
                         {Literal::Positive(db->MakeAtom("Q", {x}).value()),
                          Literal::Negative(db->MakeAtom("R", {x}).value())})));
  for (int i = 0; i < kNumConstants; ++i) {
    Check(db->AddFact(db->GroundAtom("Q", {StrCat("c", i)}).value()));
    if (i % 3 == 0) {
      Check(db->AddFact(db->GroundAtom("R", {StrCat("c", i)}).value()));
    }
  }
  Check(db->Checkpoint());
  return db;
}

Row RunOne(int clients) {
  Row row;
  row.clients = clients;

  char tmpl[] = "/tmp/srvbenchXXXXXX";
  if (::mkdtemp(tmpl) == nullptr) {
    std::perror("mkdtemp");
    std::exit(1);
  }
  std::string dir = tmpl;
  std::unique_ptr<DeductiveDatabase> db = BuildDatabase(dir);

  LoopbackNetwork network;
  Server server(db.get());
  Check(server.Serve(network.TakeListener()));

  std::atomic<uint64_t> total_reads{0};
  std::atomic<uint64_t> total_writes{0};
  std::atomic<uint64_t> sink{0};

  auto start = Clock::now();
  std::vector<std::thread> workers;
  workers.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      auto conn = network.Connect();
      Check(conn.status());
      Client client(std::move(*conn));
      uint64_t reads = 0;
      uint64_t writes = 0;
      uint64_t local_sink = 0;
      // Each client toggles its own private R constant so concurrent writes
      // never conflict; validity rejections would not count as throughput.
      bool in_r = false;  // R("w<c>") starts absent, so insert first
      uint64_t op = 0;
      auto deadline = start + kRunFor;
      while (Clock::now() < deadline) {
        if (op % (kReadsPerWrite + 1) == kReadsPerWrite) {
          Transaction txn;
          Atom fact = client.GroundAtom("R", {StrCat("w", c)});
          Check((in_r ? txn.AddDelete(fact) : txn.AddInsert(fact)));
          in_r = !in_r;
          auto reply = client.Apply(txn);
          Check(reply.status());
          ++writes;
        } else {
          Atom pattern =
              client.GroundAtom("P", {StrCat("c", op % kNumConstants)});
          auto reply = client.Query({pattern});
          Check(reply.status());
          local_sink += reply->answers[0].size();
          ++reads;
        }
        ++op;
      }
      total_reads.fetch_add(reads, std::memory_order_relaxed);
      total_writes.fetch_add(writes, std::memory_order_relaxed);
      sink.fetch_add(local_sink, std::memory_order_relaxed);
    });
  }
  for (std::thread& worker : workers) worker.join();
  auto end = Clock::now();

  server.Stop();
  Check(db->Close());
  db.reset();
  std::string cmd = StrCat("rm -rf ", dir);
  if (std::system(cmd.c_str()) != 0) std::exit(1);

  row.reads = total_reads.load();
  row.writes = total_writes.load();
  row.requests = row.reads + row.writes;
  row.seconds = std::chrono::duration<double>(end - start).count();
  row.qps = row.requests / row.seconds;
  row.read_qps = row.reads / row.seconds;
  row.write_qps = row.writes / row.seconds;
  return row;
}

}  // namespace

int main() {
  std::printf(
      "Service-layer QPS: concurrent clients over loopback against a durable "
      "writer\n(%d constants, %d reads per write, %lld ms per config, %u "
      "hardware threads)\n",
      kNumConstants, kReadsPerWrite,
      static_cast<long long>(kRunFor.count()),
      std::thread::hardware_concurrency());
  std::printf("%8s %10s %10s %10s %10s %12s %12s\n", "clients", "requests",
              "seconds", "qps", "reads/s", "writes/s", "sustained");

  std::vector<Row> rows;
  for (int clients : {1, 2, 4}) {
    Row row = RunOne(clients);
    std::printf("%8d %10llu %10.3f %10.0f %10.0f %12.0f %12s\n", row.clients,
                static_cast<unsigned long long>(row.requests), row.seconds,
                row.qps, row.read_qps, row.write_qps, "yes");
    rows.push_back(row);
  }

  const char* json_dir = std::getenv("DEDDB_BENCH_JSON_DIR");
  std::string json_path =
      StrCat(json_dir != nullptr ? json_dir : ".", "/BENCH_server.json");
  std::string out =
      StrCat("{\"bench\":\"server_qps\",\"constants\":", kNumConstants,
             ",\"reads_per_write\":", kReadsPerWrite,
             ",\"hardware_threads\":", std::thread::hardware_concurrency(),
             ",\"rows\":[");
  bool first = true;
  for (const Row& row : rows) {
    if (!first) out += ",";
    first = false;
    out += StrCat("{\"clients\":", row.clients,
                  ",\"requests\":", row.requests, ",\"reads\":", row.reads,
                  ",\"writes\":", row.writes, ",\"seconds\":", row.seconds,
                  ",\"qps\":", row.qps, ",\"read_qps\":", row.read_qps,
                  ",\"write_qps\":", row.write_qps, "}");
  }
  out += "]}\n";
  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::printf("could not write %s\n", json_path.c_str());
    return 1;
  }
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  std::printf("JSON report: %s\n", json_path.c_str());
  return 0;
}
