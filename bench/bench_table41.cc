// Regenerates Table 4.1 of the paper: the classification of deductive
// database updating problems by {upward, downward} × {ιP, δP, {T,¬ιP},
// {T,¬δP}} × {View, Ic, Cond}. Every cell is *executed* against the
// employment database of §5.1 (scaled), demonstrating that one framework —
// the event rules and their two interpretations — specifies and solves all
// of them. Prints the populated matrix with each cell's outcome and timing.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/deductive_database.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "parser/parser.h"
#include "util/strings.h"
#include "workload/employment.h"

using namespace deddb;  // NOLINT — report binary brevity

namespace {

using Clock = std::chrono::steady_clock;

struct Cell {
  std::string problem;
  std::string outcome;
  double micros = 0;
};

Cell RunCell(const std::string& problem,
             const std::function<Result<std::string>()>& body) {
  Cell cell;
  cell.problem = problem;
  auto start = Clock::now();
  Result<std::string> outcome = body();
  auto end = Clock::now();
  cell.micros =
      std::chrono::duration_cast<std::chrono::microseconds>(end - start)
          .count();
  cell.outcome = outcome.ok() ? *outcome : outcome.status().ToString();
  return cell;
}

void PrintSection(const char* title, const std::vector<Cell>& cells) {
  std::printf("\n%-s\n", title);
  std::printf("%s\n", std::string(96, '-').c_str());
  for (const Cell& cell : cells) {
    std::printf("  %-44s %9.0fus  %s\n", cell.problem.c_str(), cell.micros,
                cell.outcome.c_str());
  }
}

// Machine-readable companion to the printed matrix: per-cell outcomes and
// timings plus the metrics the run recorded, for EXPERIMENTS.md tooling.
// Written to $DEDDB_BENCH_JSON_DIR (default: cwd)/BENCH_table41.json.
void WriteJsonReport(const std::vector<std::pair<const char*,
                                                 const std::vector<Cell>*>>&
                         sections,
                     const obs::MetricsRegistry& metrics) {
  const char* dir = std::getenv("DEDDB_BENCH_JSON_DIR");
  std::string path = StrCat(dir != nullptr ? dir : ".", "/BENCH_table41.json");
  std::string out = "{\"bench\":\"table41\",\"sections\":[";
  bool first_section = true;
  for (const auto& [title, cells] : sections) {
    if (!first_section) out += ",";
    first_section = false;
    out += StrCat("{\"title\":", obs::JsonQuote(title), ",\"cells\":[");
    bool first_cell = true;
    for (const Cell& cell : *cells) {
      if (!first_cell) out += ",";
      first_cell = false;
      out += StrCat("{\"problem\":", obs::JsonQuote(cell.problem),
                    ",\"micros\":", static_cast<int64_t>(cell.micros),
                    ",\"outcome\":", obs::JsonQuote(cell.outcome), "}");
    }
    out += "]}";
  }
  out += StrCat("],\"metrics\":", metrics.ToJson(), "}\n");
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::printf("could not write %s\n", path.c_str());
    return;
  }
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  std::printf("JSON report: %s\n", path.c_str());
}

}  // namespace

int main() {
  workload::EmploymentConfig config;
  config.people = 200;
  config.consistent = true;
  auto db_or = workload::MakeEmploymentDatabase(config);
  if (!db_or.ok()) {
    std::printf("setup failed: %s\n", db_or.status().ToString().c_str());
    return 1;
  }
  DeductiveDatabase& db = **db_or;
  // Metrics only (no tracer): structural counters for the JSON report
  // without span-recording cost inside the timed cells.
  obs::MetricsRegistry metrics;
  db.set_observability(obs::ObsContext{nullptr, &metrics});
  SymbolId unemp = db.database().FindPredicate("Unemp").value();
  SymbolId alert = db.database().FindPredicate("Alert").value();
  db.MaterializeView(unemp);
  db.InitializeMaterializedViews();

  // A transaction used by the upward cells and the {T, ...} downward cells.
  auto txn = workload::RandomEmploymentTransaction(&db, config.people, 8,
                                                   /*seed=*/11);
  if (!txn.ok()) {
    std::printf("txn failed: %s\n", txn.status().ToString().c_str());
    return 1;
  }

  std::printf("Table 4.1 — classification and specification of deductive "
              "database updating problems\n");
  std::printf("Database: employment schema (§5.1), %zu people, %zu base "
              "facts; transaction: %s\n",
              config.people, db.database().facts().TotalFacts(),
              txn->ToString(db.symbols()).c_str());

  // ---- Upward interpretation ----------------------------------------------
  std::vector<Cell> upward;
  upward.push_back(RunCell(
      "View  x ins/del: materialized view maintenance", [&]() -> Result<std::string> {
        DEDDB_ASSIGN_OR_RETURN(auto result,
                               db.MaintainMaterializedViews(*txn,
                                                            /*apply=*/false));
        return StrCat("delta=", result.delta.ToString(db.symbols()));
      }));
  upward.push_back(RunCell(
      "Ic    x ins: integrity constraint checking", [&]() -> Result<std::string> {
        DEDDB_ASSIGN_OR_RETURN(auto result, db.CheckIntegrity(*txn));
        return StrCat(result.violated ? "VIOLATED (reject)" : "consistent",
                      ", ", result.violations.size(), " violation(s)");
      }));
  upward.push_back(RunCell(
      "Ic    x del: consistency-restoration checking",
      [&]() -> Result<std::string> {
        // Needs an inconsistent copy of the database.
        workload::EmploymentConfig bad = config;
        bad.consistent = false;
        bad.people = 30;  // repair alternatives grow with the violation count
        DEDDB_ASSIGN_OR_RETURN(auto bad_db,
                               workload::MakeEmploymentDatabase(bad));
        DEDDB_ASSIGN_OR_RETURN(auto repair, (*bad_db).RepairDatabase());
        if (repair.translations.empty()) return std::string("no repair");
        DEDDB_ASSIGN_OR_RETURN(
            auto restored,
            (*bad_db).CheckConsistencyRestored(
                repair.translations[0].transaction));
        return StrCat("restored=", restored.restored ? "yes" : "no");
      }));
  upward.push_back(RunCell(
      "Cond  x ins/del: condition monitoring", [&]() -> Result<std::string> {
        DEDDB_ASSIGN_OR_RETURN(auto changes, db.MonitorConditions(*txn));
        return StrCat(changes.events.size(), " condition change(s)");
      }));
  PrintSection("UPWARD problems (ιP / δP)", upward);

  // ---- Downward interpretation: ιP / δP ------------------------------------
  std::vector<Cell> downward;
  downward.push_back(RunCell(
      "View  x ins: view updating", [&]() -> Result<std::string> {
        UpdateRequest request;
        RequestedEvent event;
        event.is_insert = true;
        event.predicate = unemp;
        event.args = {db.Constant(workload::PersonName(config.people + 1))};
        request.events.push_back(event);
        DEDDB_ASSIGN_OR_RETURN(auto result, db.TranslateViewUpdate(request));
        return StrCat(result.translations.size(), " translation(s)");
      }));
  downward.push_back(RunCell(
      "View  x del: view updating / view validation",
      [&]() -> Result<std::string> {
        DEDDB_ASSIGN_OR_RETURN(bool valid,
                               db.ValidateView(unemp, /*insertion=*/false));
        return StrCat("deletable instance exists=", valid ? "yes" : "no");
      }));
  downward.push_back(RunCell(
      "Ic    x ins: ensuring IC satisfaction", [&]() -> Result<std::string> {
        DEDDB_ASSIGN_OR_RETURN(auto result, db.FindViolatingTransactions());
        return StrCat(result.translations.size(),
                      " way(s) to violate some constraint");
      }));
  downward.push_back(RunCell(
      "Ic    x del: repair / IC satisfiability", [&]() -> Result<std::string> {
        workload::EmploymentConfig bad = config;
        bad.consistent = false;
        bad.people = 30;  // repair enumerates alternatives per violation
        DEDDB_ASSIGN_OR_RETURN(auto bad_db,
                               workload::MakeEmploymentDatabase(bad));
        DEDDB_ASSIGN_OR_RETURN(bool satisfiable,
                               (*bad_db).CheckSatisfiability());
        return StrCat("satisfiable=", satisfiable ? "yes" : "no");
      }));
  downward.push_back(RunCell(
      "Cond  x ins/del: enforcing condition activation",
      [&]() -> Result<std::string> {
        RequestedEvent event;
        event.is_insert = true;
        event.predicate = alert;
        event.args = {db.Constant(workload::PersonName(0))};
        DEDDB_ASSIGN_OR_RETURN(auto result, db.EnforceCondition(event));
        return StrCat(result.translations.size(), " transaction(s)");
      }));
  PrintSection("DOWNWARD problems (ιP / δP)", downward);

  // ---- Downward interpretation: {T, ¬ιP} / {T, ¬δP} -------------------------
  std::vector<Cell> combined;
  combined.push_back(RunCell(
      "View  x {T,-ins/-del}: preventing side effects",
      [&]() -> Result<std::string> {
        RequestedEvent unwanted;
        unwanted.is_insert = true;
        unwanted.predicate = unemp;
        unwanted.args = {db.Variable("anyone")};
        DEDDB_ASSIGN_OR_RETURN(auto result,
                               db.PreventSideEffects(*txn, {unwanted}));
        return StrCat(result.translations.size(), " safe extension(s)");
      }));
  combined.push_back(RunCell(
      "Ic    x {T,-ins}: integrity constraint maintenance",
      [&]() -> Result<std::string> {
        DEDDB_ASSIGN_OR_RETURN(auto result, db.MaintainIntegrity(*txn));
        return StrCat(result.translations.size(), " repair(s) of T");
      }));
  combined.push_back(RunCell(
      "Ic    x {T,-del}: maintaining inconsistency",
      [&]() -> Result<std::string> {
        workload::EmploymentConfig bad = config;
        bad.consistent = false;
        bad.people = 30;
        DEDDB_ASSIGN_OR_RETURN(auto bad_db,
                               workload::MakeEmploymentDatabase(bad));
        DEDDB_ASSIGN_OR_RETURN(
            auto txn2, workload::RandomEmploymentTransaction(
                           bad_db.get(), bad.people, 4, /*seed=*/13));
        DEDDB_ASSIGN_OR_RETURN(auto result,
                               (*bad_db).MaintainInconsistency(txn2));
        return StrCat(result.translations.size(),
                      " inconsistency-preserving extension(s)");
      }));
  combined.push_back(RunCell(
      "Cond  x {T,-ins/-del}: preventing condition activation",
      [&]() -> Result<std::string> {
        RequestedEvent frozen;
        frozen.is_insert = true;
        frozen.predicate = alert;
        frozen.args = {db.Variable("anybody")};
        DEDDB_ASSIGN_OR_RETURN(
            auto result, db.PreventConditionActivation(*txn, {frozen}));
        return StrCat(result.translations.size(), " safe extension(s)");
      }));
  PrintSection("DOWNWARD problems ({T, ¬ιP} / {T, ¬δP})", combined);

  std::printf(
      "\nAll twelve Table-4.1 cells executed through the single event-rule "
      "framework.\n");
  WriteJsonReport({{"upward", &upward},
                   {"downward", &downward},
                   {"combined", &combined}},
                  metrics);
  return 0;
}
