// Throughput of the §5.3 combined update-processing pipeline: one upward
// pass per transaction covering integrity checking + condition monitoring +
// materialized view maintenance, applied when accepted. This is the
// "update processing system" the paper's introduction motivates, measured
// end to end.

#include <benchmark/benchmark.h>

#include "core/update_processor.h"
#include "workload/employment.h"

namespace deddb {
namespace {

void BM_ProcessTransaction(benchmark::State& state) {
  workload::EmploymentConfig config;
  config.people = static_cast<size_t>(state.range(0));
  config.consistent = true;
  config.materialize_unemp = true;
  auto db = workload::MakeEmploymentDatabase(config);
  if (!db.ok()) {
    state.SkipWithError(db.status().ToString().c_str());
    return;
  }
  if (!(*db)->InitializeMaterializedViews().ok()) {
    state.SkipWithError("view init failed");
    return;
  }
  UpdateProcessor processor(db->get());

  uint64_t seed = 1000;
  size_t accepted = 0;
  size_t rejected = 0;
  for (auto _ : state) {
    // Fresh valid transaction against the *current* state each iteration.
    state.PauseTiming();
    auto txn = workload::RandomEmploymentTransaction(
        db->get(), config.people, static_cast<size_t>(state.range(1)),
        ++seed);
    if (!txn.ok()) {
      state.SkipWithError(txn.status().ToString().c_str());
      return;
    }
    state.ResumeTiming();
    auto report = processor.ProcessTransaction(*txn, /*apply=*/true);
    if (!report.ok()) {
      state.SkipWithError(report.status().ToString().c_str());
      return;
    }
    (report->accepted ? accepted : rejected) += 1;
  }
  state.counters["people"] = static_cast<double>(config.people);
  state.counters["accepted"] = static_cast<double>(accepted);
  state.counters["rejected"] = static_cast<double>(rejected);
  state.counters["txn_per_s"] =
      benchmark::Counter(static_cast<double>(accepted + rejected),
                         benchmark::Counter::kIsRate);
}

BENCHMARK(BM_ProcessTransaction)
    ->ArgsProduct({{100, 1000, 5000}, {4}})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace deddb

BENCHMARK_MAIN();
