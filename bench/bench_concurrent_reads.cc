// Perf-K: aggregate snapshot-read throughput under a live durable writer
// (DESIGN.md §9). N reader threads repeatedly open a session and solve a
// derived query while one background writer commits durable transactions
// back to back; measured against the externally-serialized baseline — one
// global mutex around every facade access, which is what correctness would
// require without snapshot sessions. The per-read work is identical in both
// modes, so the ratio isolates the session design itself: the baseline holds
// its lock across each commit's fsync, while sessions pipeline the fsync
// outside the commit lock (DESIGN.md §8-9), so reads proceed during the
// writer's I/O stalls. On a single core that pipelining IS the win; on
// multicore, parallel snapshot reads compound it.
//
// Plain report binary (like bench_wal_throughput): prints a table and writes
// $DEDDB_BENCH_JSON_DIR (default: cwd)/BENCH_sessions.json.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/deductive_database.h"
#include "core/session.h"
#include "obs/json.h"
#include "util/strings.h"

using namespace deddb;  // NOLINT — report binary brevity

namespace {

using Clock = std::chrono::steady_clock;

constexpr int kNumConstants = 48;
constexpr auto kRunFor = std::chrono::milliseconds(400);

struct Row {
  std::string mode;
  int readers = 0;
  uint64_t reads = 0;
  uint64_t commits = 0;
  double seconds = 0;
  double reads_per_sec = 0;
  double commits_per_sec = 0;
};

// The baseline's external serialization, FIFO so it is starvation-free: an
// unfair std::mutex would let back-to-back readers starve the writer
// indefinitely (unbounded commit latency — not a baseline anyone would
// ship), and in doing so would also hide the baseline's real read cost,
// which is that reads queue behind every durable commit's fsync.
class TicketLock {
 public:
  void lock() {
    std::unique_lock<std::mutex> lock(mu_);
    const uint64_t ticket = next_++;
    cv_.wait(lock, [&] { return serving_ == ticket; });
  }
  void unlock() {
    std::lock_guard<std::mutex> lock(mu_);
    ++serving_;
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  uint64_t next_ = 0;
  uint64_t serving_ = 0;
};

void Check(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "bench failed: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

std::unique_ptr<DeductiveDatabase> BuildDatabase(const std::string& dir) {
  auto opened = DeductiveDatabase::OpenPersistent(dir);
  Check(opened.status());
  std::unique_ptr<DeductiveDatabase> db = std::move(*opened);
  Check(db->DeclareBase("Q", 1).status());
  Check(db->DeclareBase("R", 1).status());
  Check(db->DeclareView("P", 1).status());
  Term x = db->Variable("x");
  Check(db->AddRule(Rule(db->MakeAtom("P", {x}).value(),
                         {Literal::Positive(db->MakeAtom("Q", {x}).value()),
                          Literal::Negative(db->MakeAtom("R", {x}).value())})));
  for (int i = 0; i < kNumConstants; ++i) {
    Check(db->AddFact(db->GroundAtom("Q", {StrCat("c", i)}).value()));
    if (i % 3 == 0) {
      Check(db->AddFact(db->GroundAtom("R", {StrCat("c", i)}).value()));
    }
  }
  Check(db->Checkpoint());
  return db;
}

// One read: open a session pinned at the current version and answer a
// derived point query, P(c_i) — the OLTP-shaped read this suite is about.
uint64_t ReadOnce(DeductiveDatabase* db, int i) {
  auto session = db->BeginSession();
  Check(session.status());
  Atom pattern =
      (*session)->GroundAtom("P", {StrCat("c", i % kNumConstants)}).value();
  auto holds = (*session)->Holds(pattern);
  Check(holds.status());
  return *holds ? 1 : 0;
}

Row RunOne(bool serialized, int readers) {
  Row row;
  row.mode = serialized ? "serialized" : "sessions";
  row.readers = readers;

  char tmpl[] = "/tmp/sessbenchXXXXXX";
  if (::mkdtemp(tmpl) == nullptr) {
    std::perror("mkdtemp");
    std::exit(1);
  }
  std::string dir = tmpl;
  std::unique_ptr<DeductiveDatabase> db = BuildDatabase(dir);

  TicketLock big_lock;
  std::atomic<bool> done{false};
  std::atomic<uint64_t> total_reads{0};
  std::atomic<uint64_t> sink{0};  // keep answers from being optimized away

  // The writer toggles R membership one constant at a time, committing
  // durably back to back, so the database keeps changing (every commit bumps
  // the version and retires the cached snapshot) while the fact count stays
  // bounded. In the baseline the big lock is held across the whole durable
  // commit — exactly what an external serializer would have to do, since
  // without snapshots a read during the commit could see a torn state.
  std::set<int> in_r;
  for (int i = 0; i < kNumConstants; i += 3) in_r.insert(i);
  std::thread writer([&] {
    int next = 0;
    while (!done.load(std::memory_order_acquire)) {
      Transaction txn;
      Atom fact = db->GroundAtom("R", {StrCat("c", next)}).value();
      if (in_r.count(next) > 0) {
        (void)txn.AddDelete(fact);
        in_r.erase(next);
      } else {
        (void)txn.AddInsert(fact);
        in_r.insert(next);
      }
      next = (next + 1) % kNumConstants;
      if (serialized) {
        std::lock_guard<TicketLock> guard(big_lock);
        Check(db->Apply(txn));
      } else {
        Check(db->Apply(txn));
      }
      ++row.commits;
      std::this_thread::yield();
    }
  });

  auto start = Clock::now();
  std::vector<std::thread> workers;
  workers.reserve(readers);
  for (int r = 0; r < readers; ++r) {
    workers.emplace_back([&] {
      uint64_t local = 0;
      uint64_t local_sink = 0;
      auto deadline = start + kRunFor;
      while (Clock::now() < deadline) {
        if (serialized) {
          std::lock_guard<TicketLock> guard(big_lock);
          local_sink += ReadOnce(db.get(), static_cast<int>(local));
        } else {
          local_sink += ReadOnce(db.get(), static_cast<int>(local));
        }
        ++local;
      }
      total_reads.fetch_add(local, std::memory_order_relaxed);
      sink.fetch_add(local_sink, std::memory_order_relaxed);
    });
  }
  for (std::thread& worker : workers) worker.join();
  auto end = Clock::now();
  done.store(true, std::memory_order_release);
  writer.join();

  row.reads = total_reads.load();
  row.seconds = std::chrono::duration<double>(end - start).count();
  row.reads_per_sec = row.reads / row.seconds;
  row.commits_per_sec = row.commits / row.seconds;

  Check(db->Close());
  db.reset();
  std::string cmd = StrCat("rm -rf ", dir);
  if (std::system(cmd.c_str()) != 0) std::exit(1);
  return row;
}

}  // namespace

int main() {
  std::printf("Concurrent snapshot reads under a durable writer vs "
              "externally-serialized baseline\n(%d constants, %lld ms per "
              "config, %u hardware threads)\n",
              kNumConstants, static_cast<long long>(kRunFor.count()),
              std::thread::hardware_concurrency());
  std::printf("%-12s %8s %10s %10s %12s %10s %13s\n", "mode", "readers",
              "reads", "seconds", "reads/sec", "commits", "commits/sec");

  std::vector<Row> rows;
  for (int readers : {1, 2, 4, 8}) {
    for (bool serialized : {true, false}) {
      Row row = RunOne(serialized, readers);
      std::printf("%-12s %8d %10llu %10.3f %12.0f %10llu %13.0f\n",
                  row.mode.c_str(), row.readers,
                  static_cast<unsigned long long>(row.reads), row.seconds,
                  row.reads_per_sec,
                  static_cast<unsigned long long>(row.commits),
                  row.commits_per_sec);
      rows.push_back(row);
    }
  }

  // Headline ratio, recorded by EXPERIMENTS.md Perf-K: sessions vs the
  // serialized baseline at 4 readers.
  double serialized4 = 0, sessions4 = 0;
  for (const Row& row : rows) {
    if (row.readers != 4) continue;
    (row.mode == "sessions" ? sessions4 : serialized4) = row.reads_per_sec;
  }
  if (serialized4 > 0) {
    std::printf("speedup at 4 readers: %.2fx\n", sessions4 / serialized4);
  }

  const char* json_dir = std::getenv("DEDDB_BENCH_JSON_DIR");
  std::string json_path =
      StrCat(json_dir != nullptr ? json_dir : ".", "/BENCH_sessions.json");
  std::string out =
      StrCat("{\"bench\":\"concurrent_reads\",\"constants\":", kNumConstants,
             ",\"hardware_threads\":", std::thread::hardware_concurrency(),
             ",\"speedup_at_4\":",
             serialized4 > 0 ? sessions4 / serialized4 : 0.0, ",\"rows\":[");
  bool first = true;
  for (const Row& row : rows) {
    if (!first) out += ",";
    first = false;
    out += StrCat("{\"mode\":", obs::JsonQuote(row.mode),
                  ",\"readers\":", row.readers, ",\"reads\":", row.reads,
                  ",\"seconds\":", row.seconds,
                  ",\"reads_per_sec\":", row.reads_per_sec,
                  ",\"commits\":", row.commits,
                  ",\"commits_per_sec\":", row.commits_per_sec, "}");
  }
  out += "]}\n";
  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::printf("could not write %s\n", json_path.c_str());
    return 1;
  }
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  std::printf("JSON report: %s\n", json_path.c_str());
  return 0;
}
