// Perf-M: the fault-free cost of the exactly-once machinery. Identical
// write-only workloads through the full service path — encode, frame,
// admission, writer thread, reply — once with untokened clients (v1 wire,
// no dedup) and once with tokened clients (token on every Apply, dedup
// lookup + record per commit, token extension on the commit record). The
// number that matters is the ratio: tokened throughput should stay within
// ~2% of untokened, since a dedup lookup is one hash probe on the writer
// thread and the token adds 17 bytes to the frame.
//
// In-memory databases on purpose: a WAL fsync per commit would drown the
// effect being measured (the WAL token extension itself is exercised by the
// persist suites).
//
// Plain report binary (like bench_server_qps): prints a table and writes
// $DEDDB_BENCH_JSON_DIR (default: cwd)/BENCH_retry.json.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/deductive_database.h"
#include "server/client.h"
#include "server/server.h"
#include "server/transport.h"
#include "util/strings.h"

using namespace deddb;          // NOLINT — report binary brevity
using namespace deddb::server;  // NOLINT

namespace {

using Clock = std::chrono::steady_clock;

constexpr auto kRunFor = std::chrono::milliseconds(400);

struct Row {
  int clients = 0;
  uint64_t untokened_writes = 0;
  uint64_t tokened_writes = 0;
  double untokened_qps = 0;
  double tokened_qps = 0;
  double overhead_pct = 0;  // (untokened - tokened) / untokened * 100
};

void Check(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "bench failed: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

/// One timed run: `clients` connections hammering private toggle-writes.
/// tokened=false leaves client_id 0, so requests go out as v1 frames and
/// the server's dedup path is never entered. Returns elapsed seconds.
double RunOne(int clients, bool tokened, uint64_t* writes_out) {
  DeductiveDatabase db;
  Check(db.DeclareBase("R", 1).status());

  LoopbackNetwork network;
  Server server(&db);
  Check(server.Serve(network.TakeListener()));

  std::atomic<uint64_t> total_writes{0};
  auto start = Clock::now();
  std::vector<std::thread> workers;
  workers.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      ClientOptions options;
      options.client_id = tokened ? static_cast<uint64_t>(c + 1) : 0;
      Client client([&network]() { return network.Connect(); }, options);
      uint64_t writes = 0;
      bool in_r = false;
      auto deadline = start + kRunFor;
      while (Clock::now() < deadline) {
        Transaction txn;
        Atom fact = client.GroundAtom("R", {StrCat("w", c)});
        Check(in_r ? txn.AddDelete(fact) : txn.AddInsert(fact));
        in_r = !in_r;
        Check(client.Apply(txn).status());
        ++writes;
      }
      total_writes.fetch_add(writes, std::memory_order_relaxed);
    });
  }
  for (std::thread& worker : workers) worker.join();
  auto end = Clock::now();
  server.Stop();

  *writes_out = total_writes.load();
  return std::chrono::duration<double>(end - start).count();
}

Row Compare(int clients) {
  Row row;
  row.clients = clients;
  // Interleave a warmup of each mode, then alternate short measured rounds
  // and aggregate — back-to-back A/B pairs cancel machine drift that a
  // single long run of each mode would bake into the ratio.
  uint64_t scratch = 0;
  (void)RunOne(clients, /*tokened=*/false, &scratch);
  (void)RunOne(clients, /*tokened=*/true, &scratch);
  double untokened_seconds = 0;
  double tokened_seconds = 0;
  for (int round = 0; round < 5; ++round) {
    uint64_t writes = 0;
    untokened_seconds += RunOne(clients, false, &writes);
    row.untokened_writes += writes;
    tokened_seconds += RunOne(clients, true, &writes);
    row.tokened_writes += writes;
  }
  row.untokened_qps = row.untokened_writes / untokened_seconds;
  row.tokened_qps = row.tokened_writes / tokened_seconds;
  row.overhead_pct =
      (row.untokened_qps - row.tokened_qps) / row.untokened_qps * 100.0;
  return row;
}

}  // namespace

int main() {
  std::printf(
      "Exactly-once overhead: fault-free tokened vs untokened write QPS over "
      "loopback\n(in-memory database, %lld ms per run, %u hardware "
      "threads)\n",
      static_cast<long long>(kRunFor.count()),
      std::thread::hardware_concurrency());
  std::printf("%8s %14s %14s %12s\n", "clients", "untokened/s", "tokened/s",
              "overhead%");

  std::vector<Row> rows;
  for (int clients : {1, 2, 4}) {
    Row row = Compare(clients);
    std::printf("%8d %14.0f %14.0f %11.2f%%\n", row.clients,
                row.untokened_qps, row.tokened_qps, row.overhead_pct);
    rows.push_back(row);
  }

  const char* json_dir = std::getenv("DEDDB_BENCH_JSON_DIR");
  std::string json_path =
      StrCat(json_dir != nullptr ? json_dir : ".", "/BENCH_retry.json");
  std::string out = StrCat(
      "{\"bench\":\"retry_overhead\",\"target_overhead_pct\":2,"
      "\"hardware_threads\":",
      std::thread::hardware_concurrency(), ",\"rows\":[");
  bool first = true;
  for (const Row& row : rows) {
    if (!first) out += ",";
    first = false;
    out += StrCat("{\"clients\":", row.clients,
                  ",\"untokened_writes\":", row.untokened_writes,
                  ",\"tokened_writes\":", row.tokened_writes,
                  ",\"untokened_qps\":", row.untokened_qps,
                  ",\"tokened_qps\":", row.tokened_qps,
                  ",\"overhead_pct\":", row.overhead_pct, "}");
  }
  out += "]}\n";
  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::printf("could not write %s\n", json_path.c_str());
    return 1;
  }
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  std::printf("JSON report: %s\n", json_path.c_str());
  return 0;
}
