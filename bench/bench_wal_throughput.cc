// Perf-J: write-ahead-log commit throughput, single-fsync-per-commit vs
// leader-based group commit (DESIGN.md §8). N threads append identical
// commit records to one WalWriter; every append returns only once its
// record is durable, so commits/sec here is acknowledged-durable commits
// per second. Group commit batches concurrent appends under one fsync —
// the fsync and batch counters in the output show the batching directly.
//
// Plain report binary (like bench_table41): prints a table and writes
// $DEDDB_BENCH_JSON_DIR (default: cwd)/BENCH_persist.json.

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "datalog/symbol_table.h"
#include "obs/json.h"
#include "persist/wal.h"
#include "storage/transaction.h"
#include "util/strings.h"

using namespace deddb;  // NOLINT — report binary brevity

namespace {

using Clock = std::chrono::steady_clock;

struct Row {
  std::string mode;
  int threads = 0;
  int commits = 0;
  double seconds = 0;
  double commits_per_sec = 0;
  uint64_t fsyncs = 0;
  uint64_t batches = 0;
};

constexpr int kCommitsPerThread = 300;

Row RunOne(const std::string& dir, bool group_commit, int threads,
           const std::string& payload) {
  Row row;
  row.mode = group_commit ? "group" : "single";
  row.threads = threads;
  row.commits = threads * kCommitsPerThread;

  std::string path = StrCat(dir, "/wal_bench.deddb");
  ::unlink(path.c_str());
  persist::WalWriter::Options options;
  options.group_commit = group_commit;
  auto writer_or = persist::WalWriter::Create(path, 0, options);
  if (!writer_or.ok()) {
    std::fprintf(stderr, "create failed: %s\n",
                 writer_or.status().ToString().c_str());
    std::exit(1);
  }
  persist::WalWriter& writer = **writer_or;

  auto start = Clock::now();
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&writer, &payload] {
      for (int i = 0; i < kCommitsPerThread; ++i) {
        Status status = writer.AppendDurable(payload, {});
        if (!status.ok()) {
          std::fprintf(stderr, "append failed: %s\n",
                       status.ToString().c_str());
          std::exit(1);
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  auto end = Clock::now();
  row.seconds = std::chrono::duration<double>(end - start).count();
  row.commits_per_sec = row.commits / row.seconds;
  row.fsyncs = writer.fsyncs();
  row.batches = writer.group_batches();
  ::unlink(path.c_str());
  return row;
}

}  // namespace

int main() {
  char tmpl[] = "/tmp/walbenchXXXXXX";
  if (::mkdtemp(tmpl) == nullptr) {
    std::perror("mkdtemp");
    return 1;
  }
  std::string dir = tmpl;

  // A representative small commit: one transaction of three single-column
  // events, encoded exactly as PersistenceManager::LogCommit would.
  SymbolTable symbols;
  Transaction txn;
  SymbolId works = symbols.Intern("Works");
  SymbolId la = symbols.Intern("La");
  (void)txn.AddInsert(works, {symbols.Intern("Joan"),
                              symbols.Intern("Sales")});
  (void)txn.AddInsert(la, {symbols.Intern("Dolors")});
  (void)txn.AddDelete(la, {symbols.Intern("Pere")});
  std::string payload = persist::EncodeCommitPayload(
      1, persist::CommitOrigin::kDirect, txn, symbols);

  std::printf("WAL commit throughput (payload %zu bytes, %d commits per "
              "thread)\n",
              payload.size(), kCommitsPerThread);
  std::printf("%-8s %8s %10s %10s %14s %8s %8s\n", "mode", "threads",
              "commits", "seconds", "commits/sec", "fsyncs", "batches");

  std::vector<Row> rows;
  for (int threads : {1, 2, 4, 8}) {
    for (bool group : {false, true}) {
      // Single-fsync mode serializes appends, so its multi-thread rows
      // measure contention; group mode is where batching pays.
      Row row = RunOne(dir, group, threads, payload);
      std::printf("%-8s %8d %10d %10.3f %14.0f %8llu %8llu\n",
                  row.mode.c_str(), row.threads, row.commits, row.seconds,
                  row.commits_per_sec,
                  static_cast<unsigned long long>(row.fsyncs),
                  static_cast<unsigned long long>(row.batches));
      rows.push_back(row);
    }
  }
  ::rmdir(dir.c_str());

  const char* json_dir = std::getenv("DEDDB_BENCH_JSON_DIR");
  std::string json_path =
      StrCat(json_dir != nullptr ? json_dir : ".", "/BENCH_persist.json");
  std::string out = StrCat("{\"bench\":\"wal_throughput\",\"payload_bytes\":",
                           payload.size(), ",\"rows\":[");
  bool first = true;
  for (const Row& row : rows) {
    if (!first) out += ",";
    first = false;
    out += StrCat("{\"mode\":", obs::JsonQuote(row.mode),
                  ",\"threads\":", row.threads, ",\"commits\":", row.commits,
                  ",\"seconds\":", row.seconds,
                  ",\"commits_per_sec\":", row.commits_per_sec,
                  ",\"fsyncs\":", row.fsyncs, ",\"batches\":", row.batches,
                  "}");
  }
  out += "]}\n";
  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::printf("could not write %s\n", json_path.c_str());
    return 1;
  }
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  std::printf("JSON report: %s\n", json_path.c_str());
  return 0;
}
