// Perf-O: change-data-capture fan-out — one writer toggling a base fact
// that feeds a derived view, with 0/1/4/16 standing-query subscribers
// receiving every commit's delta as a push. Three numbers per row:
//
//   writer qps    — commit throughput with that many subscribers attached
//   overhead%     — qps loss vs the never-subscribed baseline (row 0)
//   push µs       — mean writer-send to subscriber-receive latency, i.e.
//                   the full encode → admission → commit → induced-events →
//                   fan-out → frame → decode path
//
// Two zero-subscriber rows tell the overhead story apart:
//   0  (cold)  — no subscription was ever registered: the facade's commit
//                hook is one relaxed atomic load; this is the pre-CDC
//                baseline and the "zero-subscriber overhead within noise"
//                regression target.
//   0* (armed) — a subscriber connected once and unsubscribed: commits now
//                retain the CDC log (one transaction copy per commit) so a
//                late resume does not lose the subscriber-free window.
//
// In-memory database on purpose, as in bench_retry_overhead: a WAL fsync
// per commit would drown the effect being measured.
//
// Plain report binary (like bench_server_qps): prints a table and writes
// $DEDDB_BENCH_JSON_DIR (default: cwd)/BENCH_cdc.json.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/deductive_database.h"
#include "parser/parser.h"
#include "server/client.h"
#include "server/server.h"
#include "server/transport.h"
#include "util/strings.h"

using namespace deddb;          // NOLINT — report binary brevity
using namespace deddb::server;  // NOLINT

namespace {

using Clock = std::chrono::steady_clock;

constexpr auto kRunFor = std::chrono::milliseconds(400);
constexpr int kRounds = 3;
// Send-timestamp slots, indexed by (version - base - 1); writes past the
// cap simply contribute no latency sample.
constexpr size_t kMaxTimedWrites = 1 << 20;

struct Row {
  std::string label;
  int subscribers = 0;
  bool armed = false;
  uint64_t writes = 0;
  uint64_t deltas = 0;
  double qps = 0;
  double overhead_pct = 0;   // vs the cold zero-subscriber row
  double mean_push_us = 0;   // 0 when there are no subscribers
};

void Check(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "bench failed: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

struct RunResult {
  uint64_t writes = 0;
  uint64_t deltas = 0;
  double seconds = 0;
  uint64_t latency_sum_us = 0;
  uint64_t latency_samples = 0;
};

/// One timed run: one writer toggling Q(w), `subscribers` standing queries
/// on the derived view P(x). With armed=true and subscribers=0, a
/// subscription is registered and cancelled up front so commits pay the
/// CDC retained-log tax without any fan-out.
RunResult RunOne(int subscribers, bool armed) {
  DeductiveDatabase db;
  Check(LoadProgram(&db,
                    "base Q/1. base R/1. view P/1. P(x) <- Q(x) & not R(x).")
            .status());

  LoopbackNetwork network;
  Server server(&db);
  Check(server.Serve(network.TakeListener()));
  auto dial = [&network]() { return network.Connect(); };

  if (armed && subscribers == 0) {
    Client once(dial, ClientOptions{});
    Atom pattern = once.MakeAtom("P", {once.Variable("x")});
    Result<SubscribeReply> reply = once.Subscribe(pattern);
    Check(reply.status());
    Check(once.Unsubscribe(reply->sub_id).status());
  }

  const uint64_t base = db.version();
  // Slot i holds the send micros of the write that commits as base+1+i.
  std::vector<std::atomic<int64_t>> send_us(kMaxTimedWrites);
  const auto epoch = Clock::now();
  auto micros_now = [&epoch] {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               Clock::now() - epoch)
        .count();
  };

  std::atomic<uint64_t> total_deltas{0};
  std::atomic<uint64_t> latency_sum{0};
  std::atomic<uint64_t> latency_samples{0};
  std::atomic<int> ready{0};
  std::vector<std::thread> listeners;
  listeners.reserve(subscribers);
  for (int s = 0; s < subscribers; ++s) {
    listeners.emplace_back([&] {
      Client client(dial, ClientOptions{});
      Atom pattern = client.MakeAtom("P", {client.Variable("x")});
      Client::SubscribeOptions options;
      options.policy = sub::OverflowPolicy::kCoalesce;
      options.max_queued = 256;
      Check(client.Subscribe(pattern, options).status());
      ready.fetch_add(1);
      uint64_t deltas = 0;
      while (true) {
        Result<Client::PushEvent> push = client.AwaitPush();
        if (!push.ok()) break;  // server stopped
        if (push->is_gap) continue;
        ++deltas;
        const uint64_t index = push->delta.version - base - 1;
        if (index < kMaxTimedWrites) {
          const int64_t sent = send_us[index].load(std::memory_order_acquire);
          if (sent > 0) {
            latency_sum.fetch_add(
                static_cast<uint64_t>(micros_now() - sent),
                std::memory_order_relaxed);
            latency_samples.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
      total_deltas.fetch_add(deltas, std::memory_order_relaxed);
    });
  }
  while (ready.load() < subscribers) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }

  Client writer(dial, ClientOptions{});
  Atom fact = writer.GroundAtom("Q", {"w"});
  uint64_t writes = 0;
  bool in_q = false;
  const auto start = Clock::now();
  const auto deadline = start + kRunFor;
  while (Clock::now() < deadline) {
    Transaction txn;
    Check(in_q ? txn.AddDelete(fact) : txn.AddInsert(fact));
    in_q = !in_q;
    if (writes < kMaxTimedWrites) {
      send_us[writes].store(micros_now(), std::memory_order_release);
    }
    Check(writer.Apply(txn).status());
    ++writes;
  }
  const auto end = Clock::now();
  server.Stop();
  for (std::thread& listener : listeners) listener.join();

  RunResult result;
  result.writes = writes;
  result.deltas = total_deltas.load();
  result.seconds = std::chrono::duration<double>(end - start).count();
  result.latency_sum_us = latency_sum.load();
  result.latency_samples = latency_samples.load();
  return result;
}

Row Measure(const std::string& label, int subscribers, bool armed) {
  Row row;
  row.label = label;
  row.subscribers = subscribers;
  row.armed = armed;
  (void)RunOne(subscribers, armed);  // warmup
  double seconds = 0;
  uint64_t latency_sum = 0;
  uint64_t latency_samples = 0;
  for (int round = 0; round < kRounds; ++round) {
    RunResult result = RunOne(subscribers, armed);
    row.writes += result.writes;
    row.deltas += result.deltas;
    seconds += result.seconds;
    latency_sum += result.latency_sum_us;
    latency_samples += result.latency_samples;
  }
  row.qps = row.writes / seconds;
  if (latency_samples > 0) {
    row.mean_push_us =
        static_cast<double>(latency_sum) / static_cast<double>(latency_samples);
  }
  return row;
}

}  // namespace

int main() {
  std::printf(
      "CDC fan-out: one writer on a derived view, pushed to N subscribers "
      "over loopback\n(in-memory database, %lld ms per run, %d rounds, %u "
      "hardware threads)\n",
      static_cast<long long>(kRunFor.count()), kRounds,
      std::thread::hardware_concurrency());
  std::printf("%6s %12s %10s %12s %12s\n", "subs", "writer/s", "overhead%",
              "deltas/s", "push µs");

  std::vector<Row> rows;
  rows.push_back(Measure("0", 0, /*armed=*/false));
  rows.push_back(Measure("0*", 0, /*armed=*/true));
  for (int subscribers : {1, 4, 16}) {
    rows.push_back(Measure(StrCat(subscribers), subscribers, true));
  }
  const double baseline = rows.front().qps;
  for (Row& row : rows) {
    row.overhead_pct = (baseline - row.qps) / baseline * 100.0;
    const double deltas_per_s = row.writes > 0
                                    ? row.deltas * row.qps / row.writes
                                    : 0.0;
    std::printf("%6s %12.0f %9.2f%% %12.0f %12.1f\n", row.label.c_str(),
                row.qps, row.overhead_pct, deltas_per_s, row.mean_push_us);
  }

  const char* json_dir = std::getenv("DEDDB_BENCH_JSON_DIR");
  std::string json_path =
      StrCat(json_dir != nullptr ? json_dir : ".", "/BENCH_cdc.json");
  std::string out = StrCat(
      "{\"bench\":\"cdc_fanout\",\"hardware_threads\":",
      std::thread::hardware_concurrency(), ",\"run_ms\":",
      static_cast<long long>(kRunFor.count()), ",\"rounds\":", kRounds,
      ",\"rows\":[");
  bool first = true;
  for (const Row& row : rows) {
    if (!first) out += ",";
    first = false;
    out += StrCat("{\"label\":\"", row.label,
                  "\",\"subscribers\":", row.subscribers,
                  ",\"armed\":", row.armed ? "true" : "false",
                  ",\"writes\":", row.writes, ",\"deltas\":", row.deltas,
                  ",\"writer_qps\":", row.qps,
                  ",\"overhead_pct\":", row.overhead_pct,
                  ",\"mean_push_us\":", row.mean_push_us, "}");
  }
  out += "]}\n";
  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::printf("could not write %s\n", json_path.c_str());
    return 1;
  }
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  std::printf("JSON report: %s\n", json_path.c_str());
  return 0;
}
