// Perf-A: incremental upward interpretation (event rules) vs full
// recomputation, across database size and transaction size — the efficiency
// question the paper defers to future work (§6: "an efficient implementation
// of the upward and the downward interpretations"). The expected shape:
// event-rule cost tracks the transaction (and affected tuples), recompute
// cost tracks the database, so the gap widens with |DB| / |T|.

#include <benchmark/benchmark.h>

#include "core/deductive_database.h"
#include "workload/employment.h"

namespace deddb {
namespace {

void RunUpward(benchmark::State& state, UpwardStrategy strategy) {
  workload::EmploymentConfig config;
  config.people = static_cast<size_t>(state.range(0));
  config.consistent = false;  // keep Ic events flowing too
  auto db = workload::MakeEmploymentDatabase(config);
  if (!db.ok()) {
    state.SkipWithError(db.status().ToString().c_str());
    return;
  }
  auto txn = workload::RandomEmploymentTransaction(
      db->get(), config.people, static_cast<size_t>(state.range(1)),
      /*seed=*/99);
  if (!txn.ok()) {
    state.SkipWithError(txn.status().ToString().c_str());
    return;
  }
  auto compiled = (*db)->Compiled();
  if (!compiled.ok()) {
    state.SkipWithError(compiled.status().ToString().c_str());
    return;
  }
  UpwardOptions options;
  options.strategy = strategy;

  size_t events = 0;
  for (auto _ : state) {
    UpwardInterpreter upward(&(*db)->database(), *compiled, options);
    auto result = upward.InducedEvents(*txn);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    events = result->size();
    benchmark::DoNotOptimize(events);
  }
  state.counters["people"] = static_cast<double>(config.people);
  state.counters["txn_size"] = static_cast<double>(txn->size());
  state.counters["induced_events"] = static_cast<double>(events);
}

void BM_EventRules(benchmark::State& state) {
  RunUpward(state, UpwardStrategy::kEventRules);
}
void BM_Recompute(benchmark::State& state) {
  RunUpward(state, UpwardStrategy::kRecompute);
}

void Sizes(benchmark::internal::Benchmark* bench) {
  for (int people : {100, 1000, 10000}) {
    for (int txn : {1, 16, 256}) {
      bench->Args({people, txn});
    }
  }
}

BENCHMARK(BM_EventRules)->Apply(Sizes)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Recompute)->Apply(Sizes)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace deddb

BENCHMARK_MAIN();
