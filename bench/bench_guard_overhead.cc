// Perf-H: overhead of an armed-but-untripped ResourceGuard. Every check
// site the guard adds to the hot paths (round barriers, body-join ticks,
// merge-time charges, DNF expansion charges) runs with limits that never
// fire; the guarded and unguarded times should stay within ~2% of each
// other on both the fixpoint-heavy and the DNF-heavy workload.

#include <benchmark/benchmark.h>

#include <chrono>

#include "core/deductive_database.h"
#include "eval/bottom_up.h"
#include "parser/parser.h"
#include "util/resource_guard.h"
#include "workload/towers.h"

namespace deddb {
namespace {

// Limits far above anything the workloads reach: the guard pays its full
// check cost but never trips.
ResourceLimits HugeLimits() {
  ResourceLimits limits;
  limits.deadline = std::chrono::hours(24);
  limits.max_derived_facts = size_t{1} << 40;
  limits.max_dnf_terms = size_t{1} << 40;
  return limits;
}

// Deep transitive closure: many rounds, many body-join steps, many derived
// facts — the evaluation-side check sites dominate.
void RunChainFixpoint(benchmark::State& state, bool guarded,
                      size_t num_threads) {
  auto db = std::make_unique<DeductiveDatabase>();
  std::string source = "base Edge/2. derived Path/2.\n"
                       "Path(x, y) <- Edge(x, y).\n"
                       "Path(x, y) <- Path(x, z) & Edge(z, y).\n";
  size_t n = static_cast<size_t>(state.range(0));
  for (size_t i = 0; i + 1 < n; ++i) {
    source += "Edge(E" + std::to_string(i) + ", E" + std::to_string(i + 1) +
              ").\n";
  }
  if (!LoadProgram(db.get(), source).ok()) {
    state.SkipWithError("load failed");
    return;
  }
  FactStoreProvider edb(&db->database().facts());
  ResourceGuard guard(HugeLimits());
  EvaluationOptions options;
  options.num_threads = num_threads;
  options.guard = guarded ? &guard : nullptr;

  for (auto _ : state) {
    guard.Restart();
    BottomUpEvaluator evaluator(db->database().program(), db->symbols(), edb,
                                options);
    auto idb = evaluator.Evaluate();
    if (!idb.ok()) {
      state.SkipWithError(idb.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(idb->TotalFacts());
  }
  state.counters["chain"] = static_cast<double>(n);
}

void BM_ChainUnguarded(benchmark::State& state) {
  RunChainFixpoint(state, /*guarded=*/false, /*num_threads=*/0);
}
void BM_ChainGuarded(benchmark::State& state) {
  RunChainFixpoint(state, /*guarded=*/true, /*num_threads=*/0);
}
void BM_ChainParallelUnguarded(benchmark::State& state) {
  RunChainFixpoint(state, /*guarded=*/false, /*num_threads=*/4);
}
void BM_ChainParallelGuarded(benchmark::State& state) {
  RunChainFixpoint(state, /*guarded=*/true, /*num_threads=*/4);
}

BENCHMARK(BM_ChainUnguarded)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ChainGuarded)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ChainParallelUnguarded)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ChainParallelGuarded)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);

// Downward translation on a negation tower: the DNF charge sites dominate.
void RunTowerDownward(benchmark::State& state, bool guarded) {
  workload::TowerConfig config;
  config.depth = static_cast<size_t>(state.range(0));
  config.base_facts = 4;
  config.with_negation = true;
  auto db = MakeTowerDatabase(config);
  if (!db.ok()) {
    state.SkipWithError(db.status().ToString().c_str());
    return;
  }
  ResourceGuard guard(HugeLimits());
  (*db)->set_resource_guard(guarded ? &guard : nullptr);
  auto request = ParseRequest(
      db->get(), "del " + workload::TowerLayerName(config.depth) + "(" +
                     workload::TowerElementName(0) + ")");
  if (!request.ok()) {
    state.SkipWithError(request.status().ToString().c_str());
    return;
  }

  for (auto _ : state) {
    guard.Restart();
    auto result = (*db)->TranslateViewUpdate(*request);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result->dnf.size());
  }
  state.counters["depth"] = static_cast<double>(config.depth);
  state.counters["dnf_terms_charged"] =
      static_cast<double>(guard.dnf_terms_charged());
}

void BM_DownwardUnguarded(benchmark::State& state) {
  RunTowerDownward(state, /*guarded=*/false);
}
void BM_DownwardGuarded(benchmark::State& state) {
  RunTowerDownward(state, /*guarded=*/true);
}

BENCHMARK(BM_DownwardUnguarded)->Arg(8)->Arg(10)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DownwardGuarded)->Arg(8)->Arg(10)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace deddb

BENCHMARK_MAIN();
