// Perf-P: read scale-out through WAL-shipping replicas (DESIGN.md §12).
// Two configurations over the same OLTP-shaped load — one durable writer
// toggling private facts plus a pool of point-query readers:
//
//   primary-only   writer and all readers share the primary's server
//   2-replicas     writer stays on the primary; the readers split across
//                  two replica servers, each a fresh database tailing the
//                  primary's WAL feed and serving through its own Server
//
// The replica rows also report the steady-state staleness evidence exactly
// as a client would see it: the replication block of a Health round trip
// against each replica server (applied_seq / primary horizon / bounded),
// sampled mid-run while the writer is hot.
//
// Plain report binary (like bench_server_qps): prints a table and writes
// $DEDDB_BENCH_JSON_DIR (default: cwd)/BENCH_repl.json.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/deductive_database.h"
#include "repl/replica.h"
#include "server/client.h"
#include "server/server.h"
#include "server/transport.h"
#include "util/strings.h"

using namespace deddb;          // NOLINT — report binary brevity
using namespace deddb::server;  // NOLINT

namespace {

using Clock = std::chrono::steady_clock;

constexpr int kNumConstants = 48;
constexpr int kReaders = 4;
constexpr auto kRunFor = std::chrono::milliseconds(400);

struct Row {
  std::string config;
  int replicas = 0;
  uint64_t reads = 0;
  uint64_t writes = 0;
  double seconds = 0;
  double read_qps = 0;
  double write_qps = 0;
  // Mid-run Health evidence averaged across the replica servers (0 for the
  // primary-only row): how far behind the readers' snapshots were while the
  // writer was hot, and whether every feed stayed bounded.
  double mean_lag = 0;
  bool all_bounded = true;
};

void Check(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "bench failed: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

void DeclareSchema(DeductiveDatabase* db) {
  Check(db->DeclareBase("Q", 1).status());
  Check(db->DeclareBase("R", 1).status());
  Check(db->DeclareView("P", 1).status());
  Term x = db->Variable("x");
  Check(db->AddRule(Rule(db->MakeAtom("P", {x}).value(),
                         {Literal::Positive(db->MakeAtom("Q", {x}).value()),
                          Literal::Negative(db->MakeAtom("R", {x}).value())})));
}

/// Seeds the working set through the server so every fact is a WAL record
/// the replicas replay (schema travels by identical declaration, facts by
/// feed — the same split the replica chaos matrix uses).
void SeedFacts(LoopbackNetwork* network) {
  auto conn = network->Connect();
  Check(conn.status());
  Client client(std::move(*conn));
  for (int i = 0; i < kNumConstants; ++i) {
    Transaction txn;
    Check(txn.AddInsert(client.GroundAtom("Q", {StrCat("c", i)})));
    if (i % 3 == 0) {
      Check(txn.AddInsert(client.GroundAtom("R", {StrCat("c", i)})));
    }
    Check(client.Apply(txn).status());
  }
  client.Close();
}

void ReaderLoop(LoopbackNetwork* network, Clock::time_point deadline,
                std::atomic<uint64_t>* total_reads,
                std::atomic<uint64_t>* sink) {
  auto conn = network->Connect();
  Check(conn.status());
  Client client(std::move(*conn));
  uint64_t reads = 0;
  uint64_t local_sink = 0;
  uint64_t op = 0;
  while (Clock::now() < deadline) {
    Atom pattern = client.GroundAtom("P", {StrCat("c", op % kNumConstants)});
    auto reply = client.Query({pattern});
    Check(reply.status());
    local_sink += reply->answers[0].size();
    ++reads;
    ++op;
  }
  total_reads->fetch_add(reads, std::memory_order_relaxed);
  sink->fetch_add(local_sink, std::memory_order_relaxed);
  client.Close();
}

void WriterLoop(LoopbackNetwork* network, Clock::time_point deadline,
                std::atomic<uint64_t>* total_writes) {
  auto conn = network->Connect();
  Check(conn.status());
  Client client(std::move(*conn));
  uint64_t writes = 0;
  bool in_r = false;  // R("w0") starts absent, so insert first
  while (Clock::now() < deadline) {
    Transaction txn;
    Atom fact = client.GroundAtom("R", {"w0"});
    Check((in_r ? txn.AddDelete(fact) : txn.AddInsert(fact)));
    in_r = !in_r;
    Check(client.Apply(txn).status());
    ++writes;
  }
  total_writes->fetch_add(writes, std::memory_order_relaxed);
  client.Close();
}

/// One replica stack: a fresh database tailing the primary, fronted by its
/// own Server on its own loopback network.
struct ReplicaStack {
  std::unique_ptr<DeductiveDatabase> db;
  std::unique_ptr<repl::Replica> replica;
  LoopbackNetwork network;
  std::unique_ptr<Server> server;
};

Row RunOne(int replicas) {
  Row row;
  row.config = replicas == 0 ? "primary-only"
                             : StrCat(replicas, "-replica",
                                      replicas == 1 ? "" : "s");
  row.replicas = replicas;

  char tmpl[] = "/tmp/replbenchXXXXXX";
  if (::mkdtemp(tmpl) == nullptr) {
    std::perror("mkdtemp");
    std::exit(1);
  }
  std::string dir = tmpl;
  auto opened = DeductiveDatabase::OpenPersistent(dir);
  Check(opened.status());
  std::unique_ptr<DeductiveDatabase> db = std::move(*opened);
  DeclareSchema(db.get());
  Check(db->Checkpoint());

  LoopbackNetwork primary_network;
  Server primary(db.get());
  Check(primary.Serve(primary_network.TakeListener()));
  SeedFacts(&primary_network);

  std::vector<std::unique_ptr<ReplicaStack>> stacks;
  for (int i = 0; i < replicas; ++i) {
    auto stack = std::make_unique<ReplicaStack>();
    stack->db = std::make_unique<DeductiveDatabase>();
    DeclareSchema(stack->db.get());
    Check(stack->db->EnterReplicaMode());
    LoopbackNetwork* feed_network = &primary_network;
    stack->replica = std::make_unique<repl::Replica>(
        stack->db.get(),
        [feed_network]() -> Result<std::unique_ptr<Connection>> {
          return feed_network->Connect();
        });
    Check(stack->replica->Start());
    ServerOptions options;
    options.replica_status = stack->replica.get();
    stack->server = std::make_unique<Server>(stack->db.get(), options);
    Check(stack->server->Serve(stack->network.TakeListener()));
    stacks.push_back(std::move(stack));
  }
  // Let the replicas catch up on the seed facts before the clock starts.
  for (const auto& stack : stacks) {
    while (stack->replica->replica_status().applied_seq <
           static_cast<uint64_t>(kNumConstants)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  std::atomic<uint64_t> total_reads{0};
  std::atomic<uint64_t> total_writes{0};
  std::atomic<uint64_t> sink{0};

  auto start = Clock::now();
  auto deadline = start + kRunFor;
  std::vector<std::thread> workers;
  workers.emplace_back(WriterLoop, &primary_network, deadline, &total_writes);
  for (int r = 0; r < kReaders; ++r) {
    // Readers split round-robin across the replica servers (or all hit the
    // primary in the baseline).
    LoopbackNetwork* network =
        replicas == 0 ? &primary_network : &stacks[r % replicas]->network;
    workers.emplace_back(ReaderLoop, network, deadline, &total_reads, &sink);
  }

  // Mid-run, sample each replica's staleness evidence the way a client
  // would: a Health round trip, reading the replication block.
  std::this_thread::sleep_for(kRunFor / 2);
  uint64_t lag_sum = 0;
  for (const auto& stack : stacks) {
    auto conn = stack->network.Connect();
    Check(conn.status());
    Client client(std::move(*conn));
    auto health = client.Health();
    Check(health.status());
    if (!health->has_replication) {
      std::fprintf(stderr, "replica Health carried no replication block\n");
      std::exit(1);
    }
    lag_sum += health->primary_last_durable_seq > health->applied_seq
                   ? health->primary_last_durable_seq - health->applied_seq
                   : 0;
    row.all_bounded = row.all_bounded && health->feed_bounded;
    client.Close();
  }
  if (replicas > 0) row.mean_lag = static_cast<double>(lag_sum) / replicas;

  for (std::thread& worker : workers) worker.join();
  auto end = Clock::now();

  for (const auto& stack : stacks) {
    stack->server->Stop();
    stack->replica->Stop();
  }
  primary.Stop();
  Check(db->Close());
  db.reset();
  std::string cmd = StrCat("rm -rf ", dir);
  if (std::system(cmd.c_str()) != 0) std::exit(1);

  row.reads = total_reads.load();
  row.writes = total_writes.load();
  row.seconds = std::chrono::duration<double>(end - start).count();
  row.read_qps = row.reads / row.seconds;
  row.write_qps = row.writes / row.seconds;
  return row;
}

}  // namespace

int main() {
  std::printf(
      "Replica read scale-out: 1 durable writer + %d point-query readers\n"
      "(%d constants, %lld ms per config, %u hardware threads)\n",
      kReaders, kNumConstants, static_cast<long long>(kRunFor.count()),
      std::thread::hardware_concurrency());
  std::printf("%14s %10s %10s %12s %12s %10s %10s\n", "config", "reads",
              "writes", "reads/s", "writes/s", "mean_lag", "bounded");

  std::vector<Row> rows;
  for (int replicas : {0, 2}) {
    Row row = RunOne(replicas);
    std::printf("%14s %10llu %10llu %12.0f %12.0f %10.1f %10s\n",
                row.config.c_str(),
                static_cast<unsigned long long>(row.reads),
                static_cast<unsigned long long>(row.writes), row.read_qps,
                row.write_qps, row.mean_lag,
                row.all_bounded ? "yes" : "NO");
    rows.push_back(row);
  }

  const double speedup =
      rows[0].read_qps > 0 ? rows[1].read_qps / rows[0].read_qps : 0;
  std::printf("aggregate read speedup (2 replicas vs primary-only): %.2fx\n",
              speedup);

  const char* json_dir = std::getenv("DEDDB_BENCH_JSON_DIR");
  std::string json_path =
      StrCat(json_dir != nullptr ? json_dir : ".", "/BENCH_repl.json");
  std::string out = StrCat(
      "{\"bench\":\"replica_lag\",\"constants\":", kNumConstants,
      ",\"readers\":", kReaders,
      ",\"hardware_threads\":", std::thread::hardware_concurrency(),
      ",\"read_speedup_2_replicas\":", speedup, ",\"rows\":[");
  bool first = true;
  for (const Row& row : rows) {
    if (!first) out += ",";
    first = false;
    out += StrCat("{\"config\":\"", row.config,
                  "\",\"replicas\":", row.replicas, ",\"reads\":", row.reads,
                  ",\"writes\":", row.writes, ",\"seconds\":", row.seconds,
                  ",\"read_qps\":", row.read_qps,
                  ",\"write_qps\":", row.write_qps,
                  ",\"mean_lag\":", row.mean_lag, ",\"all_bounded\":",
                  row.all_bounded ? "true" : "false", "}");
  }
  out += "]}\n";
  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::printf("could not write %s\n", json_path.c_str());
    return 1;
  }
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  std::printf("JSON report: %s\n", json_path.c_str());
  return 0;
}
