file(REMOVE_RECURSE
  "CMakeFiles/deddb_datalog.dir/atom.cc.o"
  "CMakeFiles/deddb_datalog.dir/atom.cc.o.d"
  "CMakeFiles/deddb_datalog.dir/predicate.cc.o"
  "CMakeFiles/deddb_datalog.dir/predicate.cc.o.d"
  "CMakeFiles/deddb_datalog.dir/program.cc.o"
  "CMakeFiles/deddb_datalog.dir/program.cc.o.d"
  "CMakeFiles/deddb_datalog.dir/rule.cc.o"
  "CMakeFiles/deddb_datalog.dir/rule.cc.o.d"
  "CMakeFiles/deddb_datalog.dir/substitution.cc.o"
  "CMakeFiles/deddb_datalog.dir/substitution.cc.o.d"
  "CMakeFiles/deddb_datalog.dir/symbol_table.cc.o"
  "CMakeFiles/deddb_datalog.dir/symbol_table.cc.o.d"
  "CMakeFiles/deddb_datalog.dir/term.cc.o"
  "CMakeFiles/deddb_datalog.dir/term.cc.o.d"
  "CMakeFiles/deddb_datalog.dir/unify.cc.o"
  "CMakeFiles/deddb_datalog.dir/unify.cc.o.d"
  "libdeddb_datalog.a"
  "libdeddb_datalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deddb_datalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
