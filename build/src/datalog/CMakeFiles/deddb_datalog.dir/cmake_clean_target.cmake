file(REMOVE_RECURSE
  "libdeddb_datalog.a"
)
