
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datalog/atom.cc" "src/datalog/CMakeFiles/deddb_datalog.dir/atom.cc.o" "gcc" "src/datalog/CMakeFiles/deddb_datalog.dir/atom.cc.o.d"
  "/root/repo/src/datalog/predicate.cc" "src/datalog/CMakeFiles/deddb_datalog.dir/predicate.cc.o" "gcc" "src/datalog/CMakeFiles/deddb_datalog.dir/predicate.cc.o.d"
  "/root/repo/src/datalog/program.cc" "src/datalog/CMakeFiles/deddb_datalog.dir/program.cc.o" "gcc" "src/datalog/CMakeFiles/deddb_datalog.dir/program.cc.o.d"
  "/root/repo/src/datalog/rule.cc" "src/datalog/CMakeFiles/deddb_datalog.dir/rule.cc.o" "gcc" "src/datalog/CMakeFiles/deddb_datalog.dir/rule.cc.o.d"
  "/root/repo/src/datalog/substitution.cc" "src/datalog/CMakeFiles/deddb_datalog.dir/substitution.cc.o" "gcc" "src/datalog/CMakeFiles/deddb_datalog.dir/substitution.cc.o.d"
  "/root/repo/src/datalog/symbol_table.cc" "src/datalog/CMakeFiles/deddb_datalog.dir/symbol_table.cc.o" "gcc" "src/datalog/CMakeFiles/deddb_datalog.dir/symbol_table.cc.o.d"
  "/root/repo/src/datalog/term.cc" "src/datalog/CMakeFiles/deddb_datalog.dir/term.cc.o" "gcc" "src/datalog/CMakeFiles/deddb_datalog.dir/term.cc.o.d"
  "/root/repo/src/datalog/unify.cc" "src/datalog/CMakeFiles/deddb_datalog.dir/unify.cc.o" "gcc" "src/datalog/CMakeFiles/deddb_datalog.dir/unify.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/deddb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
