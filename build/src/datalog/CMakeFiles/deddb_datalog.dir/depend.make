# Empty dependencies file for deddb_datalog.
# This may be replaced when dependencies are built.
