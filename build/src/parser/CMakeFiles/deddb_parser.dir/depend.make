# Empty dependencies file for deddb_parser.
# This may be replaced when dependencies are built.
