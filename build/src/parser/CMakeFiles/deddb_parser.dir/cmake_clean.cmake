file(REMOVE_RECURSE
  "CMakeFiles/deddb_parser.dir/lexer.cc.o"
  "CMakeFiles/deddb_parser.dir/lexer.cc.o.d"
  "CMakeFiles/deddb_parser.dir/parser.cc.o"
  "CMakeFiles/deddb_parser.dir/parser.cc.o.d"
  "libdeddb_parser.a"
  "libdeddb_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deddb_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
