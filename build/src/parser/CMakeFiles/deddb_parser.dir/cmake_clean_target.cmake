file(REMOVE_RECURSE
  "libdeddb_parser.a"
)
