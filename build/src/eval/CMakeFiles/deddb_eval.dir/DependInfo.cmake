
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/body_eval.cc" "src/eval/CMakeFiles/deddb_eval.dir/body_eval.cc.o" "gcc" "src/eval/CMakeFiles/deddb_eval.dir/body_eval.cc.o.d"
  "/root/repo/src/eval/bottom_up.cc" "src/eval/CMakeFiles/deddb_eval.dir/bottom_up.cc.o" "gcc" "src/eval/CMakeFiles/deddb_eval.dir/bottom_up.cc.o.d"
  "/root/repo/src/eval/dependency_graph.cc" "src/eval/CMakeFiles/deddb_eval.dir/dependency_graph.cc.o" "gcc" "src/eval/CMakeFiles/deddb_eval.dir/dependency_graph.cc.o.d"
  "/root/repo/src/eval/fact_provider.cc" "src/eval/CMakeFiles/deddb_eval.dir/fact_provider.cc.o" "gcc" "src/eval/CMakeFiles/deddb_eval.dir/fact_provider.cc.o.d"
  "/root/repo/src/eval/query_engine.cc" "src/eval/CMakeFiles/deddb_eval.dir/query_engine.cc.o" "gcc" "src/eval/CMakeFiles/deddb_eval.dir/query_engine.cc.o.d"
  "/root/repo/src/eval/stratification.cc" "src/eval/CMakeFiles/deddb_eval.dir/stratification.cc.o" "gcc" "src/eval/CMakeFiles/deddb_eval.dir/stratification.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/deddb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/datalog/CMakeFiles/deddb_datalog.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/deddb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
