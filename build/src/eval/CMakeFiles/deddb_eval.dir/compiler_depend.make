# Empty compiler generated dependencies file for deddb_eval.
# This may be replaced when dependencies are built.
