file(REMOVE_RECURSE
  "CMakeFiles/deddb_eval.dir/body_eval.cc.o"
  "CMakeFiles/deddb_eval.dir/body_eval.cc.o.d"
  "CMakeFiles/deddb_eval.dir/bottom_up.cc.o"
  "CMakeFiles/deddb_eval.dir/bottom_up.cc.o.d"
  "CMakeFiles/deddb_eval.dir/dependency_graph.cc.o"
  "CMakeFiles/deddb_eval.dir/dependency_graph.cc.o.d"
  "CMakeFiles/deddb_eval.dir/fact_provider.cc.o"
  "CMakeFiles/deddb_eval.dir/fact_provider.cc.o.d"
  "CMakeFiles/deddb_eval.dir/query_engine.cc.o"
  "CMakeFiles/deddb_eval.dir/query_engine.cc.o.d"
  "CMakeFiles/deddb_eval.dir/stratification.cc.o"
  "CMakeFiles/deddb_eval.dir/stratification.cc.o.d"
  "libdeddb_eval.a"
  "libdeddb_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deddb_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
