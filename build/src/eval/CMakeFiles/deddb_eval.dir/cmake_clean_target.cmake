file(REMOVE_RECURSE
  "libdeddb_eval.a"
)
