file(REMOVE_RECURSE
  "CMakeFiles/deddb_workload.dir/employment.cc.o"
  "CMakeFiles/deddb_workload.dir/employment.cc.o.d"
  "CMakeFiles/deddb_workload.dir/random_programs.cc.o"
  "CMakeFiles/deddb_workload.dir/random_programs.cc.o.d"
  "CMakeFiles/deddb_workload.dir/towers.cc.o"
  "CMakeFiles/deddb_workload.dir/towers.cc.o.d"
  "libdeddb_workload.a"
  "libdeddb_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deddb_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
