file(REMOVE_RECURSE
  "libdeddb_workload.a"
)
