# Empty dependencies file for deddb_workload.
# This may be replaced when dependencies are built.
