
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/employment.cc" "src/workload/CMakeFiles/deddb_workload.dir/employment.cc.o" "gcc" "src/workload/CMakeFiles/deddb_workload.dir/employment.cc.o.d"
  "/root/repo/src/workload/random_programs.cc" "src/workload/CMakeFiles/deddb_workload.dir/random_programs.cc.o" "gcc" "src/workload/CMakeFiles/deddb_workload.dir/random_programs.cc.o.d"
  "/root/repo/src/workload/towers.cc" "src/workload/CMakeFiles/deddb_workload.dir/towers.cc.o" "gcc" "src/workload/CMakeFiles/deddb_workload.dir/towers.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/deddb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/deddb_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/problems/CMakeFiles/deddb_problems.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/deddb_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/events/CMakeFiles/deddb_events.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/deddb_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/deddb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/datalog/CMakeFiles/deddb_datalog.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/deddb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
