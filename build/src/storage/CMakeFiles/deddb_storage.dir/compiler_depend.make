# Empty compiler generated dependencies file for deddb_storage.
# This may be replaced when dependencies are built.
