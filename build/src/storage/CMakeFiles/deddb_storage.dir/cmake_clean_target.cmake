file(REMOVE_RECURSE
  "libdeddb_storage.a"
)
