file(REMOVE_RECURSE
  "CMakeFiles/deddb_storage.dir/database.cc.o"
  "CMakeFiles/deddb_storage.dir/database.cc.o.d"
  "CMakeFiles/deddb_storage.dir/fact_store.cc.o"
  "CMakeFiles/deddb_storage.dir/fact_store.cc.o.d"
  "CMakeFiles/deddb_storage.dir/relation.cc.o"
  "CMakeFiles/deddb_storage.dir/relation.cc.o.d"
  "CMakeFiles/deddb_storage.dir/transaction.cc.o"
  "CMakeFiles/deddb_storage.dir/transaction.cc.o.d"
  "CMakeFiles/deddb_storage.dir/tuple.cc.o"
  "CMakeFiles/deddb_storage.dir/tuple.cc.o.d"
  "libdeddb_storage.a"
  "libdeddb_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deddb_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
