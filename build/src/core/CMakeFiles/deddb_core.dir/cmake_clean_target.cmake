file(REMOVE_RECURSE
  "libdeddb_core.a"
)
