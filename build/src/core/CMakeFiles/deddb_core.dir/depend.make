# Empty dependencies file for deddb_core.
# This may be replaced when dependencies are built.
