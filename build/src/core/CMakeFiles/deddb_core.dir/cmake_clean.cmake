file(REMOVE_RECURSE
  "CMakeFiles/deddb_core.dir/deductive_database.cc.o"
  "CMakeFiles/deddb_core.dir/deductive_database.cc.o.d"
  "CMakeFiles/deddb_core.dir/update_processor.cc.o"
  "CMakeFiles/deddb_core.dir/update_processor.cc.o.d"
  "libdeddb_core.a"
  "libdeddb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deddb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
