# Empty compiler generated dependencies file for deddb_util.
# This may be replaced when dependencies are built.
