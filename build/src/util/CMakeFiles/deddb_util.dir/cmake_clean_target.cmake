file(REMOVE_RECURSE
  "libdeddb_util.a"
)
