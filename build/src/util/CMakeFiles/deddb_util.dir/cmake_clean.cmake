file(REMOVE_RECURSE
  "CMakeFiles/deddb_util.dir/rng.cc.o"
  "CMakeFiles/deddb_util.dir/rng.cc.o.d"
  "CMakeFiles/deddb_util.dir/status.cc.o"
  "CMakeFiles/deddb_util.dir/status.cc.o.d"
  "CMakeFiles/deddb_util.dir/strings.cc.o"
  "CMakeFiles/deddb_util.dir/strings.cc.o.d"
  "libdeddb_util.a"
  "libdeddb_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deddb_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
