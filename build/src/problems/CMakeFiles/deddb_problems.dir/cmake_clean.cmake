file(REMOVE_RECURSE
  "CMakeFiles/deddb_problems.dir/condition_activation.cc.o"
  "CMakeFiles/deddb_problems.dir/condition_activation.cc.o.d"
  "CMakeFiles/deddb_problems.dir/condition_monitoring.cc.o"
  "CMakeFiles/deddb_problems.dir/condition_monitoring.cc.o.d"
  "CMakeFiles/deddb_problems.dir/integrity_checking.cc.o"
  "CMakeFiles/deddb_problems.dir/integrity_checking.cc.o.d"
  "CMakeFiles/deddb_problems.dir/integrity_maintenance.cc.o"
  "CMakeFiles/deddb_problems.dir/integrity_maintenance.cc.o.d"
  "CMakeFiles/deddb_problems.dir/repair.cc.o"
  "CMakeFiles/deddb_problems.dir/repair.cc.o.d"
  "CMakeFiles/deddb_problems.dir/rule_updates.cc.o"
  "CMakeFiles/deddb_problems.dir/rule_updates.cc.o.d"
  "CMakeFiles/deddb_problems.dir/side_effects.cc.o"
  "CMakeFiles/deddb_problems.dir/side_effects.cc.o.d"
  "CMakeFiles/deddb_problems.dir/translations.cc.o"
  "CMakeFiles/deddb_problems.dir/translations.cc.o.d"
  "CMakeFiles/deddb_problems.dir/view_maintenance.cc.o"
  "CMakeFiles/deddb_problems.dir/view_maintenance.cc.o.d"
  "CMakeFiles/deddb_problems.dir/view_updating.cc.o"
  "CMakeFiles/deddb_problems.dir/view_updating.cc.o.d"
  "libdeddb_problems.a"
  "libdeddb_problems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deddb_problems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
