file(REMOVE_RECURSE
  "libdeddb_problems.a"
)
