
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/problems/condition_activation.cc" "src/problems/CMakeFiles/deddb_problems.dir/condition_activation.cc.o" "gcc" "src/problems/CMakeFiles/deddb_problems.dir/condition_activation.cc.o.d"
  "/root/repo/src/problems/condition_monitoring.cc" "src/problems/CMakeFiles/deddb_problems.dir/condition_monitoring.cc.o" "gcc" "src/problems/CMakeFiles/deddb_problems.dir/condition_monitoring.cc.o.d"
  "/root/repo/src/problems/integrity_checking.cc" "src/problems/CMakeFiles/deddb_problems.dir/integrity_checking.cc.o" "gcc" "src/problems/CMakeFiles/deddb_problems.dir/integrity_checking.cc.o.d"
  "/root/repo/src/problems/integrity_maintenance.cc" "src/problems/CMakeFiles/deddb_problems.dir/integrity_maintenance.cc.o" "gcc" "src/problems/CMakeFiles/deddb_problems.dir/integrity_maintenance.cc.o.d"
  "/root/repo/src/problems/repair.cc" "src/problems/CMakeFiles/deddb_problems.dir/repair.cc.o" "gcc" "src/problems/CMakeFiles/deddb_problems.dir/repair.cc.o.d"
  "/root/repo/src/problems/rule_updates.cc" "src/problems/CMakeFiles/deddb_problems.dir/rule_updates.cc.o" "gcc" "src/problems/CMakeFiles/deddb_problems.dir/rule_updates.cc.o.d"
  "/root/repo/src/problems/side_effects.cc" "src/problems/CMakeFiles/deddb_problems.dir/side_effects.cc.o" "gcc" "src/problems/CMakeFiles/deddb_problems.dir/side_effects.cc.o.d"
  "/root/repo/src/problems/translations.cc" "src/problems/CMakeFiles/deddb_problems.dir/translations.cc.o" "gcc" "src/problems/CMakeFiles/deddb_problems.dir/translations.cc.o.d"
  "/root/repo/src/problems/view_maintenance.cc" "src/problems/CMakeFiles/deddb_problems.dir/view_maintenance.cc.o" "gcc" "src/problems/CMakeFiles/deddb_problems.dir/view_maintenance.cc.o.d"
  "/root/repo/src/problems/view_updating.cc" "src/problems/CMakeFiles/deddb_problems.dir/view_updating.cc.o" "gcc" "src/problems/CMakeFiles/deddb_problems.dir/view_updating.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/interp/CMakeFiles/deddb_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/events/CMakeFiles/deddb_events.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/deddb_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/deddb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/datalog/CMakeFiles/deddb_datalog.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/deddb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
