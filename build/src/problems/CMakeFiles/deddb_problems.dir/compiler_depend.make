# Empty compiler generated dependencies file for deddb_problems.
# This may be replaced when dependencies are built.
