file(REMOVE_RECURSE
  "CMakeFiles/deddb_events.dir/event_compiler.cc.o"
  "CMakeFiles/deddb_events.dir/event_compiler.cc.o.d"
  "CMakeFiles/deddb_events.dir/event_rules.cc.o"
  "CMakeFiles/deddb_events.dir/event_rules.cc.o.d"
  "CMakeFiles/deddb_events.dir/transaction_provider.cc.o"
  "CMakeFiles/deddb_events.dir/transaction_provider.cc.o.d"
  "CMakeFiles/deddb_events.dir/transition.cc.o"
  "CMakeFiles/deddb_events.dir/transition.cc.o.d"
  "libdeddb_events.a"
  "libdeddb_events.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deddb_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
