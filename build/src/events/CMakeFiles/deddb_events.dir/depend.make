# Empty dependencies file for deddb_events.
# This may be replaced when dependencies are built.
