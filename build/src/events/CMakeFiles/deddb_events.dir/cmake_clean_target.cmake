file(REMOVE_RECURSE
  "libdeddb_events.a"
)
