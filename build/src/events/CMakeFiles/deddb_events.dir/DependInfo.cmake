
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/events/event_compiler.cc" "src/events/CMakeFiles/deddb_events.dir/event_compiler.cc.o" "gcc" "src/events/CMakeFiles/deddb_events.dir/event_compiler.cc.o.d"
  "/root/repo/src/events/event_rules.cc" "src/events/CMakeFiles/deddb_events.dir/event_rules.cc.o" "gcc" "src/events/CMakeFiles/deddb_events.dir/event_rules.cc.o.d"
  "/root/repo/src/events/transaction_provider.cc" "src/events/CMakeFiles/deddb_events.dir/transaction_provider.cc.o" "gcc" "src/events/CMakeFiles/deddb_events.dir/transaction_provider.cc.o.d"
  "/root/repo/src/events/transition.cc" "src/events/CMakeFiles/deddb_events.dir/transition.cc.o" "gcc" "src/events/CMakeFiles/deddb_events.dir/transition.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/deddb_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/deddb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/datalog/CMakeFiles/deddb_datalog.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/deddb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
