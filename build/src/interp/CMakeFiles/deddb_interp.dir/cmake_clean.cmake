file(REMOVE_RECURSE
  "CMakeFiles/deddb_interp.dir/derived_events.cc.o"
  "CMakeFiles/deddb_interp.dir/derived_events.cc.o.d"
  "CMakeFiles/deddb_interp.dir/dnf.cc.o"
  "CMakeFiles/deddb_interp.dir/dnf.cc.o.d"
  "CMakeFiles/deddb_interp.dir/domain.cc.o"
  "CMakeFiles/deddb_interp.dir/domain.cc.o.d"
  "CMakeFiles/deddb_interp.dir/downward.cc.o"
  "CMakeFiles/deddb_interp.dir/downward.cc.o.d"
  "CMakeFiles/deddb_interp.dir/old_state.cc.o"
  "CMakeFiles/deddb_interp.dir/old_state.cc.o.d"
  "CMakeFiles/deddb_interp.dir/upward.cc.o"
  "CMakeFiles/deddb_interp.dir/upward.cc.o.d"
  "libdeddb_interp.a"
  "libdeddb_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deddb_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
