
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/interp/derived_events.cc" "src/interp/CMakeFiles/deddb_interp.dir/derived_events.cc.o" "gcc" "src/interp/CMakeFiles/deddb_interp.dir/derived_events.cc.o.d"
  "/root/repo/src/interp/dnf.cc" "src/interp/CMakeFiles/deddb_interp.dir/dnf.cc.o" "gcc" "src/interp/CMakeFiles/deddb_interp.dir/dnf.cc.o.d"
  "/root/repo/src/interp/domain.cc" "src/interp/CMakeFiles/deddb_interp.dir/domain.cc.o" "gcc" "src/interp/CMakeFiles/deddb_interp.dir/domain.cc.o.d"
  "/root/repo/src/interp/downward.cc" "src/interp/CMakeFiles/deddb_interp.dir/downward.cc.o" "gcc" "src/interp/CMakeFiles/deddb_interp.dir/downward.cc.o.d"
  "/root/repo/src/interp/old_state.cc" "src/interp/CMakeFiles/deddb_interp.dir/old_state.cc.o" "gcc" "src/interp/CMakeFiles/deddb_interp.dir/old_state.cc.o.d"
  "/root/repo/src/interp/upward.cc" "src/interp/CMakeFiles/deddb_interp.dir/upward.cc.o" "gcc" "src/interp/CMakeFiles/deddb_interp.dir/upward.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/events/CMakeFiles/deddb_events.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/deddb_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/deddb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/datalog/CMakeFiles/deddb_datalog.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/deddb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
