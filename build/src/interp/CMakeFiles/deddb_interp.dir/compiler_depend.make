# Empty compiler generated dependencies file for deddb_interp.
# This may be replaced when dependencies are built.
