file(REMOVE_RECURSE
  "libdeddb_interp.a"
)
