# Empty dependencies file for view_update_assistant.
# This may be replaced when dependencies are built.
