file(REMOVE_RECURSE
  "CMakeFiles/view_update_assistant.dir/view_update_assistant.cpp.o"
  "CMakeFiles/view_update_assistant.dir/view_update_assistant.cpp.o.d"
  "view_update_assistant"
  "view_update_assistant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/view_update_assistant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
