file(REMOVE_RECURSE
  "CMakeFiles/employment_agency.dir/employment_agency.cpp.o"
  "CMakeFiles/employment_agency.dir/employment_agency.cpp.o.d"
  "employment_agency"
  "employment_agency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/employment_agency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
