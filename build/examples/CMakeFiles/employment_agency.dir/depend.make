# Empty dependencies file for employment_agency.
# This may be replaced when dependencies are built.
