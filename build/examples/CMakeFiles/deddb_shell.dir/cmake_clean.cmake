file(REMOVE_RECURSE
  "CMakeFiles/deddb_shell.dir/deddb_shell.cpp.o"
  "CMakeFiles/deddb_shell.dir/deddb_shell.cpp.o.d"
  "deddb_shell"
  "deddb_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deddb_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
