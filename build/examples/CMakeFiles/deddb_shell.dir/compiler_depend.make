# Empty compiler generated dependencies file for deddb_shell.
# This may be replaced when dependencies are built.
