# Empty dependencies file for condition_monitor.
# This may be replaced when dependencies are built.
