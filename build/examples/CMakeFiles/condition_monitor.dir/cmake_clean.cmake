file(REMOVE_RECURSE
  "CMakeFiles/condition_monitor.dir/condition_monitor.cpp.o"
  "CMakeFiles/condition_monitor.dir/condition_monitor.cpp.o.d"
  "condition_monitor"
  "condition_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/condition_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
