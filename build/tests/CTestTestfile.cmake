# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/paper_examples_test[1]_include.cmake")
include("/root/repo/build/tests/property_framework_test[1]_include.cmake")
include("/root/repo/build/tests/status_test[1]_include.cmake")
include("/root/repo/build/tests/strings_test[1]_include.cmake")
include("/root/repo/build/tests/rng_test[1]_include.cmake")
include("/root/repo/build/tests/datalog_test[1]_include.cmake")
include("/root/repo/build/tests/predicate_program_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/events_test[1]_include.cmake")
include("/root/repo/build/tests/dnf_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/interp_test[1]_include.cmake")
include("/root/repo/build/tests/problems_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/table41_test[1]_include.cmake")
include("/root/repo/build/tests/rule_updates_test[1]_include.cmake")
include("/root/repo/build/tests/property_algebra_test[1]_include.cmake")
include("/root/repo/build/tests/stress_edge_test[1]_include.cmake")
include("/root/repo/build/tests/tower_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/roundtrip_test[1]_include.cmake")
include("/root/repo/build/tests/exhaustive_downward_test[1]_include.cmake")
include("/root/repo/build/tests/exhaustive_upward_test[1]_include.cmake")
include("/root/repo/build/tests/materialized_interplay_test[1]_include.cmake")
