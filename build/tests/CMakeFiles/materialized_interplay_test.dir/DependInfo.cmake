
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/materialized_interplay_test.cc" "tests/CMakeFiles/materialized_interplay_test.dir/materialized_interplay_test.cc.o" "gcc" "tests/CMakeFiles/materialized_interplay_test.dir/materialized_interplay_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/deddb_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/deddb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/problems/CMakeFiles/deddb_problems.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/deddb_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/events/CMakeFiles/deddb_events.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/deddb_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/deddb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/deddb_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/datalog/CMakeFiles/deddb_datalog.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/deddb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
