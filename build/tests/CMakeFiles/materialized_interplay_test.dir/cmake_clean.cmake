file(REMOVE_RECURSE
  "CMakeFiles/materialized_interplay_test.dir/materialized_interplay_test.cc.o"
  "CMakeFiles/materialized_interplay_test.dir/materialized_interplay_test.cc.o.d"
  "materialized_interplay_test"
  "materialized_interplay_test.pdb"
  "materialized_interplay_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/materialized_interplay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
