# Empty dependencies file for materialized_interplay_test.
# This may be replaced when dependencies are built.
