# Empty dependencies file for exhaustive_downward_test.
# This may be replaced when dependencies are built.
