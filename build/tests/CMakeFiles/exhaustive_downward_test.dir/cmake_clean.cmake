file(REMOVE_RECURSE
  "CMakeFiles/exhaustive_downward_test.dir/exhaustive_downward_test.cc.o"
  "CMakeFiles/exhaustive_downward_test.dir/exhaustive_downward_test.cc.o.d"
  "exhaustive_downward_test"
  "exhaustive_downward_test.pdb"
  "exhaustive_downward_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exhaustive_downward_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
