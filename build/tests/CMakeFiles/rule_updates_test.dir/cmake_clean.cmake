file(REMOVE_RECURSE
  "CMakeFiles/rule_updates_test.dir/rule_updates_test.cc.o"
  "CMakeFiles/rule_updates_test.dir/rule_updates_test.cc.o.d"
  "rule_updates_test"
  "rule_updates_test.pdb"
  "rule_updates_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rule_updates_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
