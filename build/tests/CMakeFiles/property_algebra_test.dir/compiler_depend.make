# Empty compiler generated dependencies file for property_algebra_test.
# This may be replaced when dependencies are built.
