file(REMOVE_RECURSE
  "CMakeFiles/property_algebra_test.dir/property_algebra_test.cc.o"
  "CMakeFiles/property_algebra_test.dir/property_algebra_test.cc.o.d"
  "property_algebra_test"
  "property_algebra_test.pdb"
  "property_algebra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_algebra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
