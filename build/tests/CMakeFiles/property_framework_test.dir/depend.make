# Empty dependencies file for property_framework_test.
# This may be replaced when dependencies are built.
