file(REMOVE_RECURSE
  "CMakeFiles/property_framework_test.dir/property_framework_test.cc.o"
  "CMakeFiles/property_framework_test.dir/property_framework_test.cc.o.d"
  "property_framework_test"
  "property_framework_test.pdb"
  "property_framework_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_framework_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
