# Empty dependencies file for predicate_program_test.
# This may be replaced when dependencies are built.
