file(REMOVE_RECURSE
  "CMakeFiles/predicate_program_test.dir/predicate_program_test.cc.o"
  "CMakeFiles/predicate_program_test.dir/predicate_program_test.cc.o.d"
  "predicate_program_test"
  "predicate_program_test.pdb"
  "predicate_program_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predicate_program_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
