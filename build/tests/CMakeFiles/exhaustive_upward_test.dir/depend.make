# Empty dependencies file for exhaustive_upward_test.
# This may be replaced when dependencies are built.
