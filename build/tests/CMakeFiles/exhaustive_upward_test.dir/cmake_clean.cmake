file(REMOVE_RECURSE
  "CMakeFiles/exhaustive_upward_test.dir/exhaustive_upward_test.cc.o"
  "CMakeFiles/exhaustive_upward_test.dir/exhaustive_upward_test.cc.o.d"
  "exhaustive_upward_test"
  "exhaustive_upward_test.pdb"
  "exhaustive_upward_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exhaustive_upward_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
