file(REMOVE_RECURSE
  "CMakeFiles/table41_test.dir/table41_test.cc.o"
  "CMakeFiles/table41_test.dir/table41_test.cc.o.d"
  "table41_test"
  "table41_test.pdb"
  "table41_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table41_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
