# Empty compiler generated dependencies file for table41_test.
# This may be replaced when dependencies are built.
