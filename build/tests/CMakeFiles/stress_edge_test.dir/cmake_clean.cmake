file(REMOVE_RECURSE
  "CMakeFiles/stress_edge_test.dir/stress_edge_test.cc.o"
  "CMakeFiles/stress_edge_test.dir/stress_edge_test.cc.o.d"
  "stress_edge_test"
  "stress_edge_test.pdb"
  "stress_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stress_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
