file(REMOVE_RECURSE
  "CMakeFiles/tower_sweep_test.dir/tower_sweep_test.cc.o"
  "CMakeFiles/tower_sweep_test.dir/tower_sweep_test.cc.o.d"
  "tower_sweep_test"
  "tower_sweep_test.pdb"
  "tower_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tower_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
