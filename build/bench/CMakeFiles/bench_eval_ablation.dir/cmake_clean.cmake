file(REMOVE_RECURSE
  "CMakeFiles/bench_eval_ablation.dir/bench_eval_ablation.cc.o"
  "CMakeFiles/bench_eval_ablation.dir/bench_eval_ablation.cc.o.d"
  "bench_eval_ablation"
  "bench_eval_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eval_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
