# Empty dependencies file for bench_simplify_ablation.
# This may be replaced when dependencies are built.
