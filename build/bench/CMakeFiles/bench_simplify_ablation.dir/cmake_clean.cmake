file(REMOVE_RECURSE
  "CMakeFiles/bench_simplify_ablation.dir/bench_simplify_ablation.cc.o"
  "CMakeFiles/bench_simplify_ablation.dir/bench_simplify_ablation.cc.o.d"
  "bench_simplify_ablation"
  "bench_simplify_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_simplify_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
