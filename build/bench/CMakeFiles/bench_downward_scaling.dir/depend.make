# Empty dependencies file for bench_downward_scaling.
# This may be replaced when dependencies are built.
