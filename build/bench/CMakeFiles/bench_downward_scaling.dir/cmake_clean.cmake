file(REMOVE_RECURSE
  "CMakeFiles/bench_downward_scaling.dir/bench_downward_scaling.cc.o"
  "CMakeFiles/bench_downward_scaling.dir/bench_downward_scaling.cc.o.d"
  "bench_downward_scaling"
  "bench_downward_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_downward_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
