file(REMOVE_RECURSE
  "CMakeFiles/bench_table41.dir/bench_table41.cc.o"
  "CMakeFiles/bench_table41.dir/bench_table41.cc.o.d"
  "bench_table41"
  "bench_table41.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table41.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
