file(REMOVE_RECURSE
  "CMakeFiles/bench_processor.dir/bench_processor.cc.o"
  "CMakeFiles/bench_processor.dir/bench_processor.cc.o.d"
  "bench_processor"
  "bench_processor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_processor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
