# Empty dependencies file for bench_processor.
# This may be replaced when dependencies are built.
