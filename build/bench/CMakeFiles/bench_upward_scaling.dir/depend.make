# Empty dependencies file for bench_upward_scaling.
# This may be replaced when dependencies are built.
