file(REMOVE_RECURSE
  "CMakeFiles/bench_upward_scaling.dir/bench_upward_scaling.cc.o"
  "CMakeFiles/bench_upward_scaling.dir/bench_upward_scaling.cc.o.d"
  "bench_upward_scaling"
  "bench_upward_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_upward_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
