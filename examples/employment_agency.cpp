// The employment-agency scenario of paper §5 (Examples 5.1-5.3), run through
// the whole Table-4.1 problem catalogue: integrity checking, view updating
// with integrity maintenance, preventing side effects, repairing an
// inconsistent state, and the combined update-processing pipeline of §5.3.

#include <cstdio>

#include "core/deductive_database.h"
#include "core/update_processor.h"
#include "parser/parser.h"

using namespace deddb;  // NOLINT — example brevity

namespace {

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::printf("%s failed: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  DeductiveDatabase db;
  auto loaded = LoadProgram(&db, R"(
    base La/1.         % person is in labour age
    base Works/1.      % person works for some company
    base U_benefit/1.  % person receives an unemployment benefit
    view Unemp/1.
    ic Ic1/1.          % every unemployed person must receive a benefit

    La(Dolors).
    U_benefit(Dolors).

    Unemp(x) <- La(x) & not Works(x).
    Ic1(x) <- Unemp(x) & not U_benefit(x).
  )");
  Check(loaded.status(), "load");

  // --- §5.1.1 integrity checking (Example 5.1) -----------------------------
  std::printf("== Integrity checking (Example 5.1)\n");
  auto txn = ParseTransaction(&db, "del U_benefit(Dolors)");
  auto check = db.CheckIntegrity(*txn);
  Check(check.status(), "CheckIntegrity");
  std::printf("T=%s violates integrity? %s\n",
              txn->ToString(db.symbols()).c_str(),
              check->violated ? "yes -> reject" : "no");

  // --- §5.2.1 view updating (Example 5.2) ----------------------------------
  std::printf("\n== View updating (Example 5.2)\n");
  auto request = ParseRequest(&db, "del Unemp(Dolors)");
  auto translations = db.TranslateViewUpdate(*request);
  Check(translations.status(), "TranslateViewUpdate");
  std::printf("request %s has %zu translations:\n",
              request->ToString(db.symbols()).c_str(),
              translations->translations.size());
  for (const auto& t : translations->translations) {
    std::printf("  %s\n", t.ToString(db.symbols()).c_str());
  }

  // --- §5.2.2 preventing side effects (Example 5.3) ------------------------
  std::printf("\n== Preventing side effects (Example 5.3)\n");
  auto txn2 = ParseTransaction(&db, "ins La(Maria)");
  SymbolId unemp = db.database().FindPredicate("Unemp").value();
  RequestedEvent unwanted;
  unwanted.is_insert = true;
  unwanted.predicate = unemp;
  unwanted.args = {db.Constant("Maria")};
  auto prevented = db.PreventSideEffects(*txn2, {unwanted});
  Check(prevented.status(), "PreventSideEffects");
  for (const auto& t : prevented->translations) {
    std::printf("T=%s extended to %s avoids ins Unemp(Maria)\n",
                txn2->ToString(db.symbols()).c_str(),
                t.transaction.ToString(db.symbols()).c_str());
  }

  // --- §5.2.4 integrity maintenance ----------------------------------------
  std::printf("\n== Integrity maintenance (§5.2.4)\n");
  auto repairs = db.MaintainIntegrity(*txn);
  Check(repairs.status(), "MaintainIntegrity");
  std::printf("repaired versions of %s:\n", txn->ToString(db.symbols()).c_str());
  for (const auto& t : repairs->translations) {
    std::printf("  %s\n", t.transaction.ToString(db.symbols()).c_str());
  }

  // --- §5.2.3 repairing an inconsistent database ---------------------------
  std::printf("\n== Repairing an inconsistent database (§5.2.3)\n");
  Check(db.RemoveFact(db.GroundAtom("U_benefit", {"Dolors"}).value()),
        "RemoveFact");
  std::printf("database consistent now? %s\n",
              db.IsConsistent().value() ? "yes" : "no");
  auto repair = db.RepairDatabase();
  Check(repair.status(), "RepairDatabase");
  std::printf("possible repairs:\n");
  for (const auto& t : repair->translations) {
    std::printf("  %s\n", t.transaction.ToString(db.symbols()).c_str());
  }
  // Apply the first repair.
  if (!repair->translations.empty()) {
    Check(db.Apply(repair->translations[0].transaction), "Apply repair");
    std::printf("applied %s; consistent now? %s\n",
                repair->translations[0]
                    .transaction.ToString(db.symbols())
                    .c_str(),
                db.IsConsistent().value() ? "yes" : "no");
  }

  // --- §5.3 combined pipeline ----------------------------------------------
  std::printf("\n== Combined update processing (§5.3)\n");
  UpdateProcessor processor(&db);
  auto txn3 = ParseTransaction(&db, "ins La(Pere)");
  auto report = processor.ProcessTransaction(*txn3, /*apply=*/false);
  Check(report.status(), "ProcessTransaction");
  std::printf("T=%s -> %s\n", txn3->ToString(db.symbols()).c_str(),
              report->ToString(db.symbols()).c_str());
  return 0;
}
