// Durability walkthrough (DESIGN.md §8): the employment database as a
// persistent store. Every run of this program reopens the same directory,
// recovers the facts committed by previous runs (snapshot + WAL replay),
// admits one more person through the update processor, and checkpoints.
//
//   ./persistent_store [dir]     (default /tmp/deddb_store)
//
// Run it a few times and watch the population grow; kill it between the
// commit and the checkpoint and the committed transaction still survives —
// the durable commit record in the WAL, not the checkpoint, is the commit
// point.

#include <cstdio>

#include "core/deductive_database.h"
#include "core/update_processor.h"
#include "parser/parser.h"
#include "util/strings.h"

using namespace deddb;  // NOLINT — example brevity

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "/tmp/deddb_store";

  auto opened = DeductiveDatabase::OpenPersistent(dir);
  if (!opened.ok()) {
    std::printf("open failed: %s\n", opened.status().ToString().c_str());
    return 1;
  }
  DeductiveDatabase& db = **opened;

  // First run only: declare the schema, then checkpoint — the WAL covers
  // fact transactions; declarations and rules become durable at a
  // checkpoint (see the durability contract on OpenPersistent).
  if (!db.database().FindPredicate("La").ok()) {
    auto loaded = LoadProgram(&db, R"(
      base La/1.
      base Works/2.
      view Emp/1.
      view Unemp/1.
      Emp(x) <- Works(x, y).
      Unemp(x) <- La(x) & not Emp(x).
    )");
    if (!loaded.ok()) {
      std::printf("load failed: %s\n", loaded.status().ToString().c_str());
      return 1;
    }
    if (Status s = db.Checkpoint(); !s.ok()) {
      std::printf("checkpoint failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("initialized fresh store in %s\n", dir.c_str());
  }

  const size_t generation = db.database().facts().TotalFacts();
  std::string person = StrCat("person", generation);

  // Commit one transaction through the update processor: integrity-checked,
  // durably logged before it is applied, recovered on the next run.
  Transaction txn;
  (void)txn.AddInsert(db.GroundAtom("La", {person}).value());
  UpdateProcessor processor(&db);
  auto report = processor.ProcessTransaction(txn);
  if (!report.ok() || !report->accepted) {
    std::printf("commit failed\n");
    return 1;
  }
  std::printf("committed ins La(%s)  [seq %llu]\n", person.c_str(),
              static_cast<unsigned long long>(
                  db.persistence()->stats().last_seq));

  std::printf("store now holds %zu base facts across runs:\n",
              db.database().facts().TotalFacts());
  db.database().facts().ForEach([&](SymbolId pred, const Tuple& t) {
    std::string line = StrCat("  ", db.symbols().NameOf(pred), "(");
    for (size_t i = 0; i < t.size(); ++i) {
      if (i > 0) line += ", ";
      line += db.symbols().NameOf(t[i]);
    }
    std::printf("%s)\n", line.c_str());
  });

  // Compact: snapshot everything and truncate the log.
  if (Status s = db.Close(); !s.ok()) {
    std::printf("close failed: %s\n", s.ToString().c_str());
    return 1;
  }
  return 0;
}
