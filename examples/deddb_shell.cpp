// An interactive shell for the update-processing system (paper §1: "an
// update processing system that provides the users with a uniform interface
// in which they can request different kinds of updates").
//
// Usage:  deddb_shell [program-file]
//
// Commands (terminate statements with '.'; schema/fact/rule statements use
// the surface syntax of parser/parser.h):
//   txn ins Q(A), del R(B)      process a transaction through the §5.3
//                               pipeline (check + monitor + maintain views)
//   update ins V(A), del W(B)   translate a view-update request (downward,
//                               with integrity maintenance)
//   events ins Q(A)             show the induced events of a transaction
//                               without applying it (upward)
//   repair                      repair an inconsistent database
//   consistent                  report Ic⁰
//   facts / rules               dump the database
//   quit
//
// Anything else is parsed as program statements (declarations, facts,
// rules) and loaded.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/deductive_database.h"
#include "core/update_processor.h"
#include "parser/parser.h"
#include "util/strings.h"

using namespace deddb;  // NOLINT — example brevity

namespace {

void HandleTxn(DeductiveDatabase* db, UpdateProcessor* processor,
               const std::string& body) {
  auto txn = ParseTransaction(db, body);
  if (!txn.ok()) {
    std::printf("error: %s\n", txn.status().ToString().c_str());
    return;
  }
  auto report = processor->ProcessTransaction(*txn, /*apply=*/true);
  if (!report.ok()) {
    std::printf("error: %s\n", report.status().ToString().c_str());
    return;
  }
  std::printf("%s\n", report->ToString(db->symbols()).c_str());
}

void HandleUpdate(DeductiveDatabase* db, UpdateProcessor* processor,
                  const std::string& body) {
  auto request = ParseRequest(db, body);
  if (!request.ok()) {
    std::printf("error: %s\n", request.status().ToString().c_str());
    return;
  }
  auto outcome = processor->ProcessViewUpdate(*request);
  if (!outcome.ok()) {
    std::printf("error: %s\n", outcome.status().ToString().c_str());
    return;
  }
  if (outcome->translations.empty()) {
    std::printf("no translation satisfies the request\n");
    return;
  }
  std::printf("translations (pick one and run it as a txn):\n");
  for (const auto& t : outcome->translations) {
    std::printf("  %s\n", t.transaction.ToString(db->symbols()).c_str());
  }
}

void HandleEvents(DeductiveDatabase* db, const std::string& body) {
  auto txn = ParseTransaction(db, body);
  if (!txn.ok()) {
    std::printf("error: %s\n", txn.status().ToString().c_str());
    return;
  }
  auto events = db->InducedEvents(*txn);
  if (!events.ok()) {
    std::printf("error: %s\n", events.status().ToString().c_str());
    return;
  }
  std::printf("induced: %s\n", events->ToString(db->symbols()).c_str());
}

void HandleRepair(DeductiveDatabase* db) {
  auto result = db->RepairDatabase();
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return;
  }
  std::printf("repairs:\n");
  for (const auto& t : result->translations) {
    std::printf("  %s\n", t.transaction.ToString(db->symbols()).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  DeductiveDatabase db;
  UpdateProcessor processor(&db);

  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::printf("cannot open %s\n", argv[1]);
      return 1;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    auto loaded = LoadProgram(&db, buffer.str());
    if (!loaded.ok()) {
      std::printf("load failed: %s\n", loaded.status().ToString().c_str());
      return 1;
    }
    std::printf("loaded %zu statements from %s\n", *loaded, argv[1]);
    if (db.database().HasConstraints()) {
      auto consistent = db.IsConsistent();
      std::printf("consistent: %s\n",
                  consistent.ok() && *consistent ? "yes" : "NO");
    }
    auto init = db.InitializeMaterializedViews();
    if (!init.ok()) std::printf("view init: %s\n", init.ToString().c_str());
  }

  std::string line;
  std::printf("deddb> ");
  while (std::getline(std::cin, line)) {
    std::string trimmed(StripWhitespace(line));
    if (trimmed.empty()) {
      std::printf("deddb> ");
      continue;
    }
    if (trimmed == "quit" || trimmed == "exit") break;
    if (trimmed == "facts") {
      std::printf("%s", db.database().facts().ToString(db.symbols()).c_str());
    } else if (trimmed == "rules") {
      std::printf("%s",
                  db.database().program().ToString(db.symbols()).c_str());
    } else if (trimmed == "consistent") {
      auto consistent = db.IsConsistent();
      if (consistent.ok()) {
        std::printf("%s\n", *consistent ? "yes" : "no");
      } else {
        std::printf("error: %s\n", consistent.status().ToString().c_str());
      }
    } else if (trimmed == "repair") {
      HandleRepair(&db);
    } else if (StartsWith(trimmed, "txn ")) {
      HandleTxn(&db, &processor, trimmed.substr(4));
    } else if (StartsWith(trimmed, "update ")) {
      HandleUpdate(&db, &processor, trimmed.substr(7));
    } else if (StartsWith(trimmed, "events ")) {
      HandleEvents(&db, trimmed.substr(7));
    } else {
      auto loaded = LoadProgram(&db, trimmed);
      if (!loaded.ok()) {
        std::printf("error: %s\n", loaded.status().ToString().c_str());
      }
    }
    std::printf("deddb> ");
  }
  std::printf("\n");
  return 0;
}
