// A view-update assistant for a university enrollment database: shows the
// §5.3 combination of view updating with per-constraint policies (some
// constraints maintained by generating repairs, others only checked), plus
// view validation as a schema-design aid.

#include <cstdio>

#include "core/deductive_database.h"
#include "core/update_processor.h"
#include "parser/parser.h"

using namespace deddb;  // NOLINT — example brevity

int main() {
  DeductiveDatabase db;
  auto loaded = LoadProgram(&db, R"(
    base Enrolled/2.    % Enrolled(student, course)
    base Passed/2.      % Passed(student, course)
    base Registered/1.  % student is registered at the university
    base Closed/1.      % course is closed for enrollment

    view Active/1.      % a student actively enrolled in some course
    view Graduate/1.    % passed GraduationProject
    ic Ic_unreg/1.      % enrolled students must be registered
    ic Ic_closed/2.     % nobody may be enrolled in a closed course

    Active(s) <- Enrolled(s, c).
    Graduate(s) <- Passed(s, GraduationProject).
    Ic_unreg(s) <- Enrolled(s, c) & not Registered(s).
    Ic_closed(s, c) <- Enrolled(s, c) & Closed(c).

    Registered(Anna). Registered(Biel).
    Enrolled(Anna, Databases).
    Passed(Anna, Logic).
    Closed(Algebra).
  )");
  if (!loaded.ok()) {
    std::printf("load failed: %s\n", loaded.status().ToString().c_str());
    return 1;
  }

  // --- View validation (§5.2.1): can Graduate ever gain a member? ----------
  SymbolId graduate = db.database().FindPredicate("Graduate").value();
  auto reachable = db.ValidateView(graduate, /*insertion=*/true);
  std::printf("view Graduate can become non-empty? %s\n",
              reachable.ok() && *reachable ? "yes" : "no");

  // --- View update: make Carla active --------------------------------------
  // Carla is not registered, so the naive translation (enroll her somewhere)
  // violates Ic_unreg; with maintenance the repairs register her too.
  auto request = ParseRequest(&db, "ins Active(Carla)");
  if (!request.ok()) {
    std::printf("request failed: %s\n", request.status().ToString().c_str());
    return 1;
  }

  std::printf("\n== Raw downward translations (no integrity handling)\n");
  auto raw = db.TranslateViewUpdate(*request);
  for (const auto& t : raw->translations) {
    std::printf("  %s\n", t.transaction.ToString(db.symbols()).c_str());
  }

  std::printf("\n== With all constraints maintained (default policy)\n");
  UpdateProcessor processor(&db);
  auto maintained = processor.ProcessViewUpdate(*request);
  if (!maintained.ok()) {
    std::printf("failed: %s\n", maintained.status().ToString().c_str());
    return 1;
  }
  for (const auto& t : maintained->translations) {
    std::printf("  %s\n", t.transaction.ToString(db.symbols()).c_str());
  }

  std::printf(
      "\n== Maintaining Ic_unreg, only *checking* Ic_closed (§5.3 split)\n");
  UpdateProcessor::ViewUpdatePolicy policy;
  policy.maintain = {db.database().FindPredicate("Ic_unreg").value()};
  policy.check = {db.database().FindPredicate("Ic_closed").value()};
  auto split = processor.ProcessViewUpdate(*request, policy);
  if (!split.ok()) {
    std::printf("failed: %s\n", split.status().ToString().c_str());
    return 1;
  }
  for (const auto& t : split->translations) {
    std::printf("  %s\n", t.transaction.ToString(db.symbols()).c_str());
  }
  std::printf("  (%zu candidates rejected by the checked constraint)\n",
              split->rejected_by_check);

  // Pick the first surviving translation and apply it.
  if (!split->translations.empty()) {
    const auto& chosen = split->translations.front();
    if (db.Apply(chosen.transaction).ok()) {
      std::printf("\napplied %s\n",
                  chosen.transaction.ToString(db.symbols()).c_str());
      std::printf("database consistent? %s\n",
                  db.IsConsistent().value() ? "yes" : "no");
    }
  }
  return 0;
}
