// Quickstart: the paper's running example (§3-4) end to end.
//
// Builds the deductive database
//     Q(A). Q(B). R(B).
//     P(x) <- Q(x) & not R(x).
// then shows the generated transition rules (Example 3.1), the upward
// interpretation of a transaction (Example 4.1) and the downward
// interpretation of a view-update request (Example 4.2).

#include <cstdio>

#include "core/deductive_database.h"
#include "parser/parser.h"

using namespace deddb;  // NOLINT — example brevity

int main() {
  DeductiveDatabase db(EventCompilerOptions{.simplify = false, .obs = {}});
  auto loaded = LoadProgram(&db, R"(
    base Q/1.
    base R/1.
    view P/1.
    Q(A). Q(B). R(B).
    P(x) <- Q(x) & not R(x).
  )");
  if (!loaded.ok()) {
    std::printf("load failed: %s\n", loaded.status().ToString().c_str());
    return 1;
  }

  // --- Transition and event rules (paper §3, Example 3.1) ------------------
  auto compiled = db.Compiled();
  if (!compiled.ok()) {
    std::printf("compile failed: %s\n", compiled.status().ToString().c_str());
    return 1;
  }
  std::printf("== Transition rules (Example 3.1)\n%s",
              (*compiled)->transition.ToString(db.symbols()).c_str());
  std::printf("\n== Event rules (eqs. 6-7)\n%s",
              (*compiled)->event_rules.ToString(db.symbols()).c_str());

  // --- Upward interpretation (Example 4.1) ---------------------------------
  auto txn = ParseTransaction(&db, "del R(B)");
  auto events = db.InducedEvents(*txn);
  std::printf("\n== Upward (Example 4.1)\n");
  std::printf("transaction %s induces %s\n",
              txn->ToString(db.symbols()).c_str(),
              events->ToString(db.symbols()).c_str());

  // --- Downward interpretation (Example 4.2) -------------------------------
  auto request = ParseRequest(&db, "ins P(B)");
  auto result = db.TranslateViewUpdate(*request);
  std::printf("\n== Downward (Example 4.2)\n");
  std::printf("request %s translates to DNF %s\n",
              request->ToString(db.symbols()).c_str(),
              result->dnf.ToString(db.symbols()).c_str());
  for (const auto& translation : result->translations) {
    std::printf("  candidate translation: %s\n",
                translation.ToString(db.symbols()).c_str());
  }
  return 0;
}
