// Condition monitoring and condition activation (paper §5.1.2, §5.2.5,
// §5.2.6) on an inventory scenario: a monitored "Restock" condition fires
// when a product is listed but out of stock; we watch transactions trip it,
// ask the downward interpreter how to trip or avoid tripping it, and freeze
// it against a shipment transaction.

#include <cstdio>

#include "core/deductive_database.h"
#include "parser/parser.h"

using namespace deddb;  // NOLINT — example brevity

int main() {
  DeductiveDatabase db;
  auto loaded = LoadProgram(&db, R"(
    base Listed/1.     % product is in the catalogue
    base InStock/1.    % product is on the shelf
    base Discontinued/1.
    condition Restock/1.

    Restock(p) <- Listed(p) & not InStock(p) & not Discontinued(p).

    Listed(Lamp). Listed(Chair). Listed(Desk).
    InStock(Lamp). InStock(Chair).
  )");
  if (!loaded.ok()) {
    std::printf("load failed: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  // Desk is listed and out of stock: Restock(Desk) is already active.

  // --- §5.1.2 condition monitoring ------------------------------------------
  std::printf("== Condition monitoring (§5.1.2)\n");
  auto txn = ParseTransaction(&db, "del InStock(Lamp), ins InStock(Desk)");
  auto changes = db.MonitorConditions(*txn);
  if (!changes.ok()) {
    std::printf("monitoring failed: %s\n",
                changes.status().ToString().c_str());
    return 1;
  }
  std::printf("T=%s changes conditions: %s\n",
              txn->ToString(db.symbols()).c_str(),
              changes->events.ToString(db.symbols()).c_str());

  // --- §5.2.5 enforcing condition activation --------------------------------
  std::printf("\n== Enforcing condition activation (§5.2.5)\n");
  RequestedEvent activate;
  activate.is_insert = true;
  activate.predicate = db.database().FindPredicate("Restock").value();
  activate.args = {db.Constant("Chair")};
  auto enforced = db.EnforceCondition(activate);
  if (!enforced.ok()) {
    std::printf("enforce failed: %s\n", enforced.status().ToString().c_str());
    return 1;
  }
  std::printf("ways to make Restock(Chair) fire:\n");
  for (const auto& t : enforced->translations) {
    std::printf("  %s\n", t.ToString(db.symbols()).c_str());
  }

  // --- §5.2.5 condition validation -------------------------------------------
  auto can_fire = db.ValidateCondition(activate.predicate,
                                       /*activation=*/true);
  std::printf("\ncondition Restock can be activated for some product? %s\n",
              can_fire.ok() && *can_fire ? "yes" : "no");

  // --- §5.2.6 preventing condition activation -------------------------------
  std::printf("\n== Preventing condition activation (§5.2.6)\n");
  auto shipment = ParseTransaction(&db, "del InStock(Chair)");
  RequestedEvent freeze;
  freeze.is_insert = true;
  freeze.predicate = activate.predicate;
  freeze.args = {db.Variable("anyproduct")};  // for NO instance
  auto frozen = db.PreventConditionActivation(*shipment, {freeze});
  if (!frozen.ok()) {
    std::printf("prevent failed: %s\n", frozen.status().ToString().c_str());
    return 1;
  }
  std::printf("T=%s without activating Restock anywhere:\n",
              shipment->ToString(db.symbols()).c_str());
  for (const auto& t : frozen->translations) {
    std::printf("  %s\n", t.ToString(db.symbols()).c_str());
  }
  return 0;
}
