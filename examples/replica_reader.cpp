// WAL-shipping read replicas (DESIGN.md §12): a primary serves writes while
// a replica tails its durable log, replays every commit, and serves reads
// under a bounded-staleness contract. The reader asks the replica for
// answers no more than a few records behind the primary; every reply
// carries the freshness evidence (replay cursor, primary horizon, feed
// health), and a replica that cannot honor the bound answers a typed,
// retryable kUnavailable instead of silently serving stale state. Writes
// sent to the replica are refused outright — there is one writer, the
// primary.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/deductive_database.h"
#include "parser/parser.h"
#include "repl/replica.h"
#include "server/client.h"
#include "server/server.h"
#include "server/transport.h"
#include "util/strings.h"

using namespace deddb;          // NOLINT — example brevity
using namespace deddb::server;  // NOLINT

namespace {

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::printf("%s failed: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

// Schema travels by declaration, facts by feed: primary and replica declare
// the same program, then the replica replays the primary's WAL.
constexpr const char* kSchema = R"(
  base OnShelf/1.
  base Damaged/1.
  view Sellable/1.
  Sellable(x) <- OnShelf(x) & not Damaged(x).
)";

}  // namespace

int main() {
  // --- The primary: a persistent database fronted by a Server -------------
  char tmpl[] = "/tmp/replexampleXXXXXX";
  if (::mkdtemp(tmpl) == nullptr) return 1;
  std::string dir = tmpl;
  auto opened = DeductiveDatabase::OpenPersistent(dir);
  Check(opened.status(), "open");
  auto primary_db = std::move(*opened);
  Check(LoadProgram(primary_db.get(), kSchema).status(), "load schema");
  Check(primary_db->Checkpoint(), "checkpoint");

  LoopbackNetwork primary_network;
  Server primary(primary_db.get());
  Check(primary.Serve(primary_network.TakeListener()), "serve primary");

  // --- The replica: fresh database + schema, tailing the primary's WAL ----
  DeductiveDatabase replica_db;
  Check(LoadProgram(&replica_db, kSchema).status(), "load replica schema");
  Check(replica_db.EnterReplicaMode(), "enter replica mode");
  repl::Replica replica(&replica_db, [&primary_network]() {
    return primary_network.Connect();
  });
  Check(replica.Start(), "start replica");

  // Plug the replica's position into its own Server: that is what turns on
  // the bounded-staleness contract (and the write refusal) for its clients.
  ServerOptions replica_options;
  replica_options.replica_status = &replica;
  LoopbackNetwork replica_network;
  Server replica_server(&replica_db, replica_options);
  Check(replica_server.Serve(replica_network.TakeListener()),
        "serve replica");

  // --- A writer commits on the primary ------------------------------------
  {
    auto conn = primary_network.Connect();
    Check(conn.status(), "dial primary");
    Client writer(std::move(*conn));
    for (const char* item : {"Lamp", "Chair", "Desk"}) {
      Transaction txn;
      Check(txn.AddInsert(writer.GroundAtom("OnShelf", {item})), "build");
      Check(writer.Apply(txn).status(), "apply");
    }
    Transaction txn;
    Check(txn.AddInsert(writer.GroundAtom("Damaged", {"Desk"})), "build");
    Check(writer.Apply(txn).status(), "apply");
    writer.Close();
  }

  // --- A reader on the replica, bounded to at most 8 records behind -------
  // The bound makes kUnavailable retryable: the client retries with backoff
  // until the replica has caught up this far, so the first read already
  // sees a fresh-enough snapshot even though the feed is asynchronous.
  ClientOptions bounded;
  bounded.max_staleness = 8;
  Client reader([&replica_network]() { return replica_network.Connect(); },
                bounded);
  auto reply =
      reader.Query({reader.MakeAtom("Sellable", {reader.Variable("x")})});
  Check(reply.status(), "replica query");
  std::printf("sellable via replica:");
  for (const Tuple& t : reply->answers[0]) {
    std::printf(" %s", std::string(reader.symbols().NameOf(t[0])).c_str());
  }
  std::printf("\n");
  if (reply->has_replica_status) {
    std::printf(
        "freshness evidence: applied_seq=%llu primary_horizon=%llu "
        "bounded=%s\n",
        static_cast<unsigned long long>(reply->applied_seq),
        static_cast<unsigned long long>(reply->primary_last_durable_seq),
        reply->bounded ? "yes" : "no");
  }

  // Writes against the replica are refused with a typed status: the
  // replica's state is the primary's log, never a local mutation.
  Transaction txn;
  Check(txn.AddInsert(reader.GroundAtom("OnShelf", {"Sofa"})), "build");
  auto refused = reader.Apply(txn);
  std::printf("write on replica: %s\n",
              refused.ok() ? "accepted (bug!)"
                           : refused.status().ToString().c_str());

  reader.Close();
  replica_server.Stop();
  replica.Stop();
  primary.Stop();
  Check(primary_db->Close(), "close");
  primary_db.reset();
  std::string cmd = StrCat("rm -rf ", dir);
  if (std::system(cmd.c_str()) != 0) return 1;
  return 0;
}
