// Standing queries & change-data-capture (DESIGN.md §11): an alerting
// monitor subscribes to a derived view over the wire and is pushed the
// exact incremental delta of every commit — no polling, no re-derivation.
// A restock alert fires when a product is listed but not on the shelf;
// the monitor keeps a locally materialized copy of the alert view and
// prints every change as it streams in.

#include <cstdio>
#include <thread>

#include "core/deductive_database.h"
#include "parser/parser.h"
#include "server/client.h"
#include "server/server.h"
#include "server/transport.h"
#include "sub/view.h"

using namespace deddb;          // NOLINT — example brevity
using namespace deddb::server;  // NOLINT

int main() {
  DeductiveDatabase db;
  auto loaded = LoadProgram(&db, R"(
    base Listed/1.   % product is in the catalogue
    base InStock/1.  % product is on the shelf
    view RestockAlert/1.

    RestockAlert(p) <- Listed(p) & not InStock(p).

    Listed(Lamp). Listed(Chair). Listed(Desk).
    InStock(Lamp). InStock(Chair).
  )");
  if (!loaded.ok()) {
    std::printf("load failed: %s\n", loaded.status().ToString().c_str());
    return 1;
  }

  LoopbackNetwork network;
  Server server(&db);
  if (auto started = server.Serve(network.TakeListener()); !started.ok()) {
    std::printf("serve failed: %s\n", started.ToString().c_str());
    return 1;
  }
  auto dial = [&network]() { return network.Connect(); };

  // --- The monitor: subscribe, then fold pushed deltas into a SubView ------
  std::thread monitor([&dial] {
    Client client(dial, ClientOptions{});
    Atom pattern = client.MakeAtom("RestockAlert", {client.Variable("x")});
    auto subscribed = client.Subscribe(pattern);
    if (!subscribed.ok()) {
      std::printf("subscribe failed: %s\n",
                  subscribed.status().ToString().c_str());
      return;
    }
    sub::SubView view;
    view.Reset(subscribed->version, std::move(subscribed->snapshot));
    auto one_line = [](std::string rendered) {
      while (!rendered.empty() && rendered.back() == '\n') rendered.pop_back();
      for (char& c : rendered) {
        if (c == '\n') c = ' ';
      }
      return rendered;
    };
    std::printf("monitor: snapshot at v%llu: [%s]\n",
                static_cast<unsigned long long>(view.version()),
                one_line(view.ToString(client.symbols())).c_str());
    while (true) {
      auto push = client.AwaitPush();
      if (!push.ok()) break;  // server stopped: the stream is over
      if (push->is_gap) {
        std::printf("monitor: gap at v%llu — must resubscribe\n",
                    static_cast<unsigned long long>(push->gap.version));
        break;
      }
      for (const Tuple& t : push->delta.inserts) {
        std::printf("monitor: v%llu ALERT  RestockAlert(%s)\n",
                    static_cast<unsigned long long>(push->delta.version),
                    client.symbols().NameOf(t[0]).c_str());
      }
      for (const Tuple& t : push->delta.deletes) {
        std::printf("monitor: v%llu clear  RestockAlert(%s)\n",
                    static_cast<unsigned long long>(push->delta.version),
                    client.symbols().NameOf(t[0]).c_str());
      }
      sub::DeltaBatch batch;
      batch.version = push->delta.version;
      batch.inserts = push->delta.inserts;
      batch.deletes = push->delta.deletes;
      if (auto applied = view.Apply(batch); !applied.ok()) {
        std::printf("view diverged: %s\n", applied.ToString().c_str());
        return;
      }
      std::printf("monitor: view at v%llu: [%s]\n",
                  static_cast<unsigned long long>(view.version()),
                  one_line(view.ToString(client.symbols())).c_str());
    }
  });

  // --- The store: ordinary writes; every commit streams its delta ----------
  Client store(dial, ClientOptions{});
  auto commit = [&store](const char* description, Transaction txn) {
    auto version = store.Apply(txn);
    if (!version.ok()) {
      std::printf("apply failed: %s\n", version.status().ToString().c_str());
      std::exit(1);
    }
    std::printf("store:   v%llu %s\n",
                static_cast<unsigned long long>(version->version), description);
    // Example pacing only — deltas are ordered per subscription regardless.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  };

  Transaction sold;
  (void)sold.AddDelete(store.GroundAtom("InStock", {"Lamp"}));
  commit("sold the last Lamp", std::move(sold));

  Transaction shipped;
  (void)shipped.AddInsert(store.GroundAtom("InStock", {"Desk"}));
  (void)shipped.AddInsert(store.GroundAtom("InStock", {"Lamp"}));
  commit("shipment arrived: Desk and Lamp restocked", std::move(shipped));

  server.Stop();
  monitor.join();
  return 0;
}
